//! # ust — querying uncertain spatio-temporal data
//!
//! Facade crate of the reproduction of Emrich, Kriegel, Mamoulis, Renz,
//! Züfle: *Querying Uncertain Spatio-Temporal Data* (ICDE 2012). Re-exports
//! the workspace crates:
//!
//! * [`ust_markov`] — sparse linear algebra, Markov chains, augmented
//!   (`M−`/`M+`) matrices;
//! * [`ust_space`] — state spaces (grid / line / road network), regions,
//!   time sets, R-tree;
//! * [`ust_core`] — the paper's query model and engines (PST∃Q, PST∀Q,
//!   PSTkQ; object-based and query-based; multiple observations;
//!   baselines);
//! * [`ust_data`] — dataset generators (Table I synthetic, road networks,
//!   iceberg and traffic scenarios) and workloads.
//!
//! See the repository README for a guided tour, `examples/` for runnable
//! programs, and EXPERIMENTS.md for the regenerated evaluation.

pub use ust_core;
pub use ust_data;
pub use ust_markov;
pub use ust_space;

/// One-stop prelude for applications.
pub mod prelude {
    pub use ust_core::prelude::*;
    pub use ust_markov::{CsrMatrix, DenseVector, MarkovChain, SparseVector, StateMask};
    pub use ust_space::{
        GridSpace, LineSpace, Point2, Rect, Region, RoadNetwork, StateSpace, TimeSet,
    };
}
