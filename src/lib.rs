//! # ust — querying uncertain spatio-temporal data
//!
//! Facade crate of the reproduction of Emrich, Kriegel, Mamoulis, Renz,
//! Züfle: *Querying Uncertain Spatio-Temporal Data* (ICDE 2012). Re-exports
//! the workspace crates:
//!
//! * [`ust_markov`] — sparse linear algebra, Markov chains, augmented
//!   (`M−`/`M+`) matrices;
//! * [`ust_space`] — state spaces (grid / line / road network), regions,
//!   time sets, R-tree;
//! * [`ust_core`] — the paper's query model and engines (PST∃Q, PST∀Q,
//!   PSTkQ; object-based and query-based; multiple observations;
//!   baselines), the batch-first propagation pipeline and the worker-pool
//!   executor;
//! * [`ust_data`] — dataset generators (Table I synthetic, road networks,
//!   iceberg and traffic scenarios) and workloads.
//!
//! ## Quick start
//!
//! The README example, runnable as a doctest: build the paper's 3-state
//! running-example chain, insert one object observed at state `s2` at time
//! 0, and ask for the probability that it intersects the window
//! `{s1, s2} × [2, 3]` (the paper's Example 2 derives 0.864). Queries are
//! **declared** with the [`ust_core::Query`] builder and executed through
//! one entry point — the planner chooses between the paper's object-based
//! and query-based strategies (ask [`ust_core::QueryProcessor::explain`]
//! why):
//!
//! ```
//! use ust::prelude::*;
//!
//! let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
//!     vec![0.0, 0.0, 1.0],
//!     vec![0.6, 0.0, 0.4],
//!     vec![0.0, 0.8, 0.2],
//! ])?)?;
//! let mut db = TrajectoryDatabase::new(chain);
//! db.insert(UncertainObject::with_single_observation(
//!     1, Observation::exact(0, 3, 1)?,
//! ))?;
//!
//! let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3))?;
//! let processor = QueryProcessor::new(&db);
//!
//! // Declare the PST∃Q; the planner resolves Strategy::Auto, and both
//! // explicit strategies agree on the paper's 0.864.
//! let spec = Query::exists().window(window.clone()).build()?;
//! let plan = processor.explain(&spec)?;
//! assert!(matches!(plan.strategy, Strategy::ObjectBased | Strategy::QueryBased));
//! let answer = processor.execute(&spec)?;
//! assert!((answer.probabilities().unwrap()[0].probability - 0.864).abs() < 1e-12);
//!
//! // Decorators compose with any predicate: threshold and top-k.
//! let hot = processor.execute(&Query::exists().window(window.clone()).threshold(0.5).build()?)?;
//! assert_eq!(hot.ids().unwrap(), &[1]);
//! let dist = processor.execute(&Query::ktimes(1).window(window).build()?)?;
//! assert!((dist.distributions().unwrap()[0].prob_always() - 0.192).abs() < 1e-12);
//! # Ok::<(), ust_core::QueryError>(())
//! ```
//!
//! Parallel serving uses the same entry point: a processor configured with
//! `num_threads > 1` owns a long-lived worker pool, results stay
//! bit-for-bit identical to sequential evaluation, and
//! [`ust_core::QueryProcessor::submit`] turns the pool into an **async
//! front door** — submit a burst of specs without blocking, then await the
//! tickets:
//!
//! ```
//! use ust::prelude::*;
//!
//! let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
//!     vec![0.5, 0.5, 0.0],
//!     vec![0.0, 0.5, 0.5],
//!     vec![0.5, 0.0, 0.5],
//! ])?)?;
//! let mut db = TrajectoryDatabase::new(chain);
//! for id in 0..6u64 {
//!     db.insert(UncertainObject::with_single_observation(
//!         id, Observation::exact(0, 3, (id % 3) as usize)?,
//!     ))?;
//! }
//! let window = QueryWindow::from_states(3, [1usize], TimeSet::interval(1, 2))?;
//! let spec = Query::exists().window(window).build()?;
//!
//! let sequential = QueryProcessor::new(&db).execute(&spec)?;
//! let pooled = QueryProcessor::with_config(
//!     &db,
//!     EngineConfig::default().with_num_threads(4).with_batch_size(2),
//! );
//! assert_eq!(pooled.execute(&spec)?, sequential);
//!
//! // Async burst: `submit` is fallible (admission control can reject
//! // with `QueryError::QueueFull`); tickets return immediately, answers
//! // when awaited.
//! let tickets = (0..4).map(|_| pooled.submit(&spec)).collect::<Result<Vec<QueryTicket>>>()?;
//! for ticket in tickets {
//!     assert_eq!(ticket.wait()?, sequential);
//! }
//! # Ok::<(), ust_core::QueryError>(())
//! ```
//!
//! Streaming is the third entry point:
//! [`ust_core::QueryProcessor::watch`] registers a **standing query**
//! maintained across [`ust_core::QueryProcessor::ingest`] arrivals
//! (latest-fix policy: out-of-order fixes are ignored, not errors). The
//! maintained answer is bit-for-bit what a from-scratch `execute` on the
//! updated database would return — `tests/streaming.rs` pins that by
//! property:
//!
//! ```
//! use ust::prelude::*;
//!
//! let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
//!     vec![0.0, 0.0, 1.0],
//!     vec![0.6, 0.0, 0.4],
//!     vec![0.0, 0.8, 0.2],
//! ])?)?;
//! let mut db = TrajectoryDatabase::new(chain);
//! db.insert(UncertainObject::with_single_observation(
//!     1, Observation::exact(0, 3, 1)?,
//! ))?;
//! let processor = QueryProcessor::new(&db);
//!
//! let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3))?;
//! let sub = processor.watch(&Query::exists().window(window).build()?)?;
//! assert!((sub.answer()?.probabilities().unwrap()[0].probability - 0.864).abs() < 1e-12);
//!
//! // A fresh fix arrives: the anchor advances (latest-fix) and the
//! // standing query refreshes — only its one answer entry is
//! // invalidated; the backward-field caches survive ingest untouched.
//! assert_eq!(processor.ingest(1, Observation::exact(1, 3, 0)?)?, IngestOutcome::Applied);
//! assert_eq!(sub.notifications(), 1);
//! let refreshed = sub.answer()?.probabilities().unwrap()[0].probability;
//! assert!((refreshed - 0.8).abs() < 1e-12);
//! # Ok::<(), ust_core::QueryError>(())
//! ```
//!
//! See the repository README for a guided tour, ARCHITECTURE.md for the
//! crate and dataflow map, `examples/` for runnable programs, and
//! `BENCH_pr2.json` … `BENCH_pr8.json` for the machine-readable perf
//! trajectory regenerated by the `paper_experiments` binary.

#![deny(missing_docs)]

pub use ust_core;
pub use ust_data;
pub use ust_markov;
pub use ust_space;

/// One-stop prelude for applications.
pub mod prelude {
    pub use ust_core::prelude::*;
    pub use ust_markov::{CsrMatrix, DenseVector, MarkovChain, SparseVector, StateMask};
    pub use ust_space::{
        GridSpace, LineSpace, Point2, Rect, Region, RoadNetwork, StateSpace, TimeSet,
    };
}
