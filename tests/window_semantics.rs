//! Window-semantics edge cases across engines: non-contiguous time sets,
//! disconnected spatial regions, windows touching the anchor, and
//! degenerate single-cell windows — the "arbitrary subset of the space
//! (time) domain" generality the paper explicitly claims.

use ust::prelude::*;
use ust_core::engine::{exhaustive, ktimes, object_based, query_based};

fn paper_chain() -> MarkovChain {
    MarkovChain::from_csr(
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap(),
    )
    .unwrap()
}

fn object_at(state: usize, time: u32) -> UncertainObject {
    UncertainObject::with_single_observation(1, Observation::exact(time, 3, state).unwrap())
}

fn engines_agree(chain: &MarkovChain, object: &UncertainObject, window: &QueryWindow) -> f64 {
    let config = EngineConfig::default();
    let ob = object_based::exists_probability(chain, object, window, &config).unwrap();
    let qb = query_based::exists_probability(chain, object, window, &config).unwrap();
    let oracle = exhaustive::enumerate(chain, object, window, 1 << 22).unwrap();
    assert!((ob - qb).abs() < 1e-12, "OB {ob} vs QB {qb}");
    assert!((ob - oracle.exists()).abs() < 1e-12, "OB {ob} vs oracle");
    ob
}

#[test]
fn non_contiguous_times_skip_middle() {
    let chain = paper_chain();
    let object = object_at(1, 0);
    // T▫ = {1, 4}: t ∈ {2, 3} must not count.
    let window = QueryWindow::from_states(3, [0usize], TimeSet::new([1, 4])).unwrap();
    let sparse_p = engines_agree(&chain, &object, &window);
    // The contiguous window [1, 4] must dominate it strictly here.
    let full = QueryWindow::from_states(3, [0usize], TimeSet::interval(1, 4)).unwrap();
    let full_p = engines_agree(&chain, &object, &full);
    assert!(full_p > sparse_p);
}

#[test]
fn disconnected_spatial_regions() {
    // S▫ = {s1, s3}: two "islands".
    let chain = paper_chain();
    let object = object_at(1, 0);
    let window = QueryWindow::from_states(3, [0usize, 2], TimeSet::interval(1, 2)).unwrap();
    let p = engines_agree(&chain, &object, &window);
    // From s2 every possible step-1 position is in {s1, s3}: certainty.
    assert!((p - 1.0).abs() < 1e-12);
}

#[test]
fn window_start_equal_to_anchor_counts_membership() {
    let chain = paper_chain();
    // Anchor at t=2 at s1, window includes (s1, t=2): immediate hit.
    let object = object_at(0, 2);
    let window = QueryWindow::from_states(3, [0usize], TimeSet::new([2, 5])).unwrap();
    let p = engines_agree(&chain, &object, &window);
    assert!((p - 1.0).abs() < 1e-12);
}

#[test]
fn late_anchor_with_future_subwindow() {
    // Anchor at t=3; window times {3, 5} — both ≥ anchor, evaluable.
    let chain = paper_chain();
    let object = object_at(2, 3);
    let window = QueryWindow::from_states(3, [1usize], TimeSet::new([3, 5])).unwrap();
    let p = engines_agree(&chain, &object, &window);
    // By hand: not at s2 at t=3 (anchor at s3). Paths: t=4 s3→s2 (0.8, not
    // a window time) or s3→s3 (0.2). t=5 ∈ T▫: from s2 → never s2; from
    // s3 → s2 w.p. 0.8. P = 0.2·0.8 + 0.8·(s2 at t4 → s1/s3 at t5: 0) =
    // 0.16.
    assert!((p - 0.16).abs() < 1e-12, "got {p}");
}

#[test]
fn ktimes_on_non_contiguous_times() {
    let chain = paper_chain();
    let object = object_at(1, 0);
    let window = QueryWindow::from_states(3, [1usize], TimeSet::new([2, 4])).unwrap();
    let config = EngineConfig::default();
    let ob = ktimes::ktimes_distribution_ob(&chain, &object, &window, &config).unwrap();
    let qb = ktimes::ktimes_distribution_qb(&chain, &object, &window, &config).unwrap();
    let blow = ktimes::ktimes_distribution_blowup(&chain, &object, &window).unwrap();
    let oracle = exhaustive::enumerate(&chain, &object, &window, 1 << 22).unwrap();
    assert_eq!(ob.len(), 3); // k ∈ {0, 1, 2}
    for k in 0..3 {
        assert!((ob[k] - qb[k]).abs() < 1e-12);
        assert!((ob[k] - blow[k]).abs() < 1e-12);
        assert!((ob[k] - oracle.ktimes[k]).abs() < 1e-12);
    }
}

#[test]
fn single_state_single_time_window_equals_marginal() {
    let chain = paper_chain();
    let object = object_at(1, 0);
    for t in 1..=5u32 {
        for s in 0..3usize {
            let window = QueryWindow::from_states(3, [s], TimeSet::at(t)).unwrap();
            let p = engines_agree(&chain, &object, &window);
            // Must equal the forward marginal P(o(t) = s).
            let marginal = chain
                .propagate_dense(&DenseVector::from_vec(vec![0.0, 1.0, 0.0]), t)
                .unwrap()
                .get(s);
            assert!((p - marginal).abs() < 1e-12, "t={t}, s={s}");
        }
    }
}

#[test]
fn exists_is_monotone_in_window_growth() {
    // Adding states or times can only increase P∃ (set monotonicity).
    let chain = paper_chain();
    let object = object_at(1, 0);
    let base = QueryWindow::from_states(3, [0usize], TimeSet::interval(2, 3)).unwrap();
    let more_states = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
    let more_times = QueryWindow::from_states(3, [0usize], TimeSet::interval(1, 4)).unwrap();
    let p0 = engines_agree(&chain, &object, &base);
    let p1 = engines_agree(&chain, &object, &more_states);
    let p2 = engines_agree(&chain, &object, &more_times);
    assert!(p1 >= p0 - 1e-12);
    assert!(p2 >= p0 - 1e-12);
}

#[test]
fn backward_field_snapshots_only_requested_times() {
    use ust_core::engine::query_based::BackwardField;
    let chain = paper_chain();
    let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(4, 6)).unwrap();
    let field = BackwardField::compute(&chain, &window, &[2, 0], &mut EvalStats::new()).unwrap();
    assert!(field.at(0).is_some());
    assert!(field.at(2).is_some());
    assert!(field.at(1).is_none());
    assert!(field.at(6).is_none());
    // Snapshot at a later anchor has strictly less information folded in.
    let h0 = field.at(0).unwrap();
    let h2 = field.at(2).unwrap();
    assert_eq!(h0.dim(), 3);
    assert_eq!(h2.dim(), 3);
}
