//! Failure-injection tests: every error path reachable through the public
//! API must surface as a typed error, never a panic or a silent wrong
//! answer.

use ust::prelude::*;
use ust_core::engine::{exhaustive, object_based, query_based};
use ust_core::{multi_obs, smoothing, QueryError};
use ust_markov::{MarkovError, StochasticMatrix};

fn paper_chain() -> MarkovChain {
    MarkovChain::from_csr(
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap(),
    )
    .unwrap()
}

#[test]
fn non_stochastic_matrices_are_rejected() {
    let bad_sum = CsrMatrix::from_dense(&[vec![0.5, 0.4], vec![1.0, 0.0]]).unwrap();
    assert!(matches!(
        StochasticMatrix::new(bad_sum),
        Err(MarkovError::NotStochastic { row: 0, .. })
    ));
    let negative = CsrMatrix::from_dense(&[vec![1.5, -0.5], vec![0.0, 1.0]]).unwrap();
    assert!(matches!(StochasticMatrix::new(negative), Err(MarkovError::InvalidProbability { .. })));
    let empty_row = CsrMatrix::from_dense(&[vec![0.0, 0.0], vec![0.0, 1.0]]).unwrap();
    assert!(StochasticMatrix::new(empty_row).is_err());
    let non_square = CsrMatrix::from_dense(&[vec![0.5, 0.5, 0.0]]).unwrap();
    assert!(StochasticMatrix::new(non_square).is_err());
}

#[test]
fn empty_windows_are_rejected() {
    assert_eq!(
        QueryWindow::from_states(5, Vec::<usize>::new(), TimeSet::at(1)),
        Err(QueryError::EmptySpatialWindow)
    );
    assert_eq!(
        QueryWindow::from_states(5, [1usize], TimeSet::empty()),
        Err(QueryError::EmptyTemporalWindow)
    );
    // Out-of-range window states.
    assert!(matches!(
        QueryWindow::from_states(5, [5usize], TimeSet::at(1)),
        Err(QueryError::Markov(MarkovError::IndexOutOfBounds { .. }))
    ));
}

#[test]
fn malformed_objects_are_rejected() {
    assert_eq!(UncertainObject::new(1, vec![]), Err(QueryError::NoObservations));
    let a = Observation::exact(3, 4, 0).unwrap();
    let b = Observation::exact(3, 4, 1).unwrap();
    assert_eq!(
        UncertainObject::new(1, vec![a, b]),
        Err(QueryError::DuplicateObservation { time: 3 })
    );
    assert!(Observation::exact(0, 4, 9).is_err());
    assert!(Observation::uncertain(0, SparseVector::zeros(4)).is_err());
}

#[test]
fn database_insert_validation() {
    let mut db = TrajectoryDatabase::new(paper_chain());
    // Wrong dimension.
    let wrong_dim =
        UncertainObject::with_single_observation(1, Observation::exact(0, 7, 0).unwrap());
    assert!(matches!(db.insert(wrong_dim), Err(QueryError::ModelDimensionMismatch { .. })));
    // Unknown model index.
    let unknown_model =
        UncertainObject::with_single_observation(2, Observation::exact(0, 3, 0).unwrap())
            .with_model(3);
    assert_eq!(db.insert(unknown_model), Err(QueryError::UnknownModel { model: 3 }));
}

#[test]
fn window_before_observation_is_rejected_by_all_engines() {
    let chain = paper_chain();
    let late_object =
        UncertainObject::with_single_observation(1, Observation::exact(10, 3, 0).unwrap());
    let window = QueryWindow::from_states(3, [0usize], TimeSet::interval(2, 4)).unwrap();
    let config = EngineConfig::default();
    assert!(matches!(
        object_based::exists_probability(&chain, &late_object, &window, &config),
        Err(QueryError::WindowBeforeObservation { .. })
    ));
    assert!(matches!(
        query_based::exists_probability(&chain, &late_object, &window, &config),
        Err(QueryError::WindowBeforeObservation { .. })
    ));
    assert!(matches!(
        multi_obs::exists_probability_multi(&chain, &late_object, &window, &config),
        Err(QueryError::WindowBeforeObservation { .. })
    ));
    assert!(matches!(
        smoothing::smoothed_distribution(&chain, &late_object, 2),
        Err(QueryError::WindowBeforeObservation { .. })
    ));
}

#[test]
fn impossible_evidence_is_consistent_across_engines() {
    let chain = paper_chain();
    // From s2 the object cannot be at s2 one step later.
    let contradictory = UncertainObject::new(
        1,
        vec![Observation::exact(0, 3, 1).unwrap(), Observation::exact(1, 3, 1).unwrap()],
    )
    .unwrap();
    let window = QueryWindow::from_states(3, [0usize], TimeSet::at(1)).unwrap();
    let config = EngineConfig::default();
    assert_eq!(
        multi_obs::exists_probability_multi(&chain, &contradictory, &window, &config),
        Err(QueryError::ImpossibleEvidence)
    );
    assert_eq!(
        exhaustive::enumerate(&chain, &contradictory, &window, 1 << 20).map(|r| r.exists()),
        Err(QueryError::ImpossibleEvidence)
    );
    assert_eq!(
        smoothing::smoothed_distribution(&chain, &contradictory, 1).map(|_| ()),
        Err(QueryError::ImpossibleEvidence)
    );
}

#[test]
fn exhaustive_budget_guard() {
    // A 20-state dense-ish chain over 20 steps overflows a tiny budget.
    let mut rng = ust_markov::testutil::rng(5);
    let chain =
        MarkovChain::from_csr(ust_markov::testutil::random_stochastic(&mut rng, 20, 4)).unwrap();
    let object = UncertainObject::with_single_observation(1, Observation::exact(0, 20, 0).unwrap());
    let window = QueryWindow::from_states(20, [5usize], TimeSet::interval(15, 20)).unwrap();
    assert!(matches!(
        exhaustive::enumerate(&chain, &object, &window, 1_000),
        Err(QueryError::ExhaustiveBudgetExceeded { budget: 1_000 })
    ));
}

#[test]
fn error_messages_are_human_readable() {
    let e = QueryError::WindowBeforeObservation { window_start: 1, observation: 5 };
    let s = format!("{e}");
    assert!(s.contains('1') && s.contains('5'));
    let e: QueryError = MarkovError::ZeroMass.into();
    assert!(format!("{e}").contains("zero"));
}

#[test]
fn degenerate_chain_sizes() {
    // A single absorbing state still answers queries.
    let chain = MarkovChain::from_csr(CsrMatrix::identity(1)).unwrap();
    let object = UncertainObject::with_single_observation(1, Observation::exact(0, 1, 0).unwrap());
    let window = QueryWindow::from_states(1, [0usize], TimeSet::interval(1, 3)).unwrap();
    let config = EngineConfig::default();
    let p = object_based::exists_probability(&chain, &object, &window, &config).unwrap();
    assert_eq!(p, 1.0);
    let q = query_based::exists_probability(&chain, &object, &window, &config).unwrap();
    assert_eq!(q, 1.0);
}

// --- Streaming ingest failure modes -------------------------------------

fn streaming_db() -> TrajectoryDatabase {
    let mut db = TrajectoryDatabase::new(paper_chain());
    for id in 0..4u64 {
        db.insert(UncertainObject::with_single_observation(
            id,
            Observation::exact(0, 3, (id % 3) as usize).unwrap(),
        ))
        .unwrap();
    }
    db
}

fn streaming_spec(db: &TrajectoryDatabase) -> QuerySpec {
    let window =
        QueryWindow::from_states(db.num_states(), [1usize, 2], TimeSet::interval(2, 4)).unwrap();
    Query::exists().window(window).build().unwrap()
}

/// Blocks every pool worker until the returned closure is called.
fn gate_pool(processor: &QueryProcessor) -> impl FnOnce() + 'static {
    use std::sync::{Arc, Condvar, Mutex};
    let pool = processor.pool().expect("gated tests need an owned pool");
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    for shard in 0..pool.num_threads() {
        let gate = Arc::clone(&gate);
        pool.spawn(
            shard,
            Box::new(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                while !*open {
                    open = cv.wait(open).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }),
        );
    }
    while pool.stats().queued_jobs > 0 {
        std::thread::yield_now();
    }
    move || {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
    }
}

#[test]
fn ingest_validation_errors_are_typed() {
    let db = streaming_db();
    let processor = QueryProcessor::new(&db);
    // Unknown object: nothing to supersede.
    assert_eq!(
        processor.ingest(99, Observation::exact(1, 3, 0).unwrap()),
        Err(QueryError::UnknownObject { id: 99 })
    );
    // Dimension mismatch: a 4-state fix against a 3-state model.
    assert_eq!(
        processor.ingest(0, Observation::exact(1, 4, 0).unwrap()),
        Err(QueryError::ModelDimensionMismatch { model_states: 3, object_states: 4 })
    );
    // Neither failed ingest mutated the database.
    assert_eq!(processor.snapshot().object(0).unwrap().anchor().time(), 0);
}

/// A refresh rides the same admission bound as submitted queries: with the
/// only slot held by a gated in-flight submit, an arrival's refresh is
/// shed with `QueueFull`, the subscription goes stale (still answering its
/// last committed state), and the next admitted arrival resynchronizes.
#[test]
fn refresh_sheds_queue_full_then_resynchronizes() {
    let db = streaming_db();
    let spec = streaming_spec(&db);
    let processor = QueryProcessor::with_config(
        &db,
        EngineConfig::default().with_num_threads(2).with_max_queue_depth(1),
    );
    let sub = processor.watch(&spec).unwrap();
    let before = sub.answer();

    let release = gate_pool(&processor);
    let ticket = processor.submit(&spec).unwrap();
    // The submit holds the only admission slot, so the refresh is shed.
    assert_eq!(
        processor.ingest(1, Observation::exact(1, 3, 2).unwrap()),
        Ok(IngestOutcome::Applied)
    );
    assert!(sub.is_stale(), "the shed refresh marked the subscription stale");
    assert_eq!(sub.last_shed(), Some(QueryError::QueueFull { limit: 1 }));
    assert_eq!(sub.notifications(), 0, "a shed refresh never commits");
    assert_eq!(sub.answer(), before, "the stale answer is the last committed one");

    release();
    ticket.wait().unwrap();
    // The next admitted arrival heals with a full resynchronization that
    // also folds in the arrival missed while stale.
    assert_eq!(
        processor.ingest(2, Observation::exact(1, 3, 1).unwrap()),
        Ok(IngestOutcome::Applied)
    );
    assert!(!sub.is_stale());
    assert_eq!(sub.notifications(), 1);
    let expected = QueryProcessor::new(&processor.snapshot()).execute(sub.spec());
    assert_eq!(sub.answer(), expected);
    let metrics = processor.metrics();
    let stream = metrics.stream(sub.id()).unwrap();
    assert_eq!(stream.sheds, 1);
    assert_eq!(stream.full_recomputes, 2, "registration + resync");
    assert_eq!(stream.reevaluations, 0, "no incremental refresh ever committed");
    assert_eq!(metrics.in_flight, 0, "shed refreshes never leak admission slots");
}

/// Deterministic four-thread stress under a bounded pool: submissions,
/// arrivals, cache-eviction pressure and metrics snapshots interleave
/// against one processor for a fixed number of rounds. Every snapshot
/// must satisfy the metrics ledger identities, every admitted ticket
/// must answer, and once quiescent the subscription must agree with a
/// fresh batch execution over the final database state.
#[test]
fn concurrent_submit_ingest_eviction_and_metrics_stress() {
    use std::sync::atomic::{AtomicU64, Ordering};

    const ROUNDS: u32 = 40;
    let db = streaming_db();
    let spec = streaming_spec(&db);
    let processor = QueryProcessor::with_config(
        &db,
        EngineConfig::default().with_num_threads(2).with_max_queue_depth(2).with_cache_capacity(2),
    );
    let sub = processor.watch(&spec).unwrap();
    let admitted = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Submissions: QueueFull rejections are expected under the bounded
        // queue, but every admitted ticket must complete with an answer.
        scope.spawn(|| {
            for _ in 0..ROUNDS {
                match processor.submit(&spec) {
                    Ok(ticket) => {
                        ticket.wait().unwrap();
                        admitted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(QueryError::QueueFull { .. }) => std::thread::yield_now(),
                    Err(other) => panic!("unexpected submit error: {other}"),
                }
            }
        });
        // Arrivals: repeated fixes for one object at a fixed time that
        // stays at/before every window start, cycling through states. An
        // at-or-after fix always replaces, so every ingest is `Applied`
        // regardless of interleaving, and its refreshes contend with the
        // submissions for the two admission slots.
        scope.spawn(|| {
            for round in 0..ROUNDS {
                assert_eq!(
                    processor.ingest(1, Observation::exact(1, 3, (round % 3) as usize).unwrap()),
                    Ok(IngestOutcome::Applied)
                );
            }
        });
        // Cache churn: rotate distinct windows through the two-entry field
        // cache so backward fields are evicted and recomputed mid-flight.
        scope.spawn(|| {
            for round in 0..ROUNDS {
                let start = 1 + (round % 4);
                let window = QueryWindow::from_states(
                    3,
                    [(round % 3) as usize],
                    TimeSet::interval(start, start + 2),
                )
                .unwrap();
                let churn = Query::exists().window(window).build().unwrap();
                processor.execute(&churn).unwrap();
            }
        });
        // Observer: the ledger identities must hold in *every* snapshot,
        // no matter where the other three threads are.
        scope.spawn(|| {
            for _ in 0..ROUNDS {
                let m = processor.metrics();
                assert_eq!(m.submitted, m.accepted + m.rejected, "{m}");
                assert_eq!(m.finished() + m.in_flight, m.accepted, "{m}");
                assert_eq!(m.failed + m.cancelled + m.dropped + m.panicked, 0, "{m}");
                std::thread::yield_now();
            }
        });
    });

    // Quiescent: every admission slot was returned and every admitted
    // submission completed.
    let metrics = processor.metrics();
    assert_eq!(metrics.in_flight, 0, "{metrics}");
    assert_eq!(metrics.submitted, metrics.accepted + metrics.rejected, "{metrics}");
    assert!(metrics.completed >= admitted.load(Ordering::Relaxed), "{metrics}");

    // Refreshes shed under contention leave the subscription stale but
    // answering; one admitted arrival resynchronizes it. Either way the
    // standing answer must equal a fresh batch execution over the final
    // database state.
    if sub.is_stale() {
        assert_eq!(
            processor.ingest(1, Observation::exact(1, 3, 0).unwrap()),
            Ok(IngestOutcome::Applied)
        );
    }
    assert!(!sub.is_stale());
    let expected = QueryProcessor::new(&processor.snapshot()).execute(sub.spec());
    assert_eq!(sub.answer(), expected);
}

/// Deadline shedding applies to refreshes too: under a zero deadline
/// every arrival's refresh is shed with `DeadlineExceeded` and accounted
/// as a deadline expiry, and the subscription keeps serving its
/// registration-time answer.
#[test]
fn refresh_sheds_on_expired_deadline() {
    let db = streaming_db();
    let spec = streaming_spec(&db);
    let processor = QueryProcessor::with_config(
        &db,
        EngineConfig::default().with_default_deadline(std::time::Duration::ZERO),
    );
    let sub = processor.watch(&spec).unwrap();
    let before = sub.answer();
    for t in 1..=3u32 {
        assert_eq!(
            processor.ingest(0, Observation::exact(t, 3, 0).unwrap()),
            Ok(IngestOutcome::Applied)
        );
    }
    assert!(sub.is_stale());
    assert_eq!(sub.last_shed(), Some(QueryError::DeadlineExceeded));
    assert_eq!(sub.notifications(), 0);
    assert_eq!(sub.answer(), before);
    let metrics = processor.metrics();
    assert_eq!(metrics.stream(sub.id()).unwrap().sheds, 3);
    assert_eq!(metrics.deadline_expired, 3);
    assert_eq!(metrics.in_flight, 0);
}
