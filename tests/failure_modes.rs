//! Failure-injection tests: every error path reachable through the public
//! API must surface as a typed error, never a panic or a silent wrong
//! answer.

use ust::prelude::*;
use ust_core::engine::{exhaustive, object_based, query_based};
use ust_core::{multi_obs, smoothing, QueryError};
use ust_markov::{MarkovError, StochasticMatrix};

fn paper_chain() -> MarkovChain {
    MarkovChain::from_csr(
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap(),
    )
    .unwrap()
}

#[test]
fn non_stochastic_matrices_are_rejected() {
    let bad_sum = CsrMatrix::from_dense(&[vec![0.5, 0.4], vec![1.0, 0.0]]).unwrap();
    assert!(matches!(
        StochasticMatrix::new(bad_sum),
        Err(MarkovError::NotStochastic { row: 0, .. })
    ));
    let negative = CsrMatrix::from_dense(&[vec![1.5, -0.5], vec![0.0, 1.0]]).unwrap();
    assert!(matches!(StochasticMatrix::new(negative), Err(MarkovError::InvalidProbability { .. })));
    let empty_row = CsrMatrix::from_dense(&[vec![0.0, 0.0], vec![0.0, 1.0]]).unwrap();
    assert!(StochasticMatrix::new(empty_row).is_err());
    let non_square = CsrMatrix::from_dense(&[vec![0.5, 0.5, 0.0]]).unwrap();
    assert!(StochasticMatrix::new(non_square).is_err());
}

#[test]
fn empty_windows_are_rejected() {
    assert_eq!(
        QueryWindow::from_states(5, Vec::<usize>::new(), TimeSet::at(1)),
        Err(QueryError::EmptySpatialWindow)
    );
    assert_eq!(
        QueryWindow::from_states(5, [1usize], TimeSet::empty()),
        Err(QueryError::EmptyTemporalWindow)
    );
    // Out-of-range window states.
    assert!(matches!(
        QueryWindow::from_states(5, [5usize], TimeSet::at(1)),
        Err(QueryError::Markov(MarkovError::IndexOutOfBounds { .. }))
    ));
}

#[test]
fn malformed_objects_are_rejected() {
    assert_eq!(UncertainObject::new(1, vec![]), Err(QueryError::NoObservations));
    let a = Observation::exact(3, 4, 0).unwrap();
    let b = Observation::exact(3, 4, 1).unwrap();
    assert_eq!(
        UncertainObject::new(1, vec![a, b]),
        Err(QueryError::DuplicateObservation { time: 3 })
    );
    assert!(Observation::exact(0, 4, 9).is_err());
    assert!(Observation::uncertain(0, SparseVector::zeros(4)).is_err());
}

#[test]
fn database_insert_validation() {
    let mut db = TrajectoryDatabase::new(paper_chain());
    // Wrong dimension.
    let wrong_dim =
        UncertainObject::with_single_observation(1, Observation::exact(0, 7, 0).unwrap());
    assert!(matches!(db.insert(wrong_dim), Err(QueryError::ModelDimensionMismatch { .. })));
    // Unknown model index.
    let unknown_model =
        UncertainObject::with_single_observation(2, Observation::exact(0, 3, 0).unwrap())
            .with_model(3);
    assert_eq!(db.insert(unknown_model), Err(QueryError::UnknownModel { model: 3 }));
}

#[test]
fn window_before_observation_is_rejected_by_all_engines() {
    let chain = paper_chain();
    let late_object =
        UncertainObject::with_single_observation(1, Observation::exact(10, 3, 0).unwrap());
    let window = QueryWindow::from_states(3, [0usize], TimeSet::interval(2, 4)).unwrap();
    let config = EngineConfig::default();
    assert!(matches!(
        object_based::exists_probability(&chain, &late_object, &window, &config),
        Err(QueryError::WindowBeforeObservation { .. })
    ));
    assert!(matches!(
        query_based::exists_probability(&chain, &late_object, &window, &config),
        Err(QueryError::WindowBeforeObservation { .. })
    ));
    assert!(matches!(
        multi_obs::exists_probability_multi(&chain, &late_object, &window, &config),
        Err(QueryError::WindowBeforeObservation { .. })
    ));
    assert!(matches!(
        smoothing::smoothed_distribution(&chain, &late_object, 2),
        Err(QueryError::WindowBeforeObservation { .. })
    ));
}

#[test]
fn impossible_evidence_is_consistent_across_engines() {
    let chain = paper_chain();
    // From s2 the object cannot be at s2 one step later.
    let contradictory = UncertainObject::new(
        1,
        vec![Observation::exact(0, 3, 1).unwrap(), Observation::exact(1, 3, 1).unwrap()],
    )
    .unwrap();
    let window = QueryWindow::from_states(3, [0usize], TimeSet::at(1)).unwrap();
    let config = EngineConfig::default();
    assert_eq!(
        multi_obs::exists_probability_multi(&chain, &contradictory, &window, &config),
        Err(QueryError::ImpossibleEvidence)
    );
    assert_eq!(
        exhaustive::enumerate(&chain, &contradictory, &window, 1 << 20).map(|r| r.exists()),
        Err(QueryError::ImpossibleEvidence)
    );
    assert_eq!(
        smoothing::smoothed_distribution(&chain, &contradictory, 1).map(|_| ()),
        Err(QueryError::ImpossibleEvidence)
    );
}

#[test]
fn exhaustive_budget_guard() {
    // A 20-state dense-ish chain over 20 steps overflows a tiny budget.
    let mut rng = ust_markov::testutil::rng(5);
    let chain =
        MarkovChain::from_csr(ust_markov::testutil::random_stochastic(&mut rng, 20, 4)).unwrap();
    let object = UncertainObject::with_single_observation(1, Observation::exact(0, 20, 0).unwrap());
    let window = QueryWindow::from_states(20, [5usize], TimeSet::interval(15, 20)).unwrap();
    assert!(matches!(
        exhaustive::enumerate(&chain, &object, &window, 1_000),
        Err(QueryError::ExhaustiveBudgetExceeded { budget: 1_000 })
    ));
}

#[test]
fn error_messages_are_human_readable() {
    let e = QueryError::WindowBeforeObservation { window_start: 1, observation: 5 };
    let s = format!("{e}");
    assert!(s.contains('1') && s.contains('5'));
    let e: QueryError = MarkovError::ZeroMass.into();
    assert!(format!("{e}").contains("zero"));
}

#[test]
fn degenerate_chain_sizes() {
    // A single absorbing state still answers queries.
    let chain = MarkovChain::from_csr(CsrMatrix::identity(1)).unwrap();
    let object = UncertainObject::with_single_observation(1, Observation::exact(0, 1, 0).unwrap());
    let window = QueryWindow::from_states(1, [0usize], TimeSet::interval(1, 3)).unwrap();
    let config = EngineConfig::default();
    let p = object_based::exists_probability(&chain, &object, &window, &config).unwrap();
    assert_eq!(p, 1.0);
    let q = query_based::exists_probability(&chain, &object, &window, &config).unwrap();
    assert_eq!(q, 1.0);
}
