//! Property test of the central correctness claim: on random small
//! instances, the object-based (forward) and query-based (backward) engines
//! agree with exhaustive possible-worlds enumeration for all three
//! predicates (PST∃Q, PST∀Q, PSTkQ).
//!
//! Every evaluation below drives the shared `engine::pipeline` propagation
//! core — OB through the batched forward sweep, QB through
//! `Propagator::backward` — so this is an end-to-end consistency check of
//! the pipeline from both directions, across all six `QueryProcessor`
//! entry points. Two further structural properties of the batch-first
//! core are pinned down exactly (to the bit, not a tolerance):
//!
//! * batched OB evaluation is **bit-identical** to the per-object path at
//!   every batch size, for ∃/∀/k results, threshold decisions and top-k
//!   rankings;
//! * query-based results served through the `BackwardFieldCache` are
//!   **bit-identical** to uncached evaluation across random overlapping
//!   windows, including suffix-extended partial hits;
//! * evaluation on the long-lived `WorkerPool` — including the
//!   shared-field plan of the query-based drivers and the processor's
//!   lock-guarded cache — is **bit-identical** to sequential evaluation at
//!   every worker count, and sweeps each `(model, window)` backward field
//!   at most once per query regardless of the worker count.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust::prelude::*;
use ust_core::engine::{exhaustive, query_based};
use ust_core::{ranking, threshold};
use ust_markov::{testutil, StateMask};
use ust_space::TimeSet;

const TOL: f64 = 1e-9;

/// A random query window over `n` states: each state joins `S▫` with
/// probability 0.4; `T▫ = [t_start, t_start + t_len]`.
fn random_window(n: usize, mask_seed: u64, t_start: u32, t_len: u32) -> Option<QueryWindow> {
    let mut rng = StdRng::seed_from_u64(mask_seed);
    let mut mask = StateMask::new(n);
    for s in 0..n {
        if rng.random::<f64>() < 0.4 {
            mask.insert(s).unwrap();
        }
    }
    // PST∀Q reduces via the complement, so the window must be a proper
    // non-empty subset of the state space.
    if mask.is_empty() || mask.count() == n {
        return None;
    }
    QueryWindow::new(mask, TimeSet::interval(t_start, t_start + t_len)).ok()
}

/// A database of `objects` uncertain objects over one random chain, with
/// anchor times alternating between 0 and `max_anchor` to exercise the
/// per-anchor snapshots of the backward field.
fn random_db(
    seed: u64,
    n: usize,
    deg: usize,
    objects: usize,
    max_anchor: u32,
) -> TrajectoryDatabase {
    let chain = MarkovChain::from_csr({
        let mut rng = testutil::rng(seed);
        testutil::random_stochastic(&mut rng, n, deg)
    })
    .unwrap();
    let mut rng = testutil::rng(seed ^ 0xDA7A);
    let mut db = TrajectoryDatabase::new(chain);
    for i in 0..objects {
        let dist = testutil::random_distribution(&mut rng, n, 2);
        let anchor_time = if i % 2 == 0 { 0 } else { max_anchor };
        db.insert(UncertainObject::with_single_observation(
            i as u64,
            Observation::uncertain(anchor_time, dist).unwrap(),
        ))
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ob_qb_and_exhaustive_agree_on_all_predicates(
        (seed, n, deg) in (0u64..10_000, 2usize..=6, 1usize..=3),
        mask_seed in 0u64..1_000,
        t_start in 1u32..=3,
        t_len in 0u32..=2,
        objects in 1usize..=3,
    ) {
        let window = match random_window(n, mask_seed, t_start, t_len) {
            Some(w) => w,
            None => { prop_assume!(false); unreachable!() }
        };
        let db = random_db(seed, n, deg, objects, t_start.min(1));
        let processor = QueryProcessor::new(&db);

        let exists_ob = processor.exists_object_based(&window).unwrap();
        let exists_qb = processor.exists_query_based(&window).unwrap();
        let forall_ob = processor.forall_object_based(&window).unwrap();
        let forall_qb = processor.forall_query_based(&window).unwrap();
        let ktimes_ob = processor.ktimes_object_based(&window).unwrap();
        let ktimes_qb = processor.ktimes_query_based(&window).unwrap();

        for (idx, object) in db.objects().iter().enumerate() {
            let truth =
                exhaustive::enumerate(db.model_of(object), object, &window, 1 << 22).unwrap();

            prop_assert!((exists_ob[idx].probability - truth.exists()).abs() < TOL,
                "∃ OB {} vs exhaustive {}", exists_ob[idx].probability, truth.exists());
            prop_assert!((exists_qb[idx].probability - truth.exists()).abs() < TOL,
                "∃ QB {} vs exhaustive {}", exists_qb[idx].probability, truth.exists());
            prop_assert!((forall_ob[idx].probability - truth.forall()).abs() < TOL,
                "∀ OB {} vs exhaustive {}", forall_ob[idx].probability, truth.forall());
            prop_assert!((forall_qb[idx].probability - truth.forall()).abs() < TOL,
                "∀ QB {} vs exhaustive {}", forall_qb[idx].probability, truth.forall());

            prop_assert_eq!(ktimes_ob[idx].probabilities.len(), truth.ktimes.len());
            for (k, expected) in truth.ktimes.iter().enumerate() {
                prop_assert!((ktimes_ob[idx].probabilities[k] - expected).abs() < TOL,
                    "k={k}: OB {:?} vs exhaustive {:?}",
                    ktimes_ob[idx].probabilities, truth.ktimes);
                prop_assert!((ktimes_qb[idx].probabilities[k] - expected).abs() < TOL,
                    "k={k}: QB {:?} vs exhaustive {:?}",
                    ktimes_qb[idx].probabilities, truth.ktimes);
            }
        }
    }

    #[test]
    fn epsilon_pruning_error_stays_within_reported_mass(
        (seed, n, deg) in (0u64..10_000, 3usize..=8, 1usize..=3),
        mask_seed in 0u64..1_000,
        t_start in 1u32..=4,
        t_len in 0u32..=2,
        epsilon in 0.0005f64..0.02,
    ) {
        let window = match random_window(n, mask_seed, t_start, t_len) {
            Some(w) => w,
            None => { prop_assume!(false); unreachable!() }
        };
        let db = random_db(seed, n, deg, 1, 0);
        let exact = QueryProcessor::new(&db).exists_object_based(&window).unwrap();

        let mut stats = EvalStats::new();
        let pruned = ust_core::engine::object_based::evaluate(
            &db,
            &window,
            &EngineConfig::exact().with_epsilon(epsilon),
            &mut stats,
        )
        .unwrap();
        // The pipeline reports every unit of dropped mass; the result may
        // deviate from the exact probability by at most that much.
        prop_assert!(
            (pruned[0].probability - exact[0].probability).abs() <= stats.pruned_mass + TOL,
            "pruned {} exact {} dropped {}",
            pruned[0].probability, exact[0].probability, stats.pruned_mass
        );
    }

    #[test]
    fn batched_evaluation_is_bit_identical_to_per_object(
        (seed, n, deg) in (0u64..10_000, 3usize..=8, 1usize..=3),
        mask_seed in 0u64..1_000,
        t_start in 1u32..=3,
        t_len in 0u32..=2,
        objects in 4usize..=20,
        tau in 0.05f64..0.95,
        k in 1usize..=5,
    ) {
        let window = match random_window(n, mask_seed, t_start, t_len) {
            Some(w) => w,
            None => { prop_assume!(false); unreachable!() }
        };
        let db = random_db(seed, n, deg, objects, t_start.min(1));
        let per_object = EngineConfig::default().with_batch_size(1);

        let exists_ref =
            ust_core::engine::object_based::evaluate(&db, &window, &per_object, &mut EvalStats::new()).unwrap();
        let forall_ref =
            ust_core::engine::forall::evaluate_object_based(&db, &window, &per_object, &mut EvalStats::new()).unwrap();
        let ktimes_ref =
            ust_core::engine::ktimes::evaluate_object_based(&db, &window, &per_object, &mut EvalStats::new()).unwrap();
        let accepted_ref =
            threshold::threshold_query(&db, &window, tau, &per_object, &mut EvalStats::new()).unwrap();
        let topk_ref =
            ranking::topk_object_based_pruned(&db, &window, k, &per_object, &mut EvalStats::new()).unwrap();

        for batch_size in [3usize, 16] {
            let config = EngineConfig::default().with_batch_size(batch_size);
            let exists =
                ust_core::engine::object_based::evaluate(&db, &window, &config, &mut EvalStats::new()).unwrap();
            for (a, b) in exists.iter().zip(&exists_ref) {
                prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits(),
                    "∃ batch={} {} vs {}", batch_size, a.probability, b.probability);
            }
            let forall =
                ust_core::engine::forall::evaluate_object_based(&db, &window, &config, &mut EvalStats::new()).unwrap();
            for (a, b) in forall.iter().zip(&forall_ref) {
                prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let ktimes =
                ust_core::engine::ktimes::evaluate_object_based(&db, &window, &config, &mut EvalStats::new()).unwrap();
            for (a, b) in ktimes.iter().zip(&ktimes_ref) {
                prop_assert_eq!(a.object_id, b.object_id);
                for (x, y) in a.probabilities.iter().zip(&b.probabilities) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            let accepted =
                threshold::threshold_query(&db, &window, tau, &config, &mut EvalStats::new()).unwrap();
            prop_assert_eq!(&accepted, &accepted_ref, "threshold batch={}", batch_size);
            let topk =
                ranking::topk_object_based_pruned(&db, &window, k, &config, &mut EvalStats::new()).unwrap();
            prop_assert_eq!(topk.len(), topk_ref.len());
            for (a, b) in topk.iter().zip(&topk_ref) {
                prop_assert_eq!(a.object_id, b.object_id, "top-k order batch={}", batch_size);
                prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
        }
    }

    #[test]
    fn cached_qb_results_are_bit_identical_across_overlapping_windows(
        (seed, n, deg) in (0u64..10_000, 3usize..=8, 1usize..=3),
        mask_seed in 0u64..1_000,
        t_start in 1u32..=3,
        t_len in 0u32..=2,
        objects in 2usize..=8,
        slide in 1u32..=2,
    ) {
        let window = match random_window(n, mask_seed, t_start, t_len) {
            Some(w) => w,
            None => { prop_assume!(false); unreachable!() }
        };
        // An overlapping sibling: same states, slid time interval.
        let slid = QueryWindow::new(
            window.states().clone(),
            TimeSet::interval(window.t_start() + slide, window.t_end() + slide),
        ).unwrap();
        let db = random_db(seed, n, deg, objects, t_start.min(1));
        let config = EngineConfig::default();
        let mut cache = BackwardFieldCache::new(4);
        let mut stats = EvalStats::new();

        // Revisit each window twice so both fresh sweeps and pure hits are
        // exercised; anchors alternate (0 / max_anchor), so the second
        // population can extend a cached suffix downward.
        for w in [&window, &slid, &window, &slid] {
            let uncached =
                query_based::evaluate(&db, w, &config, &mut EvalStats::new()).unwrap();
            let cached =
                query_based::evaluate_with_cache(&db, w, &config, &mut cache, &mut stats).unwrap();
            for (a, b) in cached.iter().zip(&uncached) {
                prop_assert_eq!(a.object_id, b.object_id);
                prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits(),
                    "cached {} vs uncached {}", a.probability, b.probability);
            }
        }
        prop_assert!(stats.cache_hits >= 2, "revisits must hit: {:?}", stats);
        prop_assert!(stats.cache_misses <= 2, "only distinct windows sweep: {:?}", stats);
    }

    #[test]
    fn pooled_evaluation_is_bit_identical_to_sequential(
        (seed, n, deg) in (0u64..10_000, 3usize..=8, 1usize..=3),
        mask_seed in 0u64..1_000,
        t_start in 1u32..=3,
        t_len in 0u32..=2,
        objects in 4usize..=16,
        tau in 0.05f64..0.95,
        k in 1usize..=5,
    ) {
        let window = match random_window(n, mask_seed, t_start, t_len) {
            Some(w) => w,
            None => { prop_assume!(false); unreachable!() }
        };
        let db = random_db(seed, n, deg, objects, t_start.min(1));
        let sequential = EngineConfig::default();

        let exists_qb_ref =
            query_based::evaluate(&db, &window, &sequential, &mut EvalStats::new()).unwrap();
        let ktimes_ref = ust_core::engine::ktimes::evaluate_query_based(
            &db, &window, &sequential, &mut EvalStats::new()).unwrap();
        let accepted_ref =
            threshold::threshold_query(&db, &window, tau, &sequential, &mut EvalStats::new())
                .unwrap();
        let topk_ref =
            ranking::topk_object_based_pruned(&db, &window, k, &sequential, &mut EvalStats::new())
                .unwrap();
        let topk_qb_ref =
            ranking::topk_query_based(&db, &window, k, &sequential, &mut EvalStats::new())
                .unwrap();
        let mut baseline = EvalStats::new();
        ust_core::parallel::evaluate_exists_qb_parallel(
            &db, &window, &sequential, &mut baseline).unwrap();

        for threads in [2usize, 4] {
            let config = EngineConfig::default().with_num_threads(threads);
            // The processor owns a long-lived pool and a lock-guarded
            // backward-field cache; run every entry point twice so both
            // the fresh-sweep and the pure-cache-hit paths are pinned.
            let processor = QueryProcessor::with_config(&db, config);
            prop_assert!(processor.pool().is_some());
            for round in 0..2 {
                let exists_qb = processor.exists_query_based(&window).unwrap();
                for (a, b) in exists_qb.iter().zip(&exists_qb_ref) {
                    prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits(),
                        "∃ QB pooled threads={} round={}", threads, round);
                }
                let ktimes = processor.ktimes_query_based(&window).unwrap();
                for (a, b) in ktimes.iter().zip(&ktimes_ref) {
                    prop_assert_eq!(a.object_id, b.object_id);
                    for (x, y) in a.probabilities.iter().zip(&b.probabilities) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                let accepted = processor.threshold_query(&window, tau).unwrap();
                prop_assert_eq!(&accepted, &accepted_ref, "threshold threads={}", threads);
                let accepted_cached = processor.threshold_query_cached(&window, tau).unwrap();
                prop_assert_eq!(&accepted_cached, &accepted_ref,
                    "cached threshold threads={}", threads);
                let topk = processor.topk(&window, k).unwrap();
                prop_assert_eq!(topk.len(), topk_ref.len());
                for (a, b) in topk.iter().zip(&topk_ref) {
                    prop_assert_eq!(a.object_id, b.object_id);
                    prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
                }
                let topk_qb = processor.topk_query_based(&window, k).unwrap();
                for (a, b) in topk_qb.iter().zip(&topk_qb_ref) {
                    prop_assert_eq!(a.object_id, b.object_id, "top-k QB threads={}", threads);
                    prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
                }
            }
            // The shared-field plan sweeps each (model, window) field at
            // most once per query, independent of the worker count.
            let mut stats = EvalStats::new();
            ust_core::parallel::evaluate_exists_qb_parallel(
                &db, &window, &config, &mut stats).unwrap();
            prop_assert_eq!(stats.backward_steps, baseline.backward_steps,
                "threads={} must not re-sweep the shared field", threads);
            prop_assert_eq!(stats.fields_shared, baseline.fields_shared);
        }
    }

    #[test]
    fn threshold_decisions_match_exact_probability(
        (seed, n, deg) in (0u64..10_000, 2usize..=6, 1usize..=3),
        mask_seed in 0u64..1_000,
        t_start in 1u32..=3,
        t_len in 0u32..=2,
        tau in 0.05f64..0.95,
    ) {
        let window = match random_window(n, mask_seed, t_start, t_len) {
            Some(w) => w,
            None => { prop_assume!(false); unreachable!() }
        };
        let db = random_db(seed, n, deg, 1, 0);
        let object = &db.objects()[0];
        let exact = QueryProcessor::new(&db).exists_object_based(&window).unwrap()[0].probability;
        // Bound-based early decisions must agree with the exact value
        // whenever τ is not razor-close to it.
        prop_assume!((exact - tau).abs() > 1e-6);
        let outcome = threshold::exists_threshold(
            db.model_of(object),
            object,
            &window,
            tau,
            &EngineConfig::default(),
        )
        .unwrap();
        prop_assert_eq!(outcome.qualifies, exact >= tau,
            "τ = {}, exact = {}, outcome = {:?}", tau, exact, outcome);
        prop_assert!(outcome.lower <= exact + TOL && exact <= outcome.upper + TOL);
    }
}
