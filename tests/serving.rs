//! Serving-layer tests: admission control (`QueueFull` backpressure),
//! ticket liveness (`wait_timeout`, `cancel`, dropped jobs), and the
//! metrics registry's accounting identities.
//!
//! The pinned invariants:
//!
//! * **Bounded bursts reject exactly the overflow** — with
//!   `max_queue_depth = D` and the workers gated, a burst of `2·D`
//!   submissions accepts `D` tickets and returns `QueryError::QueueFull`
//!   for the other `D`, without ever blocking the submitter; the accepted
//!   tickets then resolve bit-identically to `execute`.
//! * **Tickets stay live** — `wait_timeout` expiry leaves the ticket
//!   usable and races completion safely; `cancel` either dequeues the job
//!   or interrupts it between plan and execute; every path completes the
//!   ticket, so `wait` can never block forever.
//! * **Accounting identities** — `submitted == accepted + rejected` and
//!   `accepted == finished + in_flight`, with every rejected and
//!   cancelled submission leaving the processor's caches bit-for-bit
//!   consistent with a fresh processor.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use ust::prelude::*;
use ust_core::engine::monte_carlo::MonteCarlo;
use ust_core::Strategy;
use ust_markov::testutil;
use ust_space::TimeSet;

fn random_db(seed: u64, n: usize, objects: usize) -> TrajectoryDatabase {
    let chain = MarkovChain::from_csr({
        let mut rng = testutil::rng(seed);
        testutil::random_stochastic(&mut rng, n, 3)
    })
    .unwrap();
    let mut rng = testutil::rng(seed ^ 0xA11CE);
    let mut db = TrajectoryDatabase::new(chain);
    for i in 0..objects {
        let dist = testutil::random_distribution(&mut rng, n, 2);
        db.insert(UncertainObject::with_single_observation(
            i as u64,
            Observation::uncertain(0, dist).unwrap(),
        ))
        .unwrap();
    }
    db
}

fn window(n: usize) -> QueryWindow {
    QueryWindow::from_states(n, [1usize, 2], TimeSet::interval(3, 5)).unwrap()
}

/// Blocks every pool worker until the returned closure is called, so
/// submitted jobs stay deterministically queued.
fn gate_workers(processor: &QueryProcessor) -> impl FnOnce() + 'static {
    let pool = processor.pool().expect("gated tests need an owned pool");
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    for shard in 0..pool.num_threads() {
        let gate = Arc::clone(&gate);
        pool.spawn(
            shard,
            Box::new(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                while !*open {
                    open = cv.wait(open).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }),
        );
    }
    // Wait until every gate job has been popped: the queues are now empty
    // and every worker is parked inside its gate.
    while pool.stats().queued_jobs > 0 {
        std::thread::yield_now();
    }
    move || {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
    }
}

fn assert_bit_eq(a: &QueryAnswer, b: &QueryAnswer, what: &str) {
    match (a, b) {
        (QueryAnswer::Probabilities(x), QueryAnswer::Probabilities(y)) => {
            assert_eq!(x.len(), y.len(), "{what}");
            for (p, q) in x.iter().zip(y) {
                assert_eq!(p.object_id, q.object_id, "{what}");
                assert_eq!(p.probability.to_bits(), q.probability.to_bits(), "{what}");
            }
        }
        (QueryAnswer::ObjectIds(x), QueryAnswer::ObjectIds(y)) => assert_eq!(x, y, "{what}"),
        (QueryAnswer::Ranked(x), QueryAnswer::Ranked(y)) => {
            assert_eq!(x.len(), y.len(), "{what}");
            for (p, q) in x.iter().zip(y) {
                assert_eq!(p.object_id, q.object_id, "{what}");
                assert_eq!(p.probability.to_bits(), q.probability.to_bits(), "{what}");
            }
        }
        (QueryAnswer::Distributions(x), QueryAnswer::Distributions(y)) => {
            assert_eq!(x.len(), y.len(), "{what}");
            for (p, q) in x.iter().zip(y) {
                for (u, v) in p.probabilities.iter().zip(&q.probabilities) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{what}");
                }
            }
        }
        _ => panic!("{what}: different answer variants"),
    }
}

/// The acceptance scenario: a burst of `2 × max_queue_depth` submissions
/// rejects exactly the overflow without blocking, and every accepted
/// ticket resolves bit-identically to `execute`.
#[test]
fn burst_rejects_exactly_the_overflow() {
    const DEPTH: usize = 4;
    let db = random_db(71, 12, 9);
    let w = window(12);
    let processor = QueryProcessor::with_config(
        &db,
        EngineConfig::default().with_num_threads(2).with_max_queue_depth(DEPTH),
    );
    let spec = Query::exists().window(w.clone()).strategy(Strategy::QueryBased).build().unwrap();

    let release = gate_workers(&processor);
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..2 * DEPTH {
        match processor.submit(&spec) {
            Ok(ticket) => tickets.push(ticket),
            Err(QueryError::QueueFull { limit }) => {
                assert_eq!(limit, DEPTH);
                rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert_eq!(tickets.len(), DEPTH, "exactly the depth bound is admitted");
    assert_eq!(rejected, DEPTH, "exactly the overflow is rejected");

    release();
    let reference = processor.execute(&spec).unwrap();
    for ticket in tickets {
        assert_bit_eq(&ticket.wait().unwrap(), &reference, "accepted ticket vs execute");
    }
    let metrics = processor.metrics();
    assert_eq!(metrics.submitted, 2 * DEPTH as u64);
    assert_eq!(metrics.accepted, DEPTH as u64);
    assert_eq!(metrics.rejected, DEPTH as u64);
    assert_eq!(metrics.completed, DEPTH as u64);
    assert_eq!(metrics.in_flight, 0);
    assert_eq!(metrics.finished(), metrics.accepted);
    let rejections: u64 = metrics.plans.iter().map(|p| p.rejections).sum();
    assert_eq!(rejections, DEPTH as u64, "rejections are attributed per plan shape");
    // Backpressure clears with the backlog: the next submission is
    // admitted again.
    processor.submit(&spec).unwrap().wait().unwrap();
}

/// `wait_timeout` expiry leaves the ticket usable; completion and expiry
/// can race freely and a later wait sees the same outcome.
#[test]
fn wait_timeout_expiry_races_completion_safely() {
    let db = random_db(73, 10, 5);
    let w = window(10);
    let processor = QueryProcessor::with_config(&db, EngineConfig::default().with_num_threads(2));
    let spec = Query::exists().window(w).strategy(Strategy::QueryBased).build().unwrap();

    let release = gate_workers(&processor);
    let ticket = processor.submit(&spec).unwrap();
    // The workers are gated, so the job cannot have run yet: a short
    // timeout must expire and leave the ticket pending.
    assert_eq!(ticket.wait_timeout(Duration::from_millis(5)), None);
    assert!(!ticket.is_done());
    release();
    // Now the completion side wins (eventually). The outcome stays in
    // place, so repeated timed waits and the final consuming wait all see
    // the same answer.
    let timed = loop {
        if let Some(outcome) = ticket.wait_timeout(Duration::from_millis(50)) {
            break outcome;
        }
    };
    let timed = timed.unwrap();
    let again = ticket.wait_timeout(Duration::ZERO).unwrap().unwrap();
    assert_bit_eq(&timed, &again, "repeated timed waits");
    assert_bit_eq(&ticket.wait().unwrap(), &timed, "consuming wait");
}

/// `cancel` dequeues a not-yet-started job; completed tickets refuse.
#[test]
fn cancel_dequeues_queued_jobs_and_reports_finished_ones() {
    let db = random_db(79, 10, 5);
    let w = window(10);
    let processor = QueryProcessor::with_config(&db, EngineConfig::default().with_num_threads(2));
    let spec = Query::exists().window(w).build().unwrap();

    let release = gate_workers(&processor);
    let doomed = processor.submit(&spec).unwrap();
    assert!(doomed.cancel(), "registered before completion");
    release();
    assert_eq!(doomed.wait(), Err(QueryError::Cancelled));

    let survivor = processor.submit(&spec).unwrap();
    while !survivor.is_done() {
        std::thread::yield_now();
    }
    assert!(!survivor.cancel(), "already finished — nothing to cancel");
    assert!(survivor.wait().is_ok());

    let metrics = processor.metrics();
    assert_eq!(metrics.cancelled, 1);
    assert_eq!(metrics.completed, 1);
    assert_eq!(metrics.in_flight, 0);
}

/// A slow query really exercises the timeout path end to end (the gated
/// tests above pin the semantics; this one pins them against a genuinely
/// running job).
#[test]
fn wait_timeout_on_a_running_query() {
    let db = random_db(83, 14, 6);
    let w = window(14);
    let processor = QueryProcessor::with_config(&db, EngineConfig::default().with_num_threads(2));
    let slow = Query::exists()
        .window(w)
        .strategy(Strategy::MonteCarlo)
        .sampling(MonteCarlo::new(400_000, 7))
        .build()
        .unwrap();
    let ticket = processor.submit(&slow).unwrap();
    // Whichever way the race goes, the ticket must stay coherent.
    match ticket.wait_timeout(Duration::from_micros(50)) {
        None => assert!(ticket.wait().is_ok(), "late wait still completes"),
        Some(outcome) => {
            let answer = outcome.unwrap();
            assert_bit_eq(&ticket.wait().unwrap(), &answer, "timed then consuming wait");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Rejected and cancelled submissions leave both the metrics
    /// accounting and the shared field caches consistent: the identities
    /// hold exactly, and subsequent executions are bit-identical to a
    /// fresh processor's.
    #[test]
    fn rejected_and_cancelled_submissions_leave_state_consistent(
        seed in 0u64..10_000,
        n in 6usize..=10,
        objects in 3usize..=8,
        depth in 1usize..=3,
    ) {
        let db = random_db(seed, n, objects);
        let w = window(n);
        let processor = QueryProcessor::with_config(
            &db,
            EngineConfig::default().with_num_threads(2).with_max_queue_depth(depth),
        );
        let specs = [
            Query::exists().window(w.clone()).strategy(Strategy::QueryBased).build().unwrap(),
            Query::forall().window(w.clone()).strategy(Strategy::ObjectBased).build().unwrap(),
            Query::ktimes(1).window(w.clone()).strategy(Strategy::QueryBased).build().unwrap(),
            Query::exists().window(w.clone()).threshold(0.4).build().unwrap(),
            Query::exists().window(w.clone()).top_k(3).build().unwrap(),
        ];

        let release = gate_workers(&processor);
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for spec in &specs {
            match processor.submit(spec) {
                Ok(t) => tickets.push(t),
                Err(QueryError::QueueFull { .. }) => rejected += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        prop_assert_eq!(tickets.len(), depth.min(specs.len()));
        // Cancel the first accepted submission while it is still queued.
        let cancelled = tickets.remove(0);
        prop_assert!(cancelled.cancel());
        release();
        prop_assert_eq!(cancelled.wait(), Err(QueryError::Cancelled));
        for ticket in tickets {
            ticket.wait().unwrap();
        }

        let metrics = processor.metrics();
        prop_assert_eq!(metrics.submitted, specs.len() as u64);
        prop_assert_eq!(metrics.accepted + metrics.rejected, metrics.submitted);
        prop_assert_eq!(metrics.rejected, rejected);
        prop_assert_eq!(metrics.cancelled, 1);
        prop_assert_eq!(metrics.in_flight, 0);
        prop_assert_eq!(metrics.finished(), metrics.accepted);

        // Caches and pool survived the churn: every spec still answers
        // bit-identically to a fresh, never-bursted processor.
        let fresh = QueryProcessor::new(&db);
        for spec in &specs {
            let warm = processor.execute(spec).unwrap();
            let cold = fresh.execute(spec).unwrap();
            assert_bit_eq(&warm, &cold, "post-burst execution vs fresh processor");
        }
    }
}

/// With `calibrate_planner` on, the learned discount really drives the
/// choice: whatever strategy `explain` picks for an `Auto` spec must be
/// the argmin of its own (calibrated) estimates, the calibration must be
/// marked, and plans stay internally consistent before and after
/// training. With the knob off (default), the flat prior stays in force.
#[test]
fn calibrated_plans_are_internally_consistent() {
    let db = random_db(89, 12, 2);
    let w = window(12);
    let bounded = Query::exists().window(w.clone()).top_k(2).build().unwrap();

    let flat = QueryProcessor::new(&db);
    let flat_plan = flat.explain(&bounded).unwrap();
    assert!(!flat_plan.calibrated);
    assert_eq!(flat_plan.ob_discount, 0.5, "cold prior");

    let calibrated =
        QueryProcessor::with_config(&db, EngineConfig::default().with_planner_calibration(true));
    // Train on the bounded workload, then replan.
    for _ in 0..3 {
        calibrated.execute(&bounded).unwrap();
    }
    let plan = calibrated.explain(&bounded).unwrap();
    assert!(plan.calibrated, "bounded runs feed the EWMA");
    assert_ne!(plan.ob_discount, 0.5, "the learned ratio replaced the flat prior");
    assert!(plan.ob_discount_learned, "this 2-object workload trains the OB side");
    match plan.strategy {
        Strategy::QueryBased => {
            assert!(plan.query_based.total() <= plan.object_based.total(), "{plan}")
        }
        Strategy::ObjectBased => {
            assert!(plan.object_based.total() < plan.query_based.total(), "{plan}")
        }
        other => panic!("Auto resolved to {other:?}"),
    }
    // Whatever the calibrated planner picks, answers agree with the flat
    // planner's to value level (strategy-independence of the engines).
    let a = calibrated.execute(&bounded).unwrap();
    let b = flat.execute(&bounded).unwrap();
    match (&a, &b) {
        (QueryAnswer::Ranked(x), QueryAnswer::Ranked(y)) => {
            for (p, q) in x.iter().zip(y) {
                assert_eq!(p.object_id, q.object_id);
                assert!((p.probability - q.probability).abs() < 1e-9);
            }
        }
        _ => panic!("top-k answers expected"),
    }
}

// --- Streaming interleavings --------------------------------------------

/// Snapshot isolation: a submitted query captures its database view at
/// submission. An ingest applied while the job is still queued must not
/// leak into it — the ticket resolves bit-identically to an execution
/// over the pre-ingest snapshot, while new executions see the new state.
#[test]
fn ingest_during_inflight_submit_sees_consistent_snapshot() {
    let db = random_db(0x51A9, 8, 6);
    let spec = Query::exists().window(window(8)).build().unwrap();
    let processor = QueryProcessor::with_config(&db, EngineConfig::default().with_num_threads(2));
    let release = gate_workers(&processor);
    let ticket = processor.submit(&spec).unwrap();
    let before = processor.snapshot();

    // Applied while the job is queued behind the gate.
    let mut rng = testutil::rng(0x51AA);
    let dist = testutil::random_distribution(&mut rng, 8, 2);
    assert_eq!(
        processor.ingest(2, Observation::uncertain(1, dist).unwrap()),
        Ok(IngestOutcome::Applied)
    );

    release();
    let stale_view = ticket.wait().unwrap();
    assert_bit_eq(
        &stale_view,
        &QueryProcessor::new(&before).execute(&spec).unwrap(),
        "queued job answers over its submission-time snapshot",
    );
    let fresh_view = processor.execute(&spec).unwrap();
    assert_bit_eq(
        &fresh_view,
        &QueryProcessor::new(&processor.snapshot()).execute(&spec).unwrap(),
        "post-ingest executions see the new state",
    );
    assert!(
        format!("{stale_view:?}") != format!("{fresh_view:?}"),
        "the ingest really changed the answer"
    );
}

/// Cancelling — or dropping — a subscription between notifications never
/// hangs an ingest and never leaks an admission slot: the arrival prunes
/// the dead registration and `in_flight` returns to zero.
#[test]
fn cancel_and_drop_between_notifications_leak_nothing() {
    let db = random_db(0x51AB, 8, 6);
    let spec = Query::exists().window(window(8)).build().unwrap();
    let processor = QueryProcessor::with_config(
        &db,
        EngineConfig::default().with_num_threads(2).with_max_queue_depth(4),
    );
    let kept = processor.watch(&spec).unwrap();
    let cancelled = processor.watch(&spec).unwrap();
    let dropped = processor.watch(&spec).unwrap();
    let dropped_id = dropped.id();

    let mut rng = testutil::rng(0x51AC);
    let dist = testutil::random_distribution(&mut rng, 8, 2);
    processor.ingest(1, Observation::uncertain(1, dist).unwrap()).unwrap();
    assert_eq!(cancelled.notifications(), 1, "live subscriptions refresh");

    cancelled.cancel();
    drop(dropped);
    let dist = testutil::random_distribution(&mut rng, 8, 2);
    processor.ingest(2, Observation::uncertain(1, dist).unwrap()).unwrap();

    assert_eq!(kept.notifications(), 2);
    assert_eq!(cancelled.notifications(), 1, "cancelled mid-stream: no further refreshes");
    assert!(cancelled.answer().is_ok(), "the last committed answer stays readable");
    let metrics = processor.metrics();
    assert_eq!(metrics.in_flight, 0, "no admission slot leaked");
    assert_eq!(metrics.finished() + metrics.in_flight, metrics.accepted);
    // The dropped subscription refreshed once (before the drop), then
    // disappeared from the registry.
    assert_eq!(metrics.stream(dropped_id).unwrap().reevaluations, 1);
    assert_bit_eq(
        &kept.answer().unwrap(),
        &QueryProcessor::new(&processor.snapshot()).execute(kept.spec()).unwrap(),
        "the surviving subscription still matches batch",
    );
}

/// Refreshes and submits drain the same admission budget, and the
/// lifecycle identities hold across a mixed stream of both.
#[test]
fn mixed_submits_and_ingests_keep_accounting_identities() {
    let db = random_db(0x51AD, 8, 6);
    let spec = Query::exists().window(window(8)).build().unwrap();
    let processor = QueryProcessor::with_config(
        &db,
        EngineConfig::default().with_num_threads(2).with_max_queue_depth(8),
    );
    let sub = processor.watch(&spec).unwrap();
    let mut rng = testutil::rng(0x51AE);
    for round in 0..4u32 {
        let ticket = processor.submit(&spec).unwrap();
        let dist = testutil::random_distribution(&mut rng, 8, 2);
        // Per-object monotone fix times that stay at or before the window
        // start, so every prefix remains answerable.
        processor
            .ingest(round as u64 % 3, Observation::uncertain(1 + round / 3, dist).unwrap())
            .unwrap();
        ticket.wait().unwrap();
    }
    let metrics = processor.metrics();
    assert_eq!(metrics.submitted, metrics.accepted + metrics.rejected);
    assert_eq!(metrics.finished() + metrics.in_flight, metrics.accepted);
    assert_eq!(metrics.in_flight, 0);
    assert_eq!(metrics.accepted, 8, "4 submits + 4 admitted refreshes share the ledger");
    assert_eq!(sub.notifications(), 4);
    assert_bit_eq(
        &sub.answer().unwrap(),
        &QueryProcessor::new(&processor.snapshot()).execute(sub.spec()).unwrap(),
        "the subscription tracks the mixed stream",
    );
}
