//! Integration tests for the engineering extensions layered on the paper's
//! framework: persistence, standing queries, top-k ranking, cluster pruning
//! and the Chapman-Kolmogorov power cache — all exercised together through
//! the public facade.

use std::sync::Arc;

use ust::prelude::*;
use ust_core::streaming::{StandingQuery, StreamingMonitor};
use ust_core::{cluster, ranking, threshold};
use ust_data::{io, synthetic, workload, SyntheticConfig};
use ust_markov::PowerCache;

fn dataset() -> ust_data::SyntheticDataset {
    synthetic::generate(&SyntheticConfig {
        num_objects: 120,
        num_states: 3_000,
        ..SyntheticConfig::default()
    })
}

#[test]
fn persisted_dataset_answers_identically() {
    let data = dataset();
    let window = workload::paper_default_window(3_000).unwrap();

    // Save → load → re-query.
    let dir = std::env::temp_dir().join("ust_ext_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("synthetic.ust");
    io::save_database(&data.db, &path).unwrap();
    let loaded = io::load_database(&path).unwrap();

    let a = QueryProcessor::new(&data.db).exists_query_based(&window).unwrap();
    let b = QueryProcessor::new(&loaded).exists_query_based(&window).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.object_id, y.object_id);
        assert!((x.probability - y.probability).abs() < 1e-12);
    }
}

#[test]
fn standing_query_agrees_with_batch_for_fresh_fixes() {
    let data = dataset();
    let window = workload::paper_default_window(3_000).unwrap();
    let chain = Arc::clone(&data.db.models()[0]);
    let standing = StandingQuery::new(chain, window.clone()).unwrap();
    let mut monitor = StreamingMonitor::new(standing);

    let batch = QueryProcessor::new(&data.db).exists_query_based(&window).unwrap();
    for (object, expected) in data.db.objects().iter().zip(&batch) {
        let p = monitor.observe(object.id(), object.anchor()).unwrap();
        assert!(
            (p - expected.probability).abs() < 1e-12,
            "object {}: streamed {p} vs batch {}",
            object.id(),
            expected.probability
        );
    }
    assert_eq!(monitor.len(), data.db.len());
    // The ranking of the monitor's board matches a top-k query.
    let board = monitor.above(0.0);
    let topk = ranking::topk_query_based(
        &data.db,
        &window,
        5,
        &EngineConfig::default(),
        &mut EvalStats::new(),
    )
    .unwrap();
    for (b, t) in board.iter().take(5).zip(&topk) {
        assert_eq!(b.0, t.object_id);
    }
}

#[test]
fn topk_matches_threshold_and_exact_order() {
    let data = dataset();
    let window = workload::paper_default_window(3_000).unwrap();
    let config = EngineConfig::default();
    let k = 10;
    let qb =
        ranking::topk_query_based(&data.db, &window, k, &config, &mut EvalStats::new()).unwrap();
    let mut stats = EvalStats::new();
    let ob = ranking::topk_object_based_pruned(&data.db, &window, k, &config, &mut stats).unwrap();
    assert_eq!(qb.len(), ob.len());
    for (a, b) in qb.iter().zip(&ob) {
        assert_eq!(a.object_id, b.object_id);
        assert!((a.probability - b.probability).abs() < 1e-12);
    }
    // Every member of the top-k passes a threshold query at its own score.
    if let Some(last) = qb.last() {
        if last.probability > 0.0 {
            let accepted = threshold::threshold_query(
                &data.db,
                &window,
                last.probability,
                &config,
                &mut EvalStats::new(),
            )
            .unwrap();
            for r in &qb {
                assert!(accepted.contains(&r.object_id));
            }
        }
    }
}

#[test]
fn power_cache_predicts_like_the_chain() {
    let data = dataset();
    let chain = &data.db.models()[0];
    let mut cache = PowerCache::new(chain.stochastic());
    let object = data.db.object(0).unwrap();
    for horizon in [0u32, 1, 7, 25] {
        let via_cache = cache.propagate_sparse(object.initial_distribution(), horizon).unwrap();
        let via_steps =
            chain.propagate_sparse(object.initial_distribution(), horizon).unwrap().to_dense();
        assert!(via_cache.approx_eq(&via_steps, 1e-9), "horizon {horizon} diverged");
    }
}

#[test]
fn cluster_bounds_respect_exact_results_on_perturbed_models() {
    // Build a 4-model database by perturbing the synthetic chain's weights.
    let base = dataset();
    let n = base.db.num_states();
    let models: Vec<_> = (0..4u64)
        .map(|i| {
            let m = base.db.models()[0].matrix().map_values(|v| v * (1.0 + i as f64 * 0.01));
            ust_markov::MarkovChain::from_weights(m).unwrap()
        })
        .collect();
    let mut db = TrajectoryDatabase::with_models(models).unwrap();
    for (i, o) in base.db.objects().iter().take(60).enumerate() {
        db.insert(o.clone().with_model(i % 4)).unwrap();
    }
    let window = workload::paper_default_window(n).unwrap();
    let clusters = vec![cluster::ModelCluster::build(&db, vec![0, 1, 2, 3]).unwrap()];
    let tau = 0.05;
    let result = cluster::clustered_threshold_query(
        &db,
        &window,
        tau,
        &clusters,
        &EngineConfig::default(),
        &mut EvalStats::new(),
    )
    .unwrap();
    let exact = threshold::threshold_query(
        &db,
        &window,
        tau,
        &EngineConfig::default(),
        &mut EvalStats::new(),
    )
    .unwrap();
    let mut got = result.accepted.clone();
    got.sort_unstable();
    assert_eq!(got, exact);
}
