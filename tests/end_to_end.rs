//! End-to-end pipelines over generated datasets: synthetic (Table I),
//! road networks, icebergs — exercising the full public API surface the
//! way the examples and the benchmark harness do.

use ust::prelude::*;
use ust_core::engine::{independent, ktimes};
use ust_core::{parallel, prefilter, threshold};
use ust_data::network_data::{self, NetworkObjectConfig};
use ust_data::{iceberg, synthetic, traffic, workload, SyntheticConfig};
use ust_space::network_gen;

#[test]
fn synthetic_pipeline_all_queries() {
    let data = synthetic::generate(&SyntheticConfig {
        num_objects: 200,
        num_states: 5_000,
        ..SyntheticConfig::default()
    });
    let window = workload::paper_default_window(5_000).unwrap();
    let processor = QueryProcessor::new(&data.db);

    let exists = processor.exists_query_based(&window).unwrap();
    assert_eq!(exists.len(), 200);
    for r in &exists {
        assert!((0.0..=1.0).contains(&r.probability), "p = {}", r.probability);
    }
    let nonzero = exists.iter().filter(|r| r.probability > 0.0).count();
    // The window sits at states [100, 120]; only objects anchored nearby
    // can reach it within 25 steps (cone ≤ 20·25 states wide).
    assert!(nonzero < 200, "window must not be reachable by everyone");

    let forall = processor.forall_query_based(&window).unwrap();
    let kdist = processor.ktimes_query_based(&window).unwrap();
    for ((e, f), k) in exists.iter().zip(&forall).zip(&kdist) {
        assert!(f.probability <= e.probability + 1e-9, "∀ ≤ ∃");
        assert!((e.probability - k.prob_at_least_once()).abs() < 1e-9);
        assert!((f.probability - k.prob_always()).abs() < 1e-9);
    }
}

#[test]
fn parallel_threshold_and_prefilter_consistency() {
    let data = synthetic::generate(&SyntheticConfig {
        num_objects: 300,
        num_states: 4_000,
        ..SyntheticConfig::default()
    });
    let window = workload::paper_default_window(4_000).unwrap();
    let config = EngineConfig::default();

    // Parallel == sequential.
    let sequential =
        ust_core::engine::object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new())
            .unwrap();
    let parallel = parallel::evaluate_exists_parallel(
        &data.db,
        &window,
        &config.with_num_threads(4),
        &mut EvalStats::new(),
    )
    .unwrap();
    for (a, b) in sequential.iter().zip(&parallel) {
        assert!((a.probability - b.probability).abs() < 1e-12);
    }

    // Threshold query == filtering the exact results.
    for tau in [0.01, 0.2, 0.7] {
        let accepted =
            threshold::threshold_query(&data.db, &window, tau, &config, &mut EvalStats::new())
                .unwrap();
        let expected: Vec<u64> =
            sequential.iter().filter(|r| r.probability >= tau).map(|r| r.object_id).collect();
        assert_eq!(accepted, expected, "τ = {tau}");
    }

    // Cone prefilter keeps every object with non-zero probability.
    let filter = prefilter::ConePrefilter::build(&data.db, &data.space);
    let rect = ust_space::Rect::from_bounds(100.0, -0.5, 120.0, 0.5);
    let candidates = filter.candidates(&rect, &window);
    for (idx, r) in sequential.iter().enumerate() {
        if r.probability > 0.0 {
            assert!(candidates.contains(&idx), "object {idx} wrongly pruned");
        }
    }
    assert!(candidates.len() < data.db.len(), "prefilter should prune something");
}

#[test]
fn road_network_pipeline() {
    let dataset = network_data::generate(
        &network_gen::small_city(42),
        &NetworkObjectConfig { num_objects: 150, object_spread: 4, seed: 42 },
    );
    assert!(dataset.network.is_connected());
    let n = dataset.network.num_nodes();
    let window = QueryWindow::from_states(n, 100usize..=140, TimeSet::interval(10, 15)).unwrap();
    let processor = QueryProcessor::new(&dataset.db);
    let ob = processor.exists_object_based(&window).unwrap();
    let qb = processor.exists_query_based(&window).unwrap();
    for (a, b) in ob.iter().zip(&qb) {
        assert!((a.probability - b.probability).abs() < 1e-9);
    }
    // Expected occupancy behaves like a measure.
    let expected = traffic::expected_objects_in_window(&dataset.db, &window).unwrap();
    assert!(expected >= 0.0 && expected <= dataset.db.len() as f64);
}

#[test]
fn iceberg_pipeline_with_multi_observations() {
    let scenario = iceberg::generate(&iceberg::IcebergConfig {
        rows: 20,
        cols: 20,
        num_icebergs: 60,
        resight_probability: 0.5,
        ..iceberg::IcebergConfig::default()
    });
    let n = scenario.db.num_states();
    let window = QueryWindow::from_region(
        &scenario.grid,
        &Region::rect(5.0, 8.0, 15.0, 12.0),
        TimeSet::interval(1, 6),
    )
    .unwrap();
    assert!(window.states().dim() == n);

    // Multi-observation evaluation handles the whole fleet (re-sighted or
    // not) and stays in [0, 1].
    let results = ust_core::multi_obs::evaluate_exists_multi(
        &scenario.db,
        &window,
        &EngineConfig::default(),
        &mut EvalStats::new(),
    )
    .unwrap();
    assert_eq!(results.len(), 60);
    for r in &results {
        assert!((0.0..=1.0).contains(&r.probability));
    }
}

#[test]
fn accuracy_experiment_shape_holds() {
    // The Fig. 9(d) claim at test scale: the independence model's deviation
    // from the exact model grows with the window length.
    let data = synthetic::generate(&SyntheticConfig {
        num_objects: 80,
        num_states: 2_000,
        ..SyntheticConfig::default()
    });
    let config = EngineConfig::default();
    let base = workload::paper_default_window(2_000).unwrap();
    let mut deviations = Vec::new();
    for len in [1u32, 5, 10] {
        let window = workload::with_duration(&base, len).unwrap();
        let exact = QueryProcessor::new(&data.db).exists_query_based(&window).unwrap();
        let indep = independent::evaluate_exists_independent(
            &data.db,
            &window,
            &config,
            &mut EvalStats::new(),
        )
        .unwrap();
        let dev: f64 =
            exact.iter().zip(&indep).map(|(a, b)| (a.probability - b.probability).abs()).sum();
        deviations.push(dev);
    }
    assert!(deviations[0] < 1e-9, "length-1 windows are unbiased");
    assert!(
        deviations[2] > deviations[1] * 0.5 && deviations[2] > deviations[0],
        "bias must grow with window length: {deviations:?}"
    );
}

#[test]
fn ktimes_expected_visits_equals_marginal_sum_on_dataset() {
    let data = synthetic::generate(&SyntheticConfig {
        num_objects: 30,
        num_states: 2_000,
        ..SyntheticConfig::default()
    });
    let window = workload::paper_default_window(2_000).unwrap();
    let config = EngineConfig::default();
    let kdist =
        ktimes::evaluate_query_based(&data.db, &window, &config, &mut EvalStats::new()).unwrap();
    for (object, k) in data.db.objects().iter().zip(&kdist) {
        let marginals =
            independent::window_marginals(data.db.model_of(object), object, &window, &config)
                .unwrap();
        let marginal_sum: f64 = marginals.iter().sum();
        assert!(
            (k.expected_visits() - marginal_sum).abs() < 1e-9,
            "linearity of expectation violated: {} vs {marginal_sum}",
            k.expected_visits()
        );
    }
}
