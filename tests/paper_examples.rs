//! End-to-end verification of every worked example in the paper, through
//! the public facade crate.

use ust::prelude::*;
use ust_core::engine::{exhaustive, forall, monte_carlo::MonteCarlo};
use ust_core::multi_obs;

/// The running-example chain of Section V.
fn paper_chain() -> MarkovChain {
    MarkovChain::from_csr(
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap(),
    )
    .unwrap()
}

/// The Section VI variant (row s2 = 0.5 / 0.5).
fn section6_chain() -> MarkovChain {
    MarkovChain::from_csr(
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.5, 0.0, 0.5], vec![0.0, 0.8, 0.2]])
            .unwrap(),
    )
    .unwrap()
}

fn single_object_db(chain: MarkovChain, state: usize) -> TrajectoryDatabase {
    let n = chain.num_states();
    let mut db = TrajectoryDatabase::new(chain);
    db.insert(UncertainObject::with_single_observation(
        1,
        Observation::exact(0, n, state).unwrap(),
    ))
    .unwrap();
    db
}

fn paper_window() -> QueryWindow {
    QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
}

#[test]
fn section_5a_stepwise_narrative() {
    // "P(o,2) = (0, 0.32, 0.68) gives us a lower bound of 32% …
    //  the result of this query is 0.32 + 0.544 = 0.864."
    let chain = paper_chain();
    let p0 = DenseVector::from_vec(vec![0.0, 1.0, 0.0]);
    let p2 = chain.propagate_dense(&p0, 2).unwrap();
    assert!(p2.approx_eq(&DenseVector::from_vec(vec![0.0, 0.32, 0.68]), 1e-12));
    let after_hit = DenseVector::from_vec(vec![0.0, 0.0, 0.68]);
    let p3 = chain.step_dense(&after_hit).unwrap();
    assert!((p3.get(1) - 0.544).abs() < 1e-12);
    assert!((p3.get(2) - 0.136).abs() < 1e-12);
}

#[test]
fn example_1_object_based_result() {
    let db = single_object_db(paper_chain(), 1);
    let results = QueryProcessor::new(&db).exists_object_based(&paper_window()).unwrap();
    assert!((results[0].probability - 0.864).abs() < 1e-12);
}

#[test]
fn example_2_query_based_result() {
    let db = single_object_db(paper_chain(), 1);
    let results = QueryProcessor::new(&db).exists_query_based(&paper_window()).unwrap();
    assert!((results[0].probability - 0.864).abs() < 1e-12);
    // The full backward vector (0.96, 0.864, 0.928) from Example 2, read
    // off by anchoring one object per start state.
    for (state, expected) in [(0usize, 0.96), (1, 0.864), (2, 0.928)] {
        let db = single_object_db(paper_chain(), state);
        let r = QueryProcessor::new(&db).exists_query_based(&paper_window()).unwrap();
        assert!(
            (r[0].probability - expected).abs() < 1e-12,
            "start state {state}: got {}",
            r[0].probability
        );
    }
}

#[test]
fn section_6_interpolation_forces_zero() {
    // Observations s1@t0, s2@t3 under the Section VI chain; window
    // S▫ = {s2}, T▫ = {1, 2}: the only surviving world avoids the window.
    let chain = section6_chain();
    let object = UncertainObject::new(
        1,
        vec![Observation::exact(0, 3, 0).unwrap(), Observation::exact(3, 3, 1).unwrap()],
    )
    .unwrap();
    let window = QueryWindow::from_states(3, [1usize], TimeSet::interval(1, 2)).unwrap();
    let p = multi_obs::exists_probability_multi(&chain, &object, &window, &EngineConfig::default())
        .unwrap();
    assert_eq!(p, 0.0);
    // The exhaustive possible-worlds oracle agrees.
    let oracle = exhaustive::enumerate(&chain, &object, &window, 1 << 20).unwrap();
    assert_eq!(oracle.exists(), 0.0);
}

#[test]
fn section_7_ktimes_distribution() {
    // C(3) row sums (0.136, 0.672, 0.192) from the worked example.
    let db = single_object_db(paper_chain(), 1);
    let window = paper_window();
    for results in [
        QueryProcessor::new(&db).ktimes_object_based(&window).unwrap(),
        QueryProcessor::new(&db).ktimes_query_based(&window).unwrap(),
    ] {
        let probs = &results[0].probabilities;
        assert!((probs[0] - 0.136).abs() < 1e-12);
        assert!((probs[1] - 0.672).abs() < 1e-12);
        assert!((probs[2] - 0.192).abs() < 1e-12);
    }
}

#[test]
fn section_7_forall_complement_identity() {
    // P∀(S▫, T▫) = 1 − P∃(S ∖ S▫, T▫), and both equal P(k = |T▫|).
    let chain = paper_chain();
    let db = single_object_db(chain.clone(), 1);
    let window = paper_window();
    let processor = QueryProcessor::new(&db);
    let forall_ob = processor.forall_object_based(&window).unwrap()[0].probability;
    let forall_qb = processor.forall_query_based(&window).unwrap()[0].probability;
    let k = processor.ktimes_object_based(&window).unwrap()[0].clone();
    assert!((forall_ob - forall_qb).abs() < 1e-12);
    assert!((forall_ob - k.prob_always()).abs() < 1e-12);
    // Direct identity check.
    let o = db.object(0).unwrap();
    let direct =
        forall::forall_probability_ob(&chain, o, &window, &EngineConfig::default()).unwrap();
    assert!((direct - forall_ob).abs() < 1e-12);
}

#[test]
fn monte_carlo_error_model_from_section_8() {
    // "For 100 samples, the standard deviation between p and p̂ is thus at
    // least 5%" — for p = 0.5 exactly 0.05.
    assert!((MonteCarlo::standard_error(0.5, 100) - 0.05).abs() < 1e-12);
    // A large-sample run lands within 4σ of 0.864 on the running example.
    let chain = paper_chain();
    let object = UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap());
    let estimate =
        MonteCarlo::new(10_000, 3).exists_probability(&chain, &object, &paper_window()).unwrap();
    assert!((estimate - 0.864).abs() < 4.0 * MonteCarlo::standard_error(0.864, 10_000));
}

#[test]
fn figure_1_dependency_argument() {
    // Figure 1's point: for an object that can only move forward, the
    // probability of intersecting a window it has passed cannot keep
    // growing with more window timestamps. Model: a strictly rightward
    // conveyor; window at state 2 with an ever-longer time range.
    let n = 10;
    let mut rows = vec![vec![0.0; n]; n];
    for (i, row) in rows.iter_mut().enumerate() {
        if i + 1 < n {
            row[i + 1] = 1.0;
        } else {
            row[i] = 1.0;
        }
    }
    let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&rows).unwrap()).unwrap();
    let object = UncertainObject::with_single_observation(1, Observation::exact(0, n, 0).unwrap());
    let config = EngineConfig::default();
    let mut previous = 0.0;
    for t_hi in 2..=8u32 {
        let window = QueryWindow::from_states(n, [2usize], TimeSet::interval(1, t_hi)).unwrap();
        let p =
            ust_core::engine::object_based::exists_probability(&chain, &object, &window, &config)
                .unwrap();
        // Deterministic motion passes state 2 exactly at t=2: P = 1 for
        // every window containing t=2, never "converging to 1" spuriously
        // from below as the independence model would.
        assert!((p - 1.0).abs() < 1e-12);
        previous = p;
    }
    let _ = previous;
}
