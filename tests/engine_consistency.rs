//! Property-based cross-engine consistency.
//!
//! On randomly generated small chains, objects and windows, every engine in
//! the crate must tell the same story:
//!
//! * OB ≡ QB ≡ blown-up reference ≡ exhaustive possible-worlds enumeration;
//! * `Σ_k P(k) = 1`, `P∃ = 1 − P(k=0)`, `P∀ = P(k=|T▫|) = 1 − P∃(S∖S▫)`;
//! * Monte-Carlo lands within a generous confidence band;
//! * ε-pruning errs by at most the reported dropped mass.

use proptest::prelude::*;

use ust::prelude::*;
use ust_core::engine::{
    exhaustive, forall, ktimes, monte_carlo::MonteCarlo, object_based, query_based,
};
use ust_markov::testutil;

/// Strategy: a random banded stochastic chain with 3..=7 states.
/// (`proptest::Strategy` spelled out — `ust::prelude` now also exports a
/// `Strategy`, the query-planner override enum.)
fn chain_strategy() -> impl proptest::prelude::Strategy<Value = (u64, usize)> {
    (0u64..5_000, 3usize..=7)
}

fn build_chain(seed: u64, n: usize) -> MarkovChain {
    let mut rng = testutil::rng(seed);
    MarkovChain::from_csr(testutil::random_banded_stochastic(&mut rng, n, 3, 4)).unwrap()
}

fn build_object(seed: u64, n: usize, anchor_time: u32) -> UncertainObject {
    let mut rng = testutil::rng(seed ^ 0xABCD);
    let dist = testutil::random_distribution(&mut rng, n, 2);
    UncertainObject::with_single_observation(7, Observation::uncertain(anchor_time, dist).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ob_qb_blowup_and_oracle_agree(
        (seed, n) in chain_strategy(),
        state_bits in 1u8..7,
        t_lo in 0u32..4,
        t_len in 0u32..3,
        anchor_time in 0u32..2,
    ) {
        let chain = build_chain(seed, n);
        let object = build_object(seed, n, anchor_time);
        // Window states from the low bits; clip to the dimension.
        let states: Vec<usize> =
            (0..n).filter(|s| state_bits & (1 << (s % 7)) != 0).collect();
        prop_assume!(!states.is_empty() && states.len() < n);
        let t_start = anchor_time + t_lo;
        let window = QueryWindow::from_states(
            n,
            states,
            TimeSet::interval(t_start, t_start + t_len),
        ).unwrap();
        let config = EngineConfig::default();

        let ob = object_based::exists_probability(&chain, &object, &window, &config).unwrap();
        let qb = query_based::exists_probability(&chain, &object, &window, &config).unwrap();
        let kd = ktimes::ktimes_distribution_ob(&chain, &object, &window, &config).unwrap();
        let kq = ktimes::ktimes_distribution_qb(&chain, &object, &window, &config).unwrap();
        let kb = ktimes::ktimes_distribution_blowup(&chain, &object, &window).unwrap();
        let oracle = exhaustive::enumerate(&chain, &object, &window, 1 << 22).unwrap();

        prop_assert!((ob - qb).abs() < 1e-9, "OB {ob} vs QB {qb}");
        prop_assert!((ob - oracle.exists()).abs() < 1e-9, "OB {ob} vs oracle {}", oracle.exists());
        let ksum: f64 = kd.iter().sum();
        prop_assert!((ksum - 1.0).abs() < 1e-9, "Σ P(k) = {ksum}");
        prop_assert!((1.0 - kd[0] - ob).abs() < 1e-9, "P∃ vs 1 − P(k=0)");
        for k in 0..kd.len() {
            prop_assert!((kd[k] - oracle.ktimes[k]).abs() < 1e-9, "k = {k}");
            prop_assert!((kd[k] - kq[k]).abs() < 1e-9, "qb k = {k}");
            prop_assert!((kd[k] - kb[k]).abs() < 1e-9, "blowup k = {k}");
        }
    }

    #[test]
    fn forall_complement_identity(
        (seed, n) in chain_strategy(),
        t_len in 0u32..3,
    ) {
        let chain = build_chain(seed, n);
        let object = build_object(seed, n, 0);
        // A strict subset of states so the complement is non-empty.
        let states: Vec<usize> = (0..n / 2).collect();
        prop_assume!(!states.is_empty());
        let window =
            QueryWindow::from_states(n, states, TimeSet::interval(1, 1 + t_len)).unwrap();
        let config = EngineConfig::default();

        let fa_ob = forall::forall_probability_ob(&chain, &object, &window, &config).unwrap();
        let fa_qb = forall::forall_probability_qb(&chain, &object, &window, &config).unwrap();
        let kd = ktimes::ktimes_distribution_ob(&chain, &object, &window, &config).unwrap();
        let oracle = exhaustive::enumerate(&chain, &object, &window, 1 << 22).unwrap();

        prop_assert!((fa_ob - fa_qb).abs() < 1e-9);
        prop_assert!((fa_ob - kd[kd.len() - 1]).abs() < 1e-9);
        prop_assert!((fa_ob - oracle.forall()).abs() < 1e-9);
    }

    #[test]
    fn epsilon_pruning_error_is_bounded_by_dropped_mass(
        (seed, n) in chain_strategy(),
        eps_exp in 1u32..5,
    ) {
        let chain = build_chain(seed, n);
        let object = build_object(seed, n, 0);
        let window = QueryWindow::from_states(n, [0usize], TimeSet::interval(2, 4)).unwrap();
        let exact = object_based::exists_probability(
            &chain, &object, &window, &EngineConfig::default()).unwrap();
        let eps = 10f64.powi(-(eps_exp as i32));
        let mut stats = EvalStats::new();
        let pruned = object_based::exists_probability_with_stats(
            &chain, &object, &window,
            &EngineConfig::default().with_epsilon(eps), &mut stats).unwrap();
        prop_assert!(
            (exact - pruned).abs() <= stats.pruned_mass + 1e-12,
            "error {} exceeds dropped mass {}", (exact - pruned).abs(), stats.pruned_mass
        );
    }
}

#[test]
fn monte_carlo_confidence_band() {
    // Fixed-seed statistical check (not a proptest: sampling is expensive).
    for seed in [1u64, 2, 3] {
        let n = 6;
        let chain = build_chain(seed, n);
        let object = build_object(seed, n, 0);
        let window = QueryWindow::from_states(n, [0usize, 1], TimeSet::interval(2, 4)).unwrap();
        let exact =
            object_based::exists_probability(&chain, &object, &window, &EngineConfig::default())
                .unwrap();
        let samples = 20_000;
        let estimate =
            MonteCarlo::new(samples, seed).exists_probability(&chain, &object, &window).unwrap();
        let sigma = MonteCarlo::standard_error(exact.clamp(0.01, 0.99), samples);
        assert!(
            (estimate - exact).abs() <= 5.0 * sigma,
            "seed {seed}: estimate {estimate} vs exact {exact} (5σ = {})",
            5.0 * sigma
        );
    }
}

#[test]
fn batch_engines_agree_on_synthetic_data() {
    // Deterministic medium-size agreement check over a generated dataset.
    let data = ust_data::synthetic::generate(&ust_data::SyntheticConfig {
        num_objects: 50,
        num_states: 3_000,
        ..ust_data::SyntheticConfig::default()
    });
    let window = ust_data::workload::paper_default_window(3_000).unwrap();
    let processor = QueryProcessor::new(&data.db);
    let ob = processor.exists_object_based(&window).unwrap();
    let qb = processor.exists_query_based(&window).unwrap();
    let kd = processor.ktimes_object_based(&window).unwrap();
    for ((a, b), k) in ob.iter().zip(&qb).zip(&kd) {
        assert!((a.probability - b.probability).abs() < 1e-9);
        assert!((a.probability - k.prob_at_least_once()).abs() < 1e-9);
    }
}
