//! Property-based verification of the Section VI machinery: the doubled
//! state-space PST∃Q with multiple observations and forward–backward
//! smoothing, both against the exhaustive possible-worlds oracle.

use proptest::prelude::*;

use ust::prelude::*;
use ust_core::engine::exhaustive;
use ust_core::{multi_obs, smoothing, QueryError};
use ust_markov::testutil;

fn build_chain(seed: u64, n: usize) -> MarkovChain {
    let mut rng = testutil::rng(seed);
    MarkovChain::from_csr(testutil::random_banded_stochastic(&mut rng, n, 3, 4)).unwrap()
}

/// An object with two uncertain observations whose joint evidence is
/// guaranteed consistent: the second observation's support is the exact
/// forward image of the first (so no world is impossible).
fn consistent_two_obs_object(seed: u64, chain: &MarkovChain, gap: u32) -> Option<UncertainObject> {
    let n = chain.num_states();
    let mut rng = testutil::rng(seed ^ 0xFEED);
    let first = testutil::random_distribution(&mut rng, n, 2);
    // Forward-propagate to find reachable support at time `gap`.
    let reached = chain.propagate_sparse(&first, gap).ok()?;
    if reached.nnz() == 0 {
        return None;
    }
    // Pick a soft observation over (a subset of) the reachable support.
    let pairs: Vec<(usize, f64)> = reached.iter().take(3).map(|(s, _)| (s, 1.0)).collect();
    let second = ust_markov::SparseVector::from_pairs(n, pairs).ok()?;
    UncertainObject::new(
        1,
        vec![Observation::uncertain(0, first).ok()?, Observation::uncertain(gap, second).ok()?],
    )
    .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn multi_obs_matches_exhaustive(
        seed in 0u64..3_000,
        n in 3usize..=6,
        gap in 2u32..=5,
        t_lo in 1u32..3,
        t_len in 0u32..2,
    ) {
        let chain = build_chain(seed, n);
        let Some(object) = consistent_two_obs_object(seed, &chain, gap) else {
            return Ok(());
        };
        let window = QueryWindow::from_states(
            n, [0usize], TimeSet::interval(t_lo, t_lo + t_len)).unwrap();
        let exact = multi_obs::exists_probability_multi(
            &chain, &object, &window, &EngineConfig::default());
        let oracle = exhaustive::enumerate(&chain, &object, &window, 1 << 22);
        match (exact, oracle) {
            (Ok(p), Ok(o)) => {
                prop_assert!((p - o.exists()).abs() < 1e-9,
                    "multi-obs {p} vs oracle {}", o.exists());
            }
            (Err(QueryError::ImpossibleEvidence), Err(QueryError::ImpossibleEvidence)) => {}
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn smoothing_matches_degenerate_window_queries(
        seed in 0u64..2_000,
        n in 3usize..=5,
        gap in 2u32..=4,
        t in 1u32..4,
    ) {
        prop_assume!(t < gap);
        let chain = build_chain(seed, n);
        let Some(object) = consistent_two_obs_object(seed, &chain, gap) else {
            return Ok(());
        };
        let smoothed = match smoothing::smoothed_distribution(&chain, &object, t) {
            Ok(d) => d,
            Err(QueryError::ImpossibleEvidence) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        // Posterior marginal == degenerate-window exists probability.
        let mut total = 0.0;
        for s in 0..n {
            let window = QueryWindow::from_states(n, [s], TimeSet::at(t)).unwrap();
            let oracle = exhaustive::enumerate(&chain, &object, &window, 1 << 22).unwrap();
            prop_assert!((smoothed.get(s) - oracle.exists()).abs() < 1e-9,
                "state {s}: smoothed {} vs oracle {}", smoothed.get(s), oracle.exists());
            total += smoothed.get(s);
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_observation_multi_reduces_to_plain_ob(
        seed in 0u64..2_000,
        n in 3usize..=7,
        t_len in 0u32..3,
    ) {
        let chain = build_chain(seed, n);
        let mut rng = testutil::rng(seed ^ 1);
        let dist = testutil::random_distribution(&mut rng, n, 2);
        let object = UncertainObject::with_single_observation(
            4, Observation::uncertain(0, dist).unwrap());
        let window = QueryWindow::from_states(
            n, [n - 1], TimeSet::interval(1, 1 + t_len)).unwrap();
        let config = EngineConfig::default();
        let multi = multi_obs::exists_probability_multi(&chain, &object, &window, &config)
            .unwrap();
        let plain = ust_core::engine::object_based::exists_probability(
            &chain, &object, &window, &config).unwrap();
        prop_assert!((multi - plain).abs() < 1e-12);
    }
}

#[test]
fn three_observations_are_fused_in_order() {
    // A deterministic conveyor with a "fork": verify a three-fix object is
    // handled and matches enumeration.
    let chain = MarkovChain::from_csr(
        CsrMatrix::from_dense(&[
            vec![0.0, 0.5, 0.5, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0],
        ])
        .unwrap(),
    )
    .unwrap();
    let object = UncertainObject::new(
        9,
        vec![
            Observation::exact(0, 4, 0).unwrap(),
            Observation::exact(2, 4, 3).unwrap(),
            Observation::exact(3, 4, 0).unwrap(),
        ],
    )
    .unwrap();
    let window = QueryWindow::from_states(4, [1usize], TimeSet::at(1)).unwrap();
    let p = multi_obs::exists_probability_multi(&chain, &object, &window, &EngineConfig::default())
        .unwrap();
    let oracle = exhaustive::enumerate(&chain, &object, &window, 1 << 20).unwrap();
    assert!((p - oracle.exists()).abs() < 1e-12);
    // Both routes (via s2 or s3) are consistent with all three fixes, so
    // the window {s2}×{1} is hit with probability 1/2.
    assert!((p - 0.5).abs() < 1e-12);
}

#[test]
fn smoothing_trajectory_interpolates_between_fixes() {
    let chain = build_chain(11, 5);
    let object = consistent_two_obs_object(11, &chain, 4).expect("consistent object");
    let last = object.last_observation().time();
    let traj = smoothing::smoothed_trajectory(&chain, &object, 0..=last).unwrap();
    assert_eq!(traj.len(), last as usize + 1);
    for (_, dist) in &traj {
        assert!((dist.sum() - 1.0).abs() < 1e-9);
    }
}
