//! Property and integration tests of the unified query API: the
//! `QuerySpec` builder, the planner, the single `execute` entry point, the
//! async `submit` front door and the deprecated per-predicate shims.
//!
//! The pinned invariants:
//!
//! * **Auto ≡ explicit** — a `Strategy::Auto` spec answers bit-for-bit
//!   identically to the strategy the planner reports via `explain`, and
//!   the two exact strategies agree with each other: exactly (ids,
//!   rankings) for the threshold and top-k decorators, within tolerance
//!   for raw probabilities — across all predicates (∃ / ∀ / k-times) and
//!   worker counts (1 and 4).
//! * **submit ≡ execute** — awaiting an asynchronously submitted spec
//!   yields the bit-identical answer of the synchronous call.
//! * **shims ≡ pre-redesign drivers** — every deprecated `QueryProcessor`
//!   method returns bit-for-bit what the original free-function drivers
//!   return, so the API redesign changed no numbers.
//! * **subset ≡ filtered full run** — a spec restricted to explicit
//!   object ids returns exactly the full run's entries for those objects.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust::prelude::*;
use ust_core::engine::{forall, ktimes, object_based, query_based};
// Explicit import: both glob preludes export a `Strategy` (proptest's
// strategy trait vs. the planner override enum); the planner enum wins.
use ust_core::Strategy;
use ust_core::{ranking, threshold};
use ust_markov::{testutil, StateMask};
use ust_space::TimeSet;

const TOL: f64 = 1e-9;

fn random_window(n: usize, mask_seed: u64, t_start: u32, t_len: u32) -> Option<QueryWindow> {
    let mut rng = StdRng::seed_from_u64(mask_seed);
    let mut mask = StateMask::new(n);
    for s in 0..n {
        if rng.random::<f64>() < 0.4 {
            mask.insert(s).unwrap();
        }
    }
    // The ∀ reduction needs a proper non-empty subset.
    if mask.is_empty() || mask.count() == n {
        return None;
    }
    QueryWindow::new(mask, TimeSet::interval(t_start, t_start + t_len)).ok()
}

fn random_db(seed: u64, n: usize, objects: usize, max_anchor: u32) -> TrajectoryDatabase {
    let chain = MarkovChain::from_csr({
        let mut rng = testutil::rng(seed);
        testutil::random_stochastic(&mut rng, n, 3)
    })
    .unwrap();
    let mut rng = testutil::rng(seed ^ 0x51EC);
    let mut db = TrajectoryDatabase::new(chain);
    for i in 0..objects {
        let dist = testutil::random_distribution(&mut rng, n, 2);
        let anchor_time = if i % 2 == 0 { 0 } else { max_anchor };
        db.insert(UncertainObject::with_single_observation(
            i as u64,
            Observation::uncertain(anchor_time, dist).unwrap(),
        ))
        .unwrap();
    }
    db
}

/// Bit-level equality of two answers (f64s compared via `to_bits`).
fn assert_bit_eq(a: &QueryAnswer, b: &QueryAnswer, what: &str) {
    match (a, b) {
        (QueryAnswer::Probabilities(x), QueryAnswer::Probabilities(y)) => {
            assert_eq!(x.len(), y.len(), "{what}: length");
            for (p, q) in x.iter().zip(y) {
                assert_eq!(p.object_id, q.object_id, "{what}: object order");
                assert_eq!(p.probability.to_bits(), q.probability.to_bits(), "{what}: bits");
            }
        }
        (QueryAnswer::Distributions(x), QueryAnswer::Distributions(y)) => {
            assert_eq!(x.len(), y.len(), "{what}: length");
            for (p, q) in x.iter().zip(y) {
                assert_eq!(p.object_id, q.object_id, "{what}: object order");
                assert_eq!(p.probabilities.len(), q.probabilities.len());
                for (u, v) in p.probabilities.iter().zip(&q.probabilities) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{what}: bits");
                }
            }
        }
        (QueryAnswer::ObjectIds(x), QueryAnswer::ObjectIds(y)) => {
            assert_eq!(x, y, "{what}: accepted ids");
        }
        (QueryAnswer::Ranked(x), QueryAnswer::Ranked(y)) => {
            assert_eq!(x.len(), y.len(), "{what}: length");
            for (p, q) in x.iter().zip(y) {
                assert_eq!(p.object_id, q.object_id, "{what}: ranking");
                assert_eq!(p.probability.to_bits(), q.probability.to_bits(), "{what}: bits");
            }
        }
        _ => panic!("{what}: answers have different variants: {a:?} vs {b:?}"),
    }
}

/// Value-level agreement of the two exact strategies: exact for id lists
/// and ranking order, `TOL` for probabilities.
fn assert_strategies_agree(ob: &QueryAnswer, qb: &QueryAnswer, what: &str) {
    match (ob, qb) {
        (QueryAnswer::Probabilities(x), QueryAnswer::Probabilities(y)) => {
            assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(y) {
                assert_eq!(p.object_id, q.object_id);
                assert!((p.probability - q.probability).abs() < TOL, "{what}: OB vs QB");
            }
        }
        (QueryAnswer::Distributions(x), QueryAnswer::Distributions(y)) => {
            assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(y) {
                for (u, v) in p.probabilities.iter().zip(&q.probabilities) {
                    assert!((u - v).abs() < TOL, "{what}: OB vs QB distributions");
                }
            }
        }
        (QueryAnswer::ObjectIds(x), QueryAnswer::ObjectIds(y)) => {
            assert_eq!(x, y, "{what}: threshold decisions must match exactly");
        }
        (QueryAnswer::Ranked(x), QueryAnswer::Ranked(y)) => {
            // Two documented sources of slack between the strategies:
            // zero-probability padding (the pruned OB driver drops objects
            // that provably cannot reach the window, the QB driver lists
            // them at 0 — see `Decorator::TopK`), and near-tie ordering
            // (values equal up to ulps may swap positions). So: the
            // positively-ranked entries must agree positionally in value.
            let xs: Vec<_> = x.iter().filter(|r| r.probability > TOL).collect();
            let ys: Vec<_> = y.iter().filter(|r| r.probability > TOL).collect();
            assert_eq!(xs.len(), ys.len(), "{what}: positive rank counts");
            for (p, q) in xs.iter().zip(&ys) {
                assert!(
                    (p.probability - q.probability).abs() < TOL,
                    "{what}: rank values must agree"
                );
            }
        }
        _ => panic!("{what}: answers have different variants"),
    }
}

/// Every predicate × decorator combination exercised by the properties.
fn spec_builders(k: usize, tau: f64, top: usize) -> Vec<(&'static str, QueryBuilder)> {
    vec![
        ("exists/probs", Query::exists()),
        ("exists/threshold", Query::exists().threshold(tau)),
        ("exists/topk", Query::exists().top_k(top)),
        ("forall/probs", Query::forall()),
        ("forall/threshold", Query::forall().threshold(tau)),
        ("forall/topk", Query::forall().top_k(top)),
        ("ktimes/probs", Query::ktimes(k)),
        ("ktimes/threshold", Query::ktimes(k).threshold(tau)),
        ("ktimes/topk", Query::ktimes(k).top_k(top)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn auto_is_bit_identical_to_every_explicit_strategy(
        (seed, n) in (0u64..10_000, 4usize..=8),
        mask_seed in 0u64..1_000,
        t_start in 1u32..=3,
        t_len in 0u32..=2,
        objects in 2usize..=12,
        tau in 0.05f64..0.95,
        k in 1usize..=2,
        top in 1usize..=4,
    ) {
        let window = match random_window(n, mask_seed, t_start, t_len) {
            Some(w) => w,
            None => { prop_assume!(false); unreachable!() }
        };
        let db = random_db(seed, n, objects, 1);

        for threads in [1usize, 4] {
            let processor = QueryProcessor::with_config(
                &db,
                EngineConfig::default().with_num_threads(threads).with_batch_size(3),
            );
            for (what, builder) in spec_builders(k, tau, top) {
                let auto = builder.clone().window(window.clone()).build().unwrap();
                let plan = processor.explain(&auto).unwrap();
                prop_assert!(
                    matches!(plan.strategy, Strategy::ObjectBased | Strategy::QueryBased),
                    "{}: Auto must resolve to an exact strategy, got {:?}", what, plan.strategy
                );

                let auto_answer = processor.execute(&auto).unwrap();
                // Bit-identity against the strategy the planner chose.
                let chosen = builder.clone()
                    .window(window.clone())
                    .strategy(plan.strategy)
                    .build()
                    .unwrap();
                assert_bit_eq(&auto_answer, &processor.execute(&chosen).unwrap(),
                    &format!("{what} (auto vs {:?}, threads={threads})", plan.strategy));

                // The two exact strategies tell the same story.
                let ob = processor.execute(
                    &builder.clone().window(window.clone())
                        .strategy(Strategy::ObjectBased).build().unwrap()).unwrap();
                let qb = processor.execute(
                    &builder.clone().window(window.clone())
                        .strategy(Strategy::QueryBased).build().unwrap()).unwrap();
                assert_strategies_agree(&ob, &qb, &format!("{what} (threads={threads})"));

                // And the pooled run reproduces the sequential bits.
                if threads > 1 {
                    let sequential = QueryProcessor::new(&db);
                    assert_bit_eq(
                        &processor.execute(&chosen).unwrap(),
                        &sequential.execute(&chosen).unwrap(),
                        &format!("{what} (pooled vs sequential)"),
                    );
                }
            }
        }
    }

    #[test]
    fn submit_then_wait_equals_execute(
        (seed, n) in (0u64..10_000, 4usize..=8),
        mask_seed in 0u64..1_000,
        t_start in 1u32..=3,
        t_len in 0u32..=2,
        objects in 2usize..=10,
        tau in 0.05f64..0.95,
    ) {
        let window = match random_window(n, mask_seed, t_start, t_len) {
            Some(w) => w,
            None => { prop_assume!(false); unreachable!() }
        };
        let db = random_db(seed, n, objects, 1);
        for threads in [1usize, 4] {
            let processor = QueryProcessor::with_config(
                &db,
                EngineConfig::default().with_num_threads(threads),
            );
            let specs: Vec<QuerySpec> = vec![
                Query::exists().window(window.clone()).build().unwrap(),
                Query::forall().window(window.clone()).build().unwrap(),
                Query::ktimes(1).window(window.clone()).build().unwrap(),
                Query::exists().window(window.clone()).threshold(tau).build().unwrap(),
                Query::exists().window(window.clone()).top_k(3).build().unwrap(),
            ];
            // Submit the whole burst first, then await: the answers must be
            // the synchronous ones, bit for bit.
            let tickets: Vec<_> = specs.iter().map(|s| processor.submit(s).unwrap()).collect();
            for (spec, ticket) in specs.iter().zip(tickets) {
                let sync = processor.execute(spec).unwrap();
                let awaited = ticket.wait().unwrap();
                assert_bit_eq(&awaited, &sync, &format!("submit vs execute (threads={threads})"));
            }
        }
    }

    #[test]
    fn deprecated_shims_match_pre_redesign_drivers(
        (seed, n) in (0u64..10_000, 4usize..=8),
        mask_seed in 0u64..1_000,
        t_start in 1u32..=3,
        t_len in 0u32..=2,
        objects in 2usize..=10,
        tau in 0.05f64..0.95,
        top in 1usize..=4,
    ) {
        let window = match random_window(n, mask_seed, t_start, t_len) {
            Some(w) => w,
            None => { prop_assume!(false); unreachable!() }
        };
        let db = random_db(seed, n, objects, 1);
        let config = EngineConfig::default();
        let processor = QueryProcessor::new(&db);
        let mut stats = EvalStats::new();

        #[allow(deprecated)]
        {
            let shim = processor.exists_object_based(&window).unwrap();
            let original = object_based::evaluate(&db, &window, &config, &mut stats).unwrap();
            for (a, b) in shim.iter().zip(&original) {
                prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let shim = processor.exists_query_based(&window).unwrap();
            let original = query_based::evaluate(&db, &window, &config, &mut stats).unwrap();
            for (a, b) in shim.iter().zip(&original) {
                prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let shim = processor.forall_object_based(&window).unwrap();
            let original = forall::evaluate_object_based(&db, &window, &config, &mut stats).unwrap();
            for (a, b) in shim.iter().zip(&original) {
                prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let shim = processor.forall_query_based(&window).unwrap();
            let original = forall::evaluate_query_based(&db, &window, &config, &mut stats).unwrap();
            for (a, b) in shim.iter().zip(&original) {
                prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let shim = processor.ktimes_object_based(&window).unwrap();
            let original = ktimes::evaluate_object_based(&db, &window, &config, &mut stats).unwrap();
            for (a, b) in shim.iter().zip(&original) {
                for (x, y) in a.probabilities.iter().zip(&b.probabilities) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            // The k-times QB shim rides the new level-field cache; still
            // bit-identical to the uncached pre-redesign driver.
            let shim = processor.ktimes_query_based(&window).unwrap();
            let original = ktimes::evaluate_query_based(&db, &window, &config, &mut stats).unwrap();
            for (a, b) in shim.iter().zip(&original) {
                for (x, y) in a.probabilities.iter().zip(&b.probabilities) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            let shim = processor.threshold_query(&window, tau).unwrap();
            let original =
                threshold::threshold_query(&db, &window, tau, &config, &mut stats).unwrap();
            prop_assert_eq!(shim, original);
            let shim = processor.threshold_query_cached(&window, tau).unwrap();
            let original =
                threshold::threshold_query(&db, &window, tau, &config, &mut stats).unwrap();
            prop_assert_eq!(shim, original);
            let shim = processor.topk(&window, top).unwrap();
            let original =
                ranking::topk_object_based_pruned(&db, &window, top, &config, &mut stats).unwrap();
            prop_assert_eq!(shim.len(), original.len());
            for (a, b) in shim.iter().zip(&original) {
                prop_assert_eq!(a.object_id, b.object_id);
                prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let shim = processor.topk_query_based(&window, top).unwrap();
            let original =
                ranking::topk_query_based(&db, &window, top, &config, &mut stats).unwrap();
            for (a, b) in shim.iter().zip(&original) {
                prop_assert_eq!(a.object_id, b.object_id);
                prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
        }
    }

    #[test]
    fn subset_specs_filter_the_full_answer(
        (seed, n) in (0u64..10_000, 4usize..=8),
        mask_seed in 0u64..1_000,
        t_start in 1u32..=3,
        t_len in 0u32..=2,
        objects in 4usize..=12,
    ) {
        let window = match random_window(n, mask_seed, t_start, t_len) {
            Some(w) => w,
            None => { prop_assume!(false); unreachable!() }
        };
        let db = random_db(seed, n, objects, 1);
        let processor = QueryProcessor::new(&db);
        // Every third object id.
        let subset: Vec<u64> = (0..objects as u64).step_by(3).collect();

        for strategy in [Strategy::ObjectBased, Strategy::QueryBased] {
            let full = processor.execute(
                &Query::exists().window(window.clone()).strategy(strategy).build().unwrap(),
            ).unwrap();
            let restricted = processor.execute(
                &Query::exists().window(window.clone()).strategy(strategy)
                    .objects(subset.iter().copied()).build().unwrap(),
            ).unwrap();
            let full = full.probabilities().unwrap();
            let restricted = restricted.probabilities().unwrap();
            prop_assert_eq!(restricted.len(), subset.len());
            for r in restricted {
                let original = full.iter().find(|p| p.object_id == r.object_id).unwrap();
                prop_assert_eq!(r.probability.to_bits(), original.probability.to_bits(),
                    "subset answers must equal the full run's entries");
            }
        }
        // Unknown ids are an error, not a silent skip.
        let bad = Query::exists().window(window).objects([999_999u64]).build().unwrap();
        prop_assert_eq!(
            processor.execute(&bad),
            Err(QueryError::UnknownObject { id: 999_999 })
        );
    }
}

#[test]
fn planner_prefers_ob_for_single_objects_and_qb_once_cached() {
    // One object: a single forward pass is cheaper than a backward sweep
    // plus a dot product, so Auto plans object-based.
    let db = random_db(7, 20, 1, 0);
    let window = QueryWindow::from_states(20, [2usize, 3, 4], TimeSet::interval(3, 5)).unwrap();
    let processor = QueryProcessor::new(&db);
    let spec = Query::exists().window(window.clone()).build().unwrap();
    let plan = processor.explain(&spec).unwrap();
    assert_eq!(plan.strategy, Strategy::ObjectBased, "{plan}");
    assert_eq!(plan.num_objects, 1);
    assert_eq!(plan.cached_fields, 0);
    assert!(plan.object_based.total() <= plan.query_based.total());

    // Serve the window query-based once: the field is now cache-resident,
    // the backward sweep costs nothing, and Auto flips to query-based.
    let forced =
        Query::exists().window(window.clone()).strategy(Strategy::QueryBased).build().unwrap();
    processor.execute(&forced).unwrap();
    let plan = processor.explain(&spec).unwrap();
    assert_eq!(plan.strategy, Strategy::QueryBased, "{plan}");
    assert_eq!(plan.cached_fields, 1);
    assert_eq!(plan.query_based.step_ops, 0.0, "cache-resident field sweeps nothing");

    // Many objects: the amortized backward sweep wins outright.
    let big = random_db(11, 20, 64, 0);
    let processor = QueryProcessor::new(&big);
    let plan = processor.explain(&Query::exists().window(window).build().unwrap()).unwrap();
    assert_eq!(plan.strategy, Strategy::QueryBased, "{plan}");
    assert_eq!(plan.num_objects, 64);
}

#[test]
fn ktimes_cache_serves_repeated_windows() {
    let db = random_db(13, 15, 8, 1);
    let window = QueryWindow::from_states(15, [1usize, 2, 6], TimeSet::interval(2, 4)).unwrap();
    let processor = QueryProcessor::new(&db);
    let spec = Query::ktimes(1).window(window).strategy(Strategy::QueryBased).build().unwrap();

    let mut first = EvalStats::new();
    let cold = processor.execute_with_stats(&spec, &mut first).unwrap();
    assert_eq!(first.cache_misses, 1, "first PSTkQ window sweeps and caches");
    assert!(first.backward_steps > 0);

    let mut second = EvalStats::new();
    let warm = processor.execute_with_stats(&spec, &mut second).unwrap();
    assert_eq!(second.cache_hits, 1, "repeated PSTkQ window hits the level-field cache");
    assert_eq!(second.backward_steps, 0, "a hit pays no level sweep");
    assert_bit_eq(&cold, &warm, "cached PSTkQ answer");
}

#[test]
fn monte_carlo_override_is_deterministic_and_sane() {
    let db = random_db(17, 10, 5, 0);
    let window = QueryWindow::from_states(10, [1usize, 2], TimeSet::interval(2, 4)).unwrap();
    let processor = QueryProcessor::new(&db);
    let spec =
        Query::exists().window(window.clone()).strategy(Strategy::MonteCarlo).build().unwrap();
    let a = processor.execute(&spec).unwrap();
    let b = processor.execute(&spec).unwrap();
    assert_bit_eq(&a, &b, "MC estimates are deterministic per seed");
    let exact = processor.execute(&Query::exists().window(window).build().unwrap()).unwrap();
    for (est, exact) in a.probabilities().unwrap().iter().zip(exact.probabilities().unwrap()) {
        assert!((0.0..=1.0).contains(&est.probability));
        // 100 samples: allow a generous band around the exact value.
        assert!((est.probability - exact.probability).abs() < 0.35);
    }
}

#[test]
fn submitted_queries_run_on_a_database_snapshot() {
    let mut db = random_db(19, 10, 6, 0);
    let window = QueryWindow::from_states(10, [1usize, 2], TimeSet::interval(2, 4)).unwrap();
    let processor = QueryProcessor::with_config(&db, EngineConfig::default().with_num_threads(2));
    let spec = Query::exists().window(window).build().unwrap();
    let ticket = processor.submit(&spec).unwrap();
    let answer = ticket.wait().unwrap();
    assert_eq!(answer.len(), 6, "the submission snapshotted six objects");
    drop(processor);
    // The caller's handle stays mutable the whole time — snapshots detach.
    let chain_states = db.num_states();
    db.insert(UncertainObject::with_single_observation(
        99,
        Observation::exact(0, chain_states, 0).unwrap(),
    ))
    .unwrap();
    assert_eq!(db.len(), 7);
}

#[test]
fn tickets_surface_errors_and_readiness() {
    let db = random_db(23, 10, 3, 0);
    let processor = QueryProcessor::new(&db);
    // A window whose start precedes no anchor is fine; build one that
    // fails validation instead: anchor after the window.
    let mut late_db = random_db(23, 10, 0, 0);
    late_db
        .insert(UncertainObject::with_single_observation(0, Observation::exact(50, 10, 0).unwrap()))
        .unwrap();
    let late = QueryProcessor::new(&late_db);
    let window = QueryWindow::from_states(10, [1usize], TimeSet::at(3)).unwrap();
    let spec = Query::exists().window(window.clone()).build().unwrap();
    let ticket = late.submit(&spec).unwrap();
    assert!(ticket.wait().is_err(), "validation errors surface through the ticket");

    let ticket = processor.submit(&spec).unwrap();
    let answer = ticket.wait().unwrap();
    assert_eq!(answer.len(), 3);
    let ticket = processor.submit(&spec).unwrap();
    while !ticket.is_ready() {
        std::thread::yield_now();
    }
    assert!(ticket.wait().is_ok());
}
