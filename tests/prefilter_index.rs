//! Conservativeness of the spatio-temporal index prefilter.
//!
//! The planner may consult the reachability-cone × interval index to skip
//! objects, but pruning must be *invisible* in the answers: every
//! predicate × decorator × strategy combination must return bit-for-bit
//! identical results under [`PrefilterMode::Off`], [`PrefilterMode::On`]
//! and [`PrefilterMode::Auto`] — including identical errors, so pruning
//! can never mask window validation. A pruned object by definition has
//! `P∃ = 0`; if the index ever discarded an object with non-zero
//! probability, the bitwise comparison against the unpruned run would
//! catch it.

use std::sync::Arc;

use proptest::prelude::*;

use ust::prelude::*;
// Explicit import wins over the globs: `Strategy` here is always the
// planner-override enum, not the shadowing `proptest::Strategy` trait.
use ust_core::{QuerySpec, Strategy};
use ust_data::{generate_index_workload, IndexWorkloadConfig};
use ust_markov::testutil;

/// A random banded database with a 1-D embedding attached, so the
/// prefilter is armed (`PrefilterMode::On` ignores the Auto size floor).
fn build_db(seed: u64, n: usize, m: usize) -> TrajectoryDatabase {
    let mut rng = testutil::rng(seed);
    let chain =
        MarkovChain::from_csr(testutil::random_banded_stochastic(&mut rng, n, 3, 4)).unwrap();
    let mut db = TrajectoryDatabase::new(chain);
    for id in 0..m {
        let dist = testutil::random_distribution(&mut rng, n, 2);
        db.insert(UncertainObject::with_single_observation(
            id as u64,
            Observation::uncertain(id as u32 % 3, dist).unwrap(),
        ))
        .unwrap();
    }
    db.attach_space(Arc::new(LineSpace::new(n))).unwrap();
    db
}

fn run(db: &TrajectoryDatabase, mode: PrefilterMode, spec: &QuerySpec) -> String {
    let processor = QueryProcessor::with_config(db, EngineConfig::default().with_prefilter(mode));
    canon(&processor.execute(spec))
}

/// A canonical, bit-exact rendering of an outcome: probabilities render as
/// raw IEEE bits (so `0.0` vs `-0.0` or any last-ulp drift would differ),
/// errors render as their debug form (so masked validation would differ).
fn canon(result: &ust_core::Result<QueryAnswer>) -> String {
    let answer = match result {
        Err(e) => return format!("err:{e:?}"),
        Ok(a) => a,
    };
    if let Some(ps) = answer.probabilities() {
        let bits: Vec<(u64, u64)> =
            ps.iter().map(|p| (p.object_id, p.probability.to_bits())).collect();
        format!("probs:{bits:?}")
    } else if let Some(ids) = answer.ids() {
        format!("ids:{ids:?}")
    } else if let Some(ds) = answer.distributions() {
        let bits: Vec<(u64, Vec<u64>)> = ds
            .iter()
            .map(|d| (d.object_id, d.probabilities.iter().map(|p| p.to_bits()).collect()))
            .collect();
        format!("kdist:{bits:?}")
    } else {
        format!("other:{answer:?}")
    }
}

/// Every spec the suite compares across prefilter modes: the pruned
/// decorators (∃ probabilities / threshold, including the `τ = 0` merge
/// path) and the pass-through predicates (∀, k-times).
fn specs(window: &QueryWindow, strategy: Strategy) -> Vec<QuerySpec> {
    vec![
        Query::exists().window(window.clone()).strategy(strategy).probabilities().build().unwrap(),
        Query::exists().window(window.clone()).strategy(strategy).threshold(0.0).build().unwrap(),
        Query::exists().window(window.clone()).strategy(strategy).threshold(0.3).build().unwrap(),
        Query::forall().window(window.clone()).strategy(strategy).probabilities().build().unwrap(),
        Query::ktimes(2).window(window.clone()).strategy(strategy).build().unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn answers_are_bit_identical_across_prefilter_modes(
        seed in 0u64..5_000,
        n in 4usize..9,
        m in 2usize..7,
        state_bits in 1u8..255,
        t_start in 0u32..5,
        t_len in 0u32..3,
    ) {
        let db = build_db(seed, n, m);
        let states: Vec<usize> = (0..n).filter(|s| state_bits & (1 << (s % 8)) != 0).collect();
        prop_assume!(!states.is_empty());
        let window = QueryWindow::from_states(
            n, states, TimeSet::interval(t_start, t_start + t_len)).unwrap();
        for strategy in [Strategy::ObjectBased, Strategy::QueryBased] {
            for spec in specs(&window, strategy) {
                let off = run(&db, PrefilterMode::Off, &spec);
                let on = run(&db, PrefilterMode::On, &spec);
                let auto = run(&db, PrefilterMode::Auto, &spec);
                prop_assert_eq!(&off, &on, "{:?}/{:?} Off vs On", spec.predicate(), strategy);
                prop_assert_eq!(&off, &auto, "{:?}/{:?} Off vs Auto", spec.predicate(), strategy);
            }
        }
    }

    #[test]
    fn subset_queries_are_bit_identical_across_prefilter_modes(
        seed in 0u64..5_000,
        n in 4usize..9,
        m in 3usize..7,
        subset_bits in 1u8..127,
        t_start in 0u32..4,
    ) {
        let db = build_db(seed, n, m);
        let ids: Vec<u64> = (0..m as u64).filter(|id| subset_bits & (1 << (id % 7)) != 0).collect();
        prop_assume!(!ids.is_empty());
        let window =
            QueryWindow::from_states(n, 0..n / 2, TimeSet::interval(t_start, t_start + 1)).unwrap();
        for strategy in [Strategy::ObjectBased, Strategy::QueryBased] {
            let spec = Query::exists()
                .window(window.clone())
                .strategy(strategy)
                .objects(ids.clone())
                .probabilities()
                .build()
                .unwrap();
            let off = run(&db, PrefilterMode::Off, &spec);
            let on = run(&db, PrefilterMode::On, &spec);
            prop_assert_eq!(&off, &on, "subset {:?} under {:?}", &ids, strategy);
        }
    }
}

/// On the clustered workload the selective window *must* prune (this is
/// the effectiveness half of the contract; the proptests above are the
/// safety half) — and still answer identically to the unpruned run.
#[test]
fn selective_window_prunes_and_preserves_answers() {
    let mut data = generate_index_workload(&IndexWorkloadConfig::small());
    let space = data.space;
    data.db.attach_space(Arc::new(space)).unwrap();
    let window = data.selective_window().unwrap();
    for tau in [0.0, 0.5] {
        let spec = Query::exists()
            .window(window.clone())
            .strategy(Strategy::QueryBased)
            .threshold(tau)
            .build()
            .unwrap();
        let off = QueryProcessor::with_config(
            &data.db,
            EngineConfig::default().with_prefilter(PrefilterMode::Off),
        );
        let on = QueryProcessor::with_config(
            &data.db,
            EngineConfig::default().with_prefilter(PrefilterMode::On),
        );
        let mut off_stats = EvalStats::new();
        let mut on_stats = EvalStats::new();
        let off_answer = off.execute_with_stats(&spec, &mut off_stats).unwrap();
        let on_answer = on.execute_with_stats(&spec, &mut on_stats).unwrap();
        assert_eq!(canon(&Ok(off_answer)), canon(&Ok(on_answer)), "τ = {tau}");
        assert_eq!(off_stats.candidates_pruned, 0);
        assert!(on_stats.candidates_pruned > 0, "selective window must prune");
        assert_eq!(on_stats.candidates_examined + on_stats.candidates_pruned, data.db.len() as u64);
    }
}

/// The prefilter-armed processor reports its pruning in the plan and the
/// serving metrics (the observability half of the PR 6 counter plumbing).
#[test]
fn pruning_shows_up_in_explain_and_metrics() {
    let mut data = generate_index_workload(&IndexWorkloadConfig::small());
    let space = data.space;
    data.db.attach_space(Arc::new(space)).unwrap();
    let spec = Query::exists()
        .window(data.selective_window().unwrap())
        .strategy(Strategy::QueryBased)
        .probabilities()
        .build()
        .unwrap();
    let processor = QueryProcessor::with_config(
        &data.db,
        EngineConfig::default().with_prefilter(PrefilterMode::On),
    );
    let plan = processor.explain(&spec).unwrap();
    assert!(plan.candidates_pruned > 0);
    assert_eq!(plan.candidates_examined + plan.candidates_pruned, data.db.len());
    assert!(plan.to_string().contains("prefilter"));
    processor.execute(&spec).unwrap();
    let snapshot = processor.metrics();
    let entry = snapshot.plan(Predicate::Exists, Strategy::QueryBased).unwrap();
    assert_eq!(entry.candidates_pruned, plan.candidates_pruned as u64);
    assert_eq!(entry.candidates_examined, plan.candidates_examined as u64);
}
