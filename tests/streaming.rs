//! Streaming-ingest tests: the incremental-≡-batch equivalence harness.
//!
//! The pinned contract: a [`ust_core::Subscription`] registered with
//! `watch` and fed through `QueryProcessor::ingest` answers **bit-for-bit**
//! what a from-scratch `execute` of the same spec returns on a fresh
//! database holding the same applied feed prefix — across worker counts,
//! all three prefilter modes, every predicate/decorator shape, and
//! including *errors*: when an arrival pushes an object's anchor past the
//! window start, both sides must report the same `QueryError` with the
//! same payload (the first violating object in database order).
//!
//! The harness replays deterministic feeds from
//! [`ust_data::generate_streaming_feed`] — hot-set-skewed, mostly
//! monotone, with a stale out-of-order fraction the latest-fix policy
//! must ignore on both sides.
//!
//! Alongside equivalence, the suite pins the *economics*: ingest never
//! flushes the backward-field caches (their keys are
//! observation-independent), so a warmed query-based subscription refreshes
//! at zero propagation steps per arrival while the from-scratch side pays
//! its full sweep every time — the invalidation is scoped to the one
//! maintained answer entry the arrival touched.

use proptest::prelude::*;

use ust::prelude::*;
use ust_core::Strategy;
use ust_data::streaming_feed::{generate_streaming_feed, FeedConfig, StreamingFeed};
use ust_data::IndexWorkloadConfig;
use ust_space::TimeSet;

/// A compact population so a proptest case replays in milliseconds.
fn feed(seed: u64, num_events: usize) -> StreamingFeed {
    generate_streaming_feed(&FeedConfig {
        workload: IndexWorkloadConfig {
            num_objects: 16,
            num_states: 48,
            object_spread: 3,
            state_spread: 3,
            max_step: 6,
            seed: seed ^ 0x0B5E,
            ..IndexWorkloadConfig::small()
        },
        num_events,
        hot_objects: 4,
        stale_fraction: 0.2,
        max_time_step: 2,
        seed,
    })
}

/// The query shapes the harness maintains: every predicate, every
/// decorator, plus an object-scoped subset.
fn spec(shape: usize, n: usize, t_start: u32, t_len: u32) -> QuerySpec {
    let window =
        QueryWindow::from_states(n, 4usize..14, TimeSet::interval(t_start, t_start + t_len))
            .unwrap();
    match shape {
        0 => Query::exists().window(window).build(),
        1 => Query::exists().window(window).threshold(0.3).build(),
        2 => Query::exists().window(window).top_k(3).build(),
        3 => Query::forall().window(window).build(),
        4 => Query::ktimes(2).window(window).build(),
        _ => Query::exists().window(window).objects([1u64, 3, 6]).build(),
    }
    .unwrap()
}

/// A canonical, bit-exact rendering of an outcome: probabilities render
/// as raw IEEE bits (so `0.0` vs `-0.0` or any last-ulp drift would
/// differ), errors as their debug form (so a mismatched payload — e.g. a
/// different first-violating object — would differ).
fn canon(result: &ust_core::Result<QueryAnswer>) -> String {
    let answer = match result {
        Err(e) => return format!("err:{e:?}"),
        Ok(a) => a,
    };
    if let Some(ps) = answer.probabilities() {
        let bits: Vec<(u64, u64)> =
            ps.iter().map(|p| (p.object_id, p.probability.to_bits())).collect();
        format!("probs:{bits:?}")
    } else if let Some(ids) = answer.ids() {
        format!("ids:{ids:?}")
    } else if let Some(ds) = answer.distributions() {
        let bits: Vec<(u64, Vec<u64>)> = ds
            .iter()
            .map(|d| (d.object_id, d.probabilities.iter().map(|p| p.to_bits()).collect()))
            .collect();
        format!("kdist:{bits:?}")
    } else if let Some(rs) = answer.ranked() {
        let bits: Vec<(u64, u64)> =
            rs.iter().map(|r| (r.object_id, r.probability.to_bits())).collect();
        format!("ranked:{bits:?}")
    } else {
        format!("other:{answer:?}")
    }
}

/// The batch side of the equivalence: a fresh processor over the replayed
/// prefix, executing the subscription's *pinned* spec under the same
/// engine configuration.
fn batch(feed: &StreamingFeed, prefix: usize, spec: &QuerySpec, config: &EngineConfig) -> String {
    let db = feed.replay_prefix(prefix);
    canon(&QueryProcessor::with_config(&db, *config).execute(spec))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The tentpole property. For every feed prefix — not just the final
    /// state — the maintained answer equals the from-scratch execution,
    /// through value answers, decorator answers, and error answers alike.
    #[test]
    fn subscription_equals_batch_execution_on_every_prefix(
        seed in 0u64..5_000,
        shape in 0usize..6,
        t_start in 2u32..7,
        t_len in 0u32..3,
        threaded in 0u8..2,
        mode_idx in 0usize..3,
    ) {
        let feed = feed(seed, 10);
        let threads = if threaded == 0 { 1 } else { 4 };
        let mode = [PrefilterMode::Auto, PrefilterMode::On, PrefilterMode::Off][mode_idx];
        let config = EngineConfig::default().with_num_threads(threads).with_prefilter(mode);
        let spec = spec(shape, feed.config.workload.num_states, t_start, t_len);
        let processor = QueryProcessor::with_config(&feed.db, config);
        let sub = processor.watch(&spec).unwrap();
        prop_assert!(sub.spec().strategy() != Strategy::Auto, "Auto resolves at registration");

        prop_assert_eq!(canon(&sub.answer()), batch(&feed, 0, sub.spec(), &config));
        for (i, event) in feed.events.iter().enumerate() {
            processor.ingest(event.object_id, event.observation.clone()).unwrap();
            prop_assert_eq!(
                canon(&sub.answer()),
                batch(&feed, i + 1, sub.spec(), &config),
                "prefix {} of seed {} diverged (shape {}, {:?})", i + 1, seed, shape, mode
            );
        }
    }

    /// Explicit strategies hold the same equivalence — including
    /// Monte Carlo, whose subscriptions resynchronize with a full run per
    /// arrival because per-object subset sampling is not reproducible.
    #[test]
    fn explicit_strategies_equal_batch_execution(
        seed in 0u64..2_000,
        t_start in 4u32..7,
        strategy_idx in 0usize..3,
    ) {
        let strategy =
            [Strategy::ObjectBased, Strategy::QueryBased, Strategy::MonteCarlo][strategy_idx];
        let feed = feed(seed, 6);
        let n = feed.config.workload.num_states;
        let window =
            QueryWindow::from_states(n, 4usize..14, TimeSet::interval(t_start, t_start + 2))
                .unwrap();
        let spec = Query::exists().window(window).strategy(strategy).build().unwrap();
        let config = EngineConfig::default();
        let processor = QueryProcessor::with_config(&feed.db, config);
        let sub = processor.watch(&spec).unwrap();
        prop_assert_eq!(sub.spec().strategy(), strategy, "explicit strategies stay pinned");
        for (i, event) in feed.events.iter().enumerate() {
            processor.ingest(event.object_id, event.observation.clone()).unwrap();
            prop_assert_eq!(
                canon(&sub.answer()),
                batch(&feed, i + 1, sub.spec(), &config),
                "prefix {} of seed {} diverged under {:?}", i + 1, seed, strategy
            );
        }
    }
}

/// Suffix-scoped invalidation, part 1: the cache side. Ingest never
/// invalidates backward-field cache entries — a warmed query-based
/// subscription's refreshes run at zero propagation steps, while the
/// from-scratch side pays a fresh backward sweep for every prefix.
#[test]
fn ingest_preserves_field_caches_and_invalidates_one_entry_per_arrival() {
    let feed = feed(0xCAFE, 12);
    let n = feed.config.workload.num_states;
    let window = QueryWindow::from_states(n, 4usize..14, TimeSet::interval(20, 22)).unwrap();
    let spec = Query::exists().window(window).strategy(Strategy::QueryBased).build().unwrap();
    let processor = QueryProcessor::new(&feed.db);
    let sub = processor.watch(&spec).unwrap();

    let mut applied = 0u64;
    for event in &feed.events {
        if processor.ingest(event.object_id, event.observation.clone()).unwrap()
            == IngestOutcome::Applied
        {
            applied += 1;
        }
    }
    assert!(applied >= 8, "the feed applies most events ({applied}/12)");
    assert_eq!(sub.notifications(), applied, "stale arrivals never notify");

    let stream = processor.metrics().stream(sub.id()).unwrap().clone();
    assert_eq!(stream.reevaluations, applied);
    assert_eq!(
        stream.suffix_invalidations, applied,
        "exactly one maintained entry invalidated per applied arrival — never a cache flush"
    );
    assert_eq!(stream.incremental_steps, 0, "warm refreshes are pure cache hits");
    assert!(stream.recompute_steps > 0, "the registration sweep did the backward work once");

    // The from-scratch side pays backward steps for the same answer.
    let fresh = QueryProcessor::new(&feed.replay_prefix(feed.events.len()));
    let mut stats = EvalStats::new();
    let batch_answer = fresh.execute_with_stats(sub.spec(), &mut stats).unwrap();
    assert!(stats.backward_steps > 0, "a cold processor sweeps the field");
    assert_eq!(sub.answer().unwrap(), batch_answer);
}

/// Suffix-scoped invalidation, part 2: the shared-cache reuse is visible
/// in `EvalStats` deltas. After the subscription's warm sweep, a
/// *submitted* query over the same window on the same processor is served
/// entirely from cache (hits, no misses, no backward steps); a fresh
/// processor pays misses for the identical spec.
#[test]
fn warm_subscription_caches_serve_subsequent_queries() {
    let feed = feed(0xBEEF, 4);
    let n = feed.config.workload.num_states;
    let window = QueryWindow::from_states(n, 4usize..14, TimeSet::interval(20, 23)).unwrap();
    let spec = Query::exists().window(window).strategy(Strategy::QueryBased).build().unwrap();
    let processor = QueryProcessor::new(&feed.db);
    let _sub = processor.watch(&spec).unwrap();

    let mut warm_stats = EvalStats::new();
    let warm_answer = processor.execute_with_stats(&spec, &mut warm_stats).unwrap();
    assert_eq!(warm_stats.backward_steps, 0, "the subscription pre-swept this window");
    assert_eq!(warm_stats.cache_misses, 0);
    assert!(warm_stats.cache_hits > 0);

    let mut cold_stats = EvalStats::new();
    let cold_answer =
        QueryProcessor::new(&feed.db).execute_with_stats(&spec, &mut cold_stats).unwrap();
    assert!(cold_stats.cache_misses > 0, "a fresh processor misses and sweeps");
    assert!(cold_stats.backward_steps > 0);
    assert_eq!(warm_answer, cold_answer, "cache reuse never changes bits");
}

/// Errors are maintained state too: once an arrival pushes an anchor past
/// the window start, the subscription reports exactly the batch error —
/// same variant, same first-violating-object payload — and keeps matching
/// on later prefixes.
#[test]
fn error_answers_match_batch_bit_for_bit() {
    let feed = feed(0xE11, 14);
    let n = feed.config.workload.num_states;
    // A window starting at 1: the first applied fix at time ≥ 2 makes its
    // object unanswerable and the whole query errors.
    let window = QueryWindow::from_states(n, 4usize..14, TimeSet::interval(1, 3)).unwrap();
    let spec = Query::exists().window(window).build().unwrap();
    let config = EngineConfig::default();
    let processor = QueryProcessor::with_config(&feed.db, config);
    let sub = processor.watch(&spec).unwrap();
    assert!(sub.answer().is_ok(), "every object anchors at 0 before the feed");

    let mut saw_error = false;
    for (i, event) in feed.events.iter().enumerate() {
        processor.ingest(event.object_id, event.observation.clone()).unwrap();
        let expected = batch(&feed, i + 1, sub.spec(), &config);
        assert_eq!(canon(&sub.answer()), expected, "prefix {} diverged", i + 1);
        saw_error |= expected.starts_with("err:");
    }
    assert!(saw_error, "the feed reached the error regime");
    assert!(matches!(sub.answer(), Err(QueryError::WindowBeforeObservation { .. })));
}
