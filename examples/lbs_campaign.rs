//! Location-based advertising — the paper's LBS use case for PST∀Q/PSTkQ:
//! *"a service provider could be interested in customers that remain at a
//! certain region for a while, such that they can receive advertisements
//! relevant to the location."*
//!
//! Uses the Table I synthetic generator at a reduced scale, then segments
//! customers by how long they are expected to dwell inside a mall area:
//!
//! * PST∀Q        → customers who basically never leave (prime targets);
//! * PSTkQ        → the dwell-time distribution for tiered campaigns;
//! * threshold ∃Q → a cheap prefilter for anyone who might show up at all.
//!
//! Run with: `cargo run --release --example lbs_campaign`

use ust::prelude::*;
use ust_core::engine::{ktimes, EngineConfig};
use ust_core::threshold;
use ust_data::{synthetic, SyntheticConfig};

fn main() -> Result<()> {
    let config =
        SyntheticConfig { num_objects: 2_000, num_states: 20_000, ..SyntheticConfig::default() };
    let data = synthetic::generate(&config);
    println!(
        "Synthetic city: {} location states, {} tracked customers.",
        config.num_states, config.num_objects
    );

    // The mall covers states [100, 130]; the campaign runs at t ∈ [10, 15].
    let mall =
        QueryWindow::from_states(config.num_states, 100usize..=130, TimeSet::interval(10, 15))?;
    let engine = EngineConfig::default();

    // --- Stage 1: cheap threshold prefilter -------------------------------
    let mut stats = EvalStats::new();
    let reachable = threshold::threshold_query(&data.db, &mall, 0.01, &engine, &mut stats)?;
    println!(
        "\nStage 1 — threshold PST∃Q (τ = 1%): {} candidate customers \
         ({} early terminations across {} objects).",
        reachable.len(),
        stats.early_terminations,
        data.db.len()
    );

    // --- Stage 2: dwell-time distribution for the candidates --------------
    let mut tiers = [0usize; 3]; // bronze (1), silver (2-3), gold (4+)
    let mut total_expected_dwell = 0.0;
    for &id in &reachable {
        let object =
            data.db.objects().iter().find(|o| o.id() == id).expect("id from this database");
        let dist =
            ktimes::ktimes_distribution_ob(data.db.model_of(object), object, &mall, &engine)?;
        let expected: f64 = dist.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        total_expected_dwell += expected;
        let p_ge = |k0: usize| -> f64 { dist.iter().skip(k0).sum() };
        if p_ge(4) > 0.2 {
            tiers[2] += 1;
        } else if p_ge(2) > 0.3 {
            tiers[1] += 1;
        } else {
            tiers[0] += 1;
        }
    }
    println!("\nStage 2 — PSTkQ dwell tiers among candidates:");
    println!("  gold   (likely ≥4 of 6 timestamps): {}", tiers[2]);
    println!("  silver (likely ≥2 of 6 timestamps): {}", tiers[1]);
    println!("  bronze (passers-by)               : {}", tiers[0]);
    if !reachable.is_empty() {
        println!(
            "  average expected dwell among candidates: {:.2} timestamps",
            total_expected_dwell / reachable.len() as f64
        );
    }

    // --- Stage 3: who never leaves? ----------------------------------------
    let processor = QueryProcessor::new(&data.db);
    let stayers = processor.execute(&Query::forall().window(mall).build()?)?;
    let committed: Vec<_> = stayers
        .probabilities()
        .expect("probabilities decorator")
        .iter()
        .filter(|r| r.probability > 0.5)
        .collect();
    println!(
        "\nStage 3 — PST∀Q: {} customers stay inside the mall for the whole \
         campaign with P > 50%.",
        committed.len()
    );
    Ok(())
}
