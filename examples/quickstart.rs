//! Quickstart: the paper's running example, end to end.
//!
//! Builds the 3-state Markov chain of Section V, registers one uncertain
//! object observed at state s2 at time 0, and answers all three query
//! predicates over the window S▫ = {s1, s2}, T▫ = [2, 3] with both
//! evaluation strategies — reproducing the numbers derived by hand in the
//! paper (P∃ = 0.864, k-distribution (0.136, 0.672, 0.192)).
//!
//! Run with: `cargo run --example quickstart`

use ust::prelude::*;
use ust_core::engine::monte_carlo::MonteCarlo;

fn main() -> Result<()> {
    // The transition matrix of the running example (rows sum to 1).
    let chain = MarkovChain::from_csr(
        CsrMatrix::from_dense(&[
            vec![0.0, 0.0, 1.0], // s1 -> s3
            vec![0.6, 0.0, 0.4], // s2 -> s1 | s3
            vec![0.0, 0.8, 0.2], // s3 -> s2 | s3
        ])
        .expect("well-formed matrix"),
    )?;

    // One object, observed precisely at s2 (index 1) at time 0.
    let mut db = TrajectoryDatabase::new(chain);
    db.insert(UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1)?))?;

    // Query window: states {s1, s2} during times [2, 3].
    let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3))?;

    let processor = QueryProcessor::new(&db);

    // PST∃Q — both strategies give the paper's 0.864.
    let ob = processor.exists_object_based(&window)?;
    let qb = processor.exists_query_based(&window)?;
    println!("PST∃Q  object-based : P = {:.4}", ob[0].probability);
    println!("PST∃Q  query-based  : P = {:.4}", qb[0].probability);

    // PST∀Q — probability of being inside the window at *all* query times.
    let forall = processor.forall_query_based(&window)?;
    println!("PST∀Q  query-based  : P = {:.4}", forall[0].probability);

    // PSTkQ — the full distribution over visit counts (Section VII's
    // worked example: 0.136 / 0.672 / 0.192).
    let k = processor.ktimes_object_based(&window)?;
    for (count, p) in k[0].probabilities.iter().enumerate() {
        println!("PSTkQ  P(visits = {count}) = {p:.4}");
    }
    println!("PSTkQ  expected visits = {:.4}", k[0].expected_visits());

    // The Monte-Carlo competitor only approximates these numbers.
    let mc = MonteCarlo::new(100, 42);
    let estimate = mc.exists_probability(
        db.models()[0].as_ref(),
        db.object(0).expect("inserted above"),
        &window,
    )?;
    println!(
        "Monte-Carlo (100 samples): P ≈ {estimate:.3} (σ ≈ {:.3})",
        MonteCarlo::standard_error(qb[0].probability, 100)
    );
    Ok(())
}
