//! Quickstart: the paper's running example through the unified query API.
//!
//! Builds the 3-state Markov chain of Section V, registers one uncertain
//! object observed at state s2 at time 0, and answers all three query
//! predicates over the window S▫ = {s1, s2}, T▫ = [2, 3] — reproducing
//! the numbers derived by hand in the paper (P∃ = 0.864, k-distribution
//! (0.136, 0.672, 0.192)). Queries are *declared* with the `Query`
//! builder; the planner picks the evaluation strategy (inspect it with
//! `explain`), and `submit` shows the asynchronous front door.
//!
//! Run with: `cargo run --example quickstart`

use ust::prelude::*;
use ust_core::engine::monte_carlo::MonteCarlo;

fn main() -> Result<()> {
    // The transition matrix of the running example (rows sum to 1).
    let chain = MarkovChain::from_csr(
        CsrMatrix::from_dense(&[
            vec![0.0, 0.0, 1.0], // s1 -> s3
            vec![0.6, 0.0, 0.4], // s2 -> s1 | s3
            vec![0.0, 0.8, 0.2], // s3 -> s2 | s3
        ])
        .expect("well-formed matrix"),
    )?;

    // One object, observed precisely at s2 (index 1) at time 0.
    let mut db = TrajectoryDatabase::new(chain);
    db.insert(UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1)?))?;

    // Query window: states {s1, s2} during times [2, 3].
    let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3))?;

    let processor = QueryProcessor::new(&db);

    // PST∃Q — declare the query, let the planner choose the strategy.
    let exists = Query::exists().window(window.clone()).build()?;
    println!("{}", processor.explain(&exists)?);
    let planned = processor.execute(&exists)?;
    println!(
        "PST∃Q  planned      : P = {:.4}",
        planned.probabilities().expect("probabilities decorator")[0].probability
    );

    // Both explicit strategies give the paper's 0.864.
    for (name, strategy) in
        [("object-based", Strategy::ObjectBased), ("query-based", Strategy::QueryBased)]
    {
        let forced = Query::exists().window(window.clone()).strategy(strategy).build()?;
        let p = processor.execute(&forced)?.probabilities().expect("probabilities decorator")[0]
            .probability;
        println!("PST∃Q  {name:<13}: P = {p:.4}");
    }

    // PST∀Q — probability of being inside the window at *all* query times.
    let forall = processor.execute(&Query::forall().window(window.clone()).build()?)?;
    println!(
        "PST∀Q  planned      : P = {:.4}",
        forall.probabilities().expect("probabilities decorator")[0].probability
    );

    // PSTkQ — the full distribution over visit counts (Section VII's
    // worked example: 0.136 / 0.672 / 0.192).
    let ktimes = processor.execute(&Query::ktimes(1).window(window.clone()).build()?)?;
    let dist = &ktimes.distributions().expect("k-times probabilities")[0];
    for (count, p) in dist.probabilities.iter().enumerate() {
        println!("PSTkQ  P(visits = {count}) = {p:.4}");
    }
    println!("PSTkQ  expected visits = {:.4}", dist.expected_visits());

    // Decorators compose with any predicate: thresholds and top-k.
    let hot = processor.execute(&Query::exists().window(window.clone()).threshold(0.5).build()?)?;
    println!("τ=0.5 accepts object ids: {:?}", hot.ids().expect("threshold decorator"));

    // The async front door: submit a burst without blocking, await later.
    let taus = [0.25, 0.5, 0.75];
    let tickets: Vec<QueryTicket> = taus
        .iter()
        .map(|&tau| {
            let spec = Query::exists().window(window.clone()).threshold(tau).build()?;
            processor.submit(&spec)
        })
        .collect::<Result<_>>()?;
    for (tau, ticket) in taus.into_iter().zip(tickets) {
        let ids = ticket.wait()?;
        println!("async τ={tau}: {} object(s) qualify", ids.len());
    }

    // The Monte-Carlo competitor only approximates these numbers.
    let mc = Query::exists()
        .window(window)
        .strategy(Strategy::MonteCarlo)
        .sampling(MonteCarlo::new(100, 42))
        .build()?;
    let estimate =
        processor.execute(&mc)?.probabilities().expect("probabilities decorator")[0].probability;
    println!(
        "Monte-Carlo (100 samples): P ≈ {estimate:.3} (σ ≈ {:.3})",
        MonteCarlo::standard_error(0.864, 100)
    );
    Ok(())
}
