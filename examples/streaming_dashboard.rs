//! A live monitoring dashboard — standing queries over an observation
//! stream.
//!
//! The Ice Patrol scenario as a *continuous* workload: the danger-region
//! query is registered once (one backward sweep), then sightings stream in
//! and each costs only a sparse dot product — the operational payoff of the
//! paper's query-based evaluation. Simulates a stream of noisy fixes from
//! drifting icebergs and prints the evolving risk board.
//!
//! Run with: `cargo run --release --example streaming_dashboard`

use rand::Rng;
use std::sync::Arc;

use ust::prelude::*;
use ust_core::streaming::{StandingQuery, StreamingMonitor};
use ust_data::iceberg::{self, IcebergConfig};
use ust_markov::testutil;

fn main() -> Result<()> {
    // Ocean + drift model from the iceberg scenario (chain reused for the
    // simulation itself, as the paper's model assumes).
    let config = IcebergConfig { rows: 30, cols: 30, num_icebergs: 0, ..IcebergConfig::default() };
    let scenario = iceberg::generate(&config);
    let grid = scenario.grid.clone();
    let chain = Arc::clone(&scenario.db.models()[0]);
    let n = chain.num_states();

    // Register the standing query: a shipping lane, relevant for t ∈ [2, 14].
    let lane = Region::rect(8.0, 12.0, 22.0, 16.0);
    let window = QueryWindow::from_region(&grid, &lane, TimeSet::interval(2, 14))?;
    println!(
        "Standing query registered: {} lane cells × times [2, 14] (one backward sweep).",
        window.states().count()
    );
    let mut monitor = StreamingMonitor::new(StandingQuery::new(Arc::clone(&chain), window)?);

    // Simulate 12 icebergs drifting along the chain, reporting noisy fixes
    // at irregular times. They spawn upstream of the lane (the prevailing
    // current runs toward larger rows/columns), so some will drift in.
    let mut rng = testutil::rng(0xD45B);
    let mut positions: Vec<usize> = (0..12)
        .map(|_| {
            let row = rng.random_range(5..14);
            let col = rng.random_range(0..10);
            grid.cell_to_id(row, col).expect("cell within the raster")
        })
        .collect();
    for t in 0..8u32 {
        for (berg, pos) in positions.iter_mut().enumerate() {
            // Advance the true position one drift step.
            if t > 0 {
                let (cols, vals) = chain.matrix().row(*pos);
                let u: f64 = rng.random();
                let mut acc = 0.0;
                for (&c, &p) in cols.iter().zip(vals) {
                    acc += p;
                    if u < acc {
                        *pos = c as usize;
                        break;
                    }
                }
            }
            // Report a fix only sometimes (sparse observations).
            if rng.random::<f64>() < 0.5 {
                let mut pairs = vec![(*pos, 2.0)];
                for nb in grid.neighbors4(*pos) {
                    pairs.push((nb, 0.5));
                }
                let obs =
                    Observation::uncertain(t, ust_markov::SparseVector::from_pairs(n, pairs)?)?;
                monitor.observe(berg as u64, &obs)?;
            }
        }
        let board = monitor.above(0.25);
        println!(
            "t={t}: {} fixes on board, {} icebergs above 25% lane risk{}",
            monitor.len(),
            board.len(),
            if board.is_empty() {
                String::new()
            } else {
                format!(" — top: #{} at {:.0}%", board[0].0, board[0].1 * 100.0)
            }
        );
    }

    println!("\nFinal risk board (≥ 10%):");
    for (id, p) in monitor.above(0.10) {
        println!("  iceberg #{id}: {:.1}%", p * 100.0);
    }
    Ok(())
}
