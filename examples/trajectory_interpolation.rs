//! Multiple observations and interpolation — Section VI in action.
//!
//! An object is observed twice: at time 0 and again at time 8. This example
//! contrasts three views of the same trajectory:
//!
//! 1. extrapolation from the first observation only (what a single-fix
//!    system would predict);
//! 2. the interpolated posterior honoring *both* fixes (forward–backward
//!    smoothing);
//! 3. PST∃Q answered with and without the second observation — showing how
//!    later evidence re-weights the possible worlds (Equation 1), including
//!    the paper's observation that evidence *beyond* the query window still
//!    matters.
//!
//! Run with: `cargo run --example trajectory_interpolation`

use ust::prelude::*;
use ust_core::{multi_obs, smoothing};
use ust_markov::CooBuilder;

/// A drifting random walk on a line of `n` states: right with p=0.6,
/// stay with p=0.3, left with p=0.1 (clipped at the borders).
fn drift_walk(n: usize) -> Result<MarkovChain> {
    let mut b = CooBuilder::new(n, n);
    for i in 0..n {
        let mut push = |j: usize, w: f64| {
            b.push(i, j, w).expect("indices in range");
        };
        if i + 1 < n {
            push(i + 1, 0.6);
            push(i, 0.3);
        } else {
            push(i, 0.9);
        }
        if i > 0 {
            push(i - 1, 0.1);
        } else {
            push(i, 0.1);
        }
    }
    Ok(MarkovChain::from_weights(b.build())?)
}

fn sketch(dist: &DenseVector, width: usize) -> String {
    // A tiny ASCII density sketch over the first `width` states.
    let max = dist.as_slice().iter().take(width).cloned().fold(0.0, f64::max);
    (0..width)
        .map(|i| {
            let v = dist.get(i);
            if max <= 0.0 || v <= 0.0 {
                '·'
            } else {
                let level = (v / max * 4.0).ceil() as usize;
                [' ', '░', '▒', '▓', '█'][level.min(4)]
            }
        })
        .collect()
}

fn main() -> Result<()> {
    let n = 40;
    let chain = drift_walk(n)?;

    // Observed at state 5 at t=0, re-observed at state 12 at t=8 —
    // slower than the drift alone would predict.
    let object =
        UncertainObject::new(1, vec![Observation::exact(0, n, 5)?, Observation::exact(8, n, 12)?])?;

    println!("Forward-only prediction vs interpolated posterior (states 0..40):\n");
    println!("  t  extrapolated (first fix only)             interpolated (both fixes)");
    let forward_only = UncertainObject::with_single_observation(2, Observation::exact(0, n, 5)?);
    for t in 0..=8u32 {
        let fwd = smoothing::smoothed_distribution(&chain, &forward_only, t)?;
        let post = smoothing::smoothed_distribution(&chain, &object, t)?;
        println!("  {t}  {}  {}", sketch(&fwd, n), sketch(&post, n));
    }

    // PST∃Q over a window on the object's likely path: the second fix
    // (state 12 at t=8) implies fast progress, so conditioning on it raises
    // the probability of having crossed states [10, 12] during [4, 7].
    let window = QueryWindow::from_states(n, 10usize..=12, TimeSet::interval(4, 7))?;
    let config = EngineConfig::default();
    let p_single = multi_obs::exists_probability_multi(&chain, &forward_only, &window, &config)?;
    let p_both = multi_obs::exists_probability_multi(&chain, &object, &window, &config)?;
    println!("\nPST∃Q over states [10, 12], times [4, 7]:");
    println!("  first fix only : P = {p_single:.4}");
    println!("  both fixes     : P = {p_both:.4}   (the t=8 fix lies after the window,");
    println!("                   yet still re-weights the worlds — Section VI)");
    Ok(())
}
