//! Road-network traffic prediction — the paper's second motivating query:
//! *"predict the number of cars that will be in a congested road segment
//! after 10-15 minutes"*.
//!
//! Builds a synthetic city road network (the documented stand-in for the
//! paper's Munich dataset), derives the transition matrix from the road
//! adjacency with random normalized weights — exactly the paper's
//! construction — places 500 probe vehicles, and:
//!
//! 1. predicts expected occupancy of a road segment in 10–15 steps;
//! 2. ranks candidate areas by expected congestion (the paper's closing
//!    future-work idea);
//! 3. demonstrates the per-class query-based evaluation of Section V-C with
//!    separate chains for cars and delivery trucks.
//!
//! Run with: `cargo run --release --example road_network_traffic`

use ust::prelude::*;
use ust_core::engine::query_based;
use ust_data::network_data::{self, NetworkObjectConfig};
use ust_data::traffic::{self, TrafficConfig};

fn main() -> Result<()> {
    let dataset = traffic::generate(&TrafficConfig::default());
    println!(
        "City network: {} intersections, {} road segments (mean degree {:.2}); {} vehicles.",
        dataset.network.num_nodes(),
        dataset.network.num_edges(),
        dataset.network.mean_degree(),
        dataset.db.len()
    );

    // --- 1. Expected cars in a segment after 10–15 steps ------------------
    let downtown = Point2::new(50.0, 50.0);
    let window = traffic::segment_window(&dataset.network, downtown, 8.0, 10, 15)?;
    let expected = traffic::expected_objects_in_window(&dataset.db, &window)?;
    println!("\nExpected vehicles within 8 units of downtown during t ∈ [10, 15]: {expected:.2}");

    // --- 2. Congestion hotspot ranking ------------------------------------
    let candidates: Vec<Point2> = (1..=4)
        .flat_map(|i| (1..=4).map(move |j| Point2::new(i as f64 * 20.0, j as f64 * 20.0)))
        .collect();
    let ranking = traffic::hotspot_ranking(&dataset, &candidates, 10.0, 10, 15)?;
    println!("\nTop 5 congestion hotspots (expected vehicles, t ∈ [10, 15]):");
    for (rank, (idx, expected)) in ranking.iter().take(5).enumerate() {
        let c = candidates[*idx];
        println!("  {}. area around ({:>4.0},{:>4.0}): {expected:.2}", rank + 1, c.x, c.y);
    }

    // --- 3. Per-class models (Section V-C) ---------------------------------
    // Cars and trucks follow different transition behaviour; the QB engine
    // runs one backward pass per class and answers all objects of a class
    // with dot products.
    let network = dataset.network.clone();
    let car_chain = network_data::chain_from_network(&network, 11);
    let truck_chain = network_data::chain_from_network(&network, 22);
    let mut classed = TrajectoryDatabase::with_models(vec![car_chain, truck_chain])?;
    let n = network.num_nodes();
    let seed_db = network_data::generate_on_network(
        network,
        &NetworkObjectConfig { num_objects: 200, object_spread: 3, seed: 77 },
    );
    for (i, object) in seed_db.db.objects().iter().enumerate() {
        let class = i % 2; // alternate cars (0) and trucks (1)
        classed.insert(object.clone().with_model(class))?;
    }
    let class_window = QueryWindow::from_states(n, 100usize..=140, TimeSet::interval(10, 15))?;
    let results = query_based::evaluate(
        &classed,
        &class_window,
        &EngineConfig::default(),
        &mut EvalStats::new(),
    )?;
    let (mut car_sum, mut truck_sum) = (0.0, 0.0);
    for (i, r) in results.iter().enumerate() {
        if i % 2 == 0 {
            car_sum += r.probability;
        } else {
            truck_sum += r.probability;
        }
    }
    println!("\nPer-class expected occupancy of nodes [100, 140] during t ∈ [10, 15]:");
    println!("  cars  : {car_sum:.2}");
    println!("  trucks: {truck_sum:.2}");
    Ok(())
}
