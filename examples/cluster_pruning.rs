//! Cluster pruning with interval Markov chains — Section V-C of the paper.
//!
//! The query-based approach amortizes one backward pass per transition
//! model. When every vehicle class (or even every object) has its own
//! chain, the paper proposes clustering similar chains into an
//! *approximated Markov chain with probability intervals* and deciding
//! whole clusters against a probability threshold; only undecided objects
//! fall back to exact evaluation.
//!
//! This example builds 12 perturbed variants of a base chain (three
//! families × four perturbations), clusters them greedily by envelope
//! width, and runs a thresholded PST∃Q, reporting how many objects were
//! decided by interval bounds alone.
//!
//! Run with: `cargo run --release --example cluster_pruning`

use rand::Rng;
use ust::prelude::*;
use ust_core::cluster;
use ust_markov::{testutil, CooBuilder};

/// Perturbs a banded chain's weights by ±`strength`, keeping the support.
fn perturb(base: &MarkovChain, strength: f64, seed: u64) -> Result<MarkovChain> {
    let mut rng = testutil::rng(seed);
    let n = base.num_states();
    let mut builder = CooBuilder::new(n, n);
    for i in 0..n {
        let (cols, vals) = base.matrix().row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            let factor = 1.0 + strength * (rng.random::<f64>() * 2.0 - 1.0);
            builder
                .push(i, c as usize, (v * factor).max(1e-6))
                .expect("indices from a valid matrix");
        }
    }
    Ok(MarkovChain::from_weights(builder.build())?)
}

fn main() -> Result<()> {
    let n = 2_000;
    // Three distinct base behaviours ("cars", "bikes", "trucks"), each with
    // four mildly perturbed variants — 12 models overall.
    let mut models = Vec::new();
    for family in 0..3u64 {
        let mut rng = testutil::rng(1000 + family);
        let base = MarkovChain::from_csr(testutil::random_banded_stochastic(&mut rng, n, 5, 40))?;
        for variant in 0..4u64 {
            models.push(perturb(&base, 0.05, family * 10 + variant)?);
        }
    }
    let mut db = TrajectoryDatabase::with_models(models)?;

    // 600 objects spread across the 12 models, anchored near the window.
    let mut rng = testutil::rng(7);
    for id in 0..600u64 {
        let state = rng.random_range(0..n);
        db.insert(
            UncertainObject::with_single_observation(id, Observation::exact(0, n, state)?)
                .with_model((id % 12) as usize),
        )?;
    }

    let window = QueryWindow::from_states(n, 100usize..=140, TimeSet::interval(10, 15))?;
    let tau = 0.10;

    // Greedy clustering by interval-envelope width.
    let clusters = cluster::greedy_clusters(&db, 250.0)?;
    println!("Clustered 12 transition models into {} clusters:", clusters.len());
    for (i, c) in clusters.iter().enumerate() {
        println!("  cluster {i}: models {:?} (envelope width {:.1})", c.models, c.envelope_width());
    }

    let mut stats = EvalStats::new();
    let result = cluster::clustered_threshold_query(
        &db,
        &window,
        tau,
        &clusters,
        &EngineConfig::default(),
        &mut stats,
    )?;
    println!(
        "\nThreshold query (τ = {tau}): {} of {} objects qualify.",
        result.accepted.len(),
        db.len()
    );
    println!(
        "  decided by cluster bounds alone: {} ({}%)",
        result.decided_by_bounds,
        result.decided_by_bounds * 100 / db.len()
    );
    println!("  exact fallback evaluations     : {}", result.individually_evaluated);

    // Exact reference: the decision set must be identical.
    let exact = ust_core::threshold::threshold_query(
        &db,
        &window,
        tau,
        &EngineConfig::default(),
        &mut EvalStats::new(),
    )?;
    let mut got = result.accepted.clone();
    got.sort_unstable();
    assert_eq!(got, exact, "cluster pruning must be exact");
    println!("\nVerified: identical answer set to the exact per-object evaluation.");
    Ok(())
}
