//! Iceberg monitoring — the motivating application of the paper's
//! introduction.
//!
//! The International Ice Patrol sights icebergs sporadically; between
//! sightings, a drift model (ocean current + turbulence) governs their
//! possible positions. This example:
//!
//! 1. generates a 40×40 ocean raster with a current-biased Markov chain and
//!    200 icebergs (30% of which have a later re-sighting);
//! 2. runs the paper's flagship query — *"find all icebergs that have
//!    non-zero probability to be inside the movement range of a particular
//!    ship"* — as a thresholded PST∃Q over a shipping-lane region;
//! 3. uses PST∀Q to find icebergs likely to *stay* in a survey area long
//!    enough for measurements;
//! 4. reconstructs the most likely track of a re-sighted iceberg via
//!    forward–backward smoothing (Section VI machinery).
//!
//! Run with: `cargo run --release --example iceberg_monitoring`

use ust::prelude::*;
use ust_core::{smoothing, threshold};
use ust_data::iceberg::{self, IcebergConfig};

fn main() -> Result<()> {
    let scenario = iceberg::generate(&IcebergConfig::default());
    let db = &scenario.db;
    let grid = &scenario.grid;
    println!(
        "Generated {} icebergs on a {}×{} ocean raster ({} drift states).",
        db.len(),
        grid.rows(),
        grid.cols(),
        db.num_states()
    );

    // --- 1. Shipping-lane risk -------------------------------------------
    // A great-circle segment approximated by a rectangle across the grid,
    // relevant during the next 12 time steps.
    let lane = Region::rect(10.0, 18.0, 30.0, 22.0);
    let lane_window = QueryWindow::from_region(grid, &lane, TimeSet::interval(1, 12))?;
    let config = EngineConfig::default();

    let mut risky = Vec::new();
    for object in db.objects() {
        let outcome =
            threshold::exists_threshold(db.model_of(object), object, &lane_window, 0.05, &config)?;
        if outcome.qualifies {
            risky.push((object.id(), outcome.lower));
        }
    }
    risky.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\nIcebergs with ≥5% probability of entering the shipping lane in t ∈ [1, 12]: {}",
        risky.len()
    );
    for (id, p) in risky.iter().take(5) {
        println!("  iceberg #{id}: P ≥ {p:.3}");
    }

    // --- 2. Survey-area loitering ----------------------------------------
    // "Retrieve all icebergs that have non-zero probability [of] remaining
    // in this region for a specified period of time."
    let survey = Region::circle(Point2::new(20.0, 20.0), 6.0);
    let survey_window = QueryWindow::from_region(grid, &survey, TimeSet::interval(2, 5))?;
    let processor = QueryProcessor::new(db);
    let stay = processor
        .execute(&Query::forall().window(survey_window).strategy(Strategy::QueryBased).build()?)?;
    let stay = stay.probabilities().expect("probabilities decorator");
    let loiterers: Vec<_> = stay.iter().filter(|r| r.probability > 0.01).collect();
    println!(
        "\nIcebergs with >1% probability of staying inside the survey circle for t ∈ [2, 5]: {}",
        loiterers.len()
    );
    for r in loiterers.iter().take(5) {
        println!("  iceberg #{}: P = {:.3}", r.object_id, r.probability);
    }

    // --- 3. Track reconstruction for a re-sighted iceberg -----------------
    if let Some(resighted) = db.objects().iter().find(|o| o.has_multiple_observations()) {
        let chain = db.model_of(resighted);
        let last = resighted.last_observation().time();
        println!(
            "\nReconstructed track of iceberg #{} (sighted at t=0 and t={last}):",
            resighted.id()
        );
        for (t, dist) in smoothing::smoothed_trajectory(chain, resighted, 0..=last)? {
            let (state, p) = dist.argmax().expect("non-empty distribution");
            let cell = grid.id_to_cell(state).expect("state within raster");
            println!("  t={t:>2}: most likely cell {cell:?} (P = {p:.3})");
        }
    }
    Ok(())
}
