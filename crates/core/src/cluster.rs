//! Cluster pruning over heterogeneous transition models — Section V-C.
//!
//! The query-based approach amortizes one backward pass over all objects
//! *sharing a chain*. With many distinct chains the paper proposes
//! clustering similar chains, representing each cluster by an approximated
//! Markov chain "where each entry is a probability interval instead of a
//! singular probability", and using it "to perform pruning by detecting
//! clusters of objects which must have (or cannot possibly have) a
//! sufficiently high probability to satisfy the query predicate. Only
//! clusters which cannot be decided as a whole need their objects to be
//! considered individually."
//!
//! [`clustered_threshold_query`] implements exactly that protocol on top of
//! [`ust_markov::IntervalMatrix`].

use std::collections::BTreeMap;

use ust_markov::{CsrMatrix, IntervalMatrix};

use crate::database::TrajectoryDatabase;
use crate::engine::{query_based, EngineConfig};
use crate::error::Result;
use crate::query::QueryWindow;
use crate::stats::EvalStats;

/// A cluster of transition-model indices with its interval envelope.
#[derive(Debug, Clone)]
pub struct ModelCluster {
    /// Model indices (into the database model table) in this cluster.
    pub models: Vec<usize>,
    envelope: IntervalMatrix,
}

impl ModelCluster {
    /// Builds a cluster over the given model indices of `db`.
    pub fn build(db: &TrajectoryDatabase, models: Vec<usize>) -> Result<ModelCluster> {
        let matrices: Vec<&CsrMatrix> = models
            .iter()
            .map(|&m| {
                db.models()
                    .get(m)
                    .map(|c| c.matrix())
                    .ok_or(crate::error::QueryError::UnknownModel { model: m })
            })
            .collect::<Result<_>>()?;
        let envelope = IntervalMatrix::envelope(&matrices)?;
        Ok(ModelCluster { models, envelope })
    }

    /// Width of the interval envelope (Σ |hi − lo|), a measure of cluster
    /// coherence usable to drive clustering decisions.
    pub fn envelope_width(&self) -> f64 {
        let lo = self.envelope.lower();
        let hi = self.envelope.upper();
        let mut width = 0.0;
        for i in 0..hi.nrows() {
            let (cols, vals) = hi.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                width += v - lo.get(i, c as usize);
            }
        }
        width
    }
}

/// Greedy coherence clustering: models are added to the first cluster whose
/// envelope stays below `max_width` after insertion, else start a new
/// cluster. Simple but effective when models form natural classes.
pub fn greedy_clusters(db: &TrajectoryDatabase, max_width: f64) -> Result<Vec<ModelCluster>> {
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for m in 0..db.models().len() {
        let mut placed = false;
        for members in clusters.iter_mut() {
            let mut attempt = members.clone();
            attempt.push(m);
            let cluster = ModelCluster::build(db, attempt.clone())?;
            if cluster.envelope_width() <= max_width {
                *members = attempt;
                placed = true;
                break;
            }
        }
        if !placed {
            clusters.push(vec![m]);
        }
    }
    clusters.into_iter().map(|models| ModelCluster::build(db, models)).collect()
}

/// Result of a clustered threshold query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredThresholdResult {
    /// Ids of objects with `P∃ ≥ τ`.
    pub accepted: Vec<u64>,
    /// Objects decided purely by cluster bounds (no exact evaluation).
    pub decided_by_bounds: usize,
    /// Objects that required individual exact evaluation.
    pub individually_evaluated: usize,
}

/// Per-object envelope-bound decisions over `indices` (database indices,
/// evaluated in the given order): `Some(true)` — the cluster's lower bound
/// already certifies `P∃ ≥ τ`; `Some(false)` — the upper bound rules it
/// out; `None` — the interval straddles `τ` and the object needs exact
/// evaluation. Decided objects count into [`EvalStats::objects_pruned`];
/// each object is validated against `window` exactly like the exact
/// drivers do, so a query that would fail without bounds fails here with
/// the same first error.
pub fn decide_by_bounds(
    db: &TrajectoryDatabase,
    indices: &[usize],
    window: &QueryWindow,
    tau: f64,
    clusters: &[ModelCluster],
    stats: &mut EvalStats,
) -> Result<Vec<Option<bool>>> {
    let mut cluster_of_model: BTreeMap<usize, usize> = BTreeMap::new();
    for (ci, cluster) in clusters.iter().enumerate() {
        for &m in &cluster.models {
            cluster_of_model.insert(m, ci);
        }
    }

    // Bounds are anchored per (cluster, anchor time): homogeneity lets us
    // shift the window instead of re-anchoring the chain.
    let mut bound_cache: BTreeMap<
        (usize, u32),
        (ust_markov::DenseVector, ust_markov::DenseVector),
    > = BTreeMap::new();

    let mut decisions = Vec::with_capacity(indices.len());
    for &idx in indices {
        let object =
            db.object(idx).ok_or(crate::error::QueryError::UnknownObject { id: idx as u64 })?;
        let model = object.model();
        let ci = match cluster_of_model.get(&model) {
            Some(&ci) => ci,
            None => {
                return Err(crate::error::QueryError::UnknownModel { model });
            }
        };
        let anchor = object.anchor();
        let a = anchor.time();
        crate::engine::object_based::validate(db.model_of(object), object, window)?;
        let (lo_vec, hi_vec) = match bound_cache.get(&(ci, a)) {
            Some(bounds) => bounds.clone(),
            None => {
                let rel_end = window.t_end() - a;
                let bounds = clusters[ci].envelope.backward_exists_bounds(
                    window.states(),
                    rel_end,
                    |t| window.time_in_window(t + a),
                )?;
                stats.backward_steps += u64::from(rel_end);
                bound_cache.insert((ci, a), bounds.clone());
                bounds
            }
        };
        let anchor_in = window.time_in_window(a);
        let mut lb = 0.0;
        let mut ub = 0.0;
        for (s, p) in anchor.distribution().iter() {
            if anchor_in && window.states().contains(s) {
                lb += p;
                ub += p;
            } else {
                lb += p * lo_vec.get(s);
                ub += p * hi_vec.get(s);
            }
        }
        if lb >= tau {
            stats.objects_pruned += 1;
            decisions.push(Some(true));
        } else if ub < tau {
            stats.objects_pruned += 1;
            decisions.push(Some(false));
        } else {
            decisions.push(None);
        }
    }
    Ok(decisions)
}

/// Thresholded PST∃Q using cluster-level interval bounds, falling back to
/// exact per-object evaluation only for undecided objects.
pub fn clustered_threshold_query(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    tau: f64,
    clusters: &[ModelCluster],
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<ClusteredThresholdResult> {
    let indices: Vec<usize> = (0..db.len()).collect();
    clustered_threshold_query_on(db, &indices, window, tau, clusters, config, stats)
}

/// [`clustered_threshold_query`] over an explicit candidate subset
/// (database indices, processed in the given order) — the entry point the
/// planner dispatches through after index pruning.
pub fn clustered_threshold_query_on(
    db: &TrajectoryDatabase,
    indices: &[usize],
    window: &QueryWindow,
    tau: f64,
    clusters: &[ModelCluster],
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<ClusteredThresholdResult> {
    let decisions = decide_by_bounds(db, indices, window, tau, clusters, stats)?;

    let mut accepted = Vec::new();
    let mut decided = 0usize;
    let mut individual = 0usize;
    for (&idx, decision) in indices.iter().zip(&decisions) {
        let object = db.object(idx).ok_or(crate::error::QueryError::internal(
            "bound-decided indices resolve to database objects",
        ))?;
        match decision {
            Some(true) => {
                accepted.push(object.id());
                decided += 1;
            }
            Some(false) => decided += 1,
            None => {
                // Undecided: exact QB evaluation with the object's own
                // chain.
                individual += 1;
                let p =
                    query_based::exists_probability(db.model_of(object), object, window, config)?;
                stats.objects_evaluated += 1;
                if p >= tau {
                    accepted.push(object.id());
                }
            }
        }
    }
    Ok(ClusteredThresholdResult {
        accepted,
        decided_by_bounds: decided,
        individually_evaluated: individual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::UncertainObject;
    use crate::observation::Observation;
    use crate::threshold;
    use ust_markov::{CsrMatrix, MarkovChain};
    use ust_space::TimeSet;

    fn chain(rows: &[Vec<f64>]) -> MarkovChain {
        MarkovChain::from_csr(CsrMatrix::from_dense(rows).unwrap()).unwrap()
    }

    fn paper_chain() -> MarkovChain {
        chain(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
    }

    /// A chain similar to the paper's (slightly perturbed rows).
    fn similar_chain() -> MarkovChain {
        chain(&[vec![0.0, 0.0, 1.0], vec![0.55, 0.0, 0.45], vec![0.0, 0.85, 0.15]])
    }

    /// A very different chain (drifts to s3 and stays).
    fn divergent_chain() -> MarkovChain {
        chain(&[vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0], vec![0.0, 0.05, 0.95]])
    }

    fn window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    fn make_db() -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::with_models(vec![
            paper_chain(),
            similar_chain(),
            divergent_chain(),
        ])
        .unwrap();
        for (i, (state, model)) in
            [(1usize, 0usize), (1, 1), (1, 2), (2, 0), (2, 2)].into_iter().enumerate()
        {
            db.insert(
                UncertainObject::with_single_observation(
                    i as u64,
                    Observation::exact(0, 3, state).unwrap(),
                )
                .with_model(model),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn envelope_width_orders_cluster_quality() {
        let db = make_db();
        let tight = ModelCluster::build(&db, vec![0, 1]).unwrap();
        let loose = ModelCluster::build(&db, vec![0, 2]).unwrap();
        assert!(tight.envelope_width() < loose.envelope_width());
        assert_eq!(ModelCluster::build(&db, vec![0]).unwrap().envelope_width(), 0.0);
        assert!(ModelCluster::build(&db, vec![9]).is_err());
    }

    #[test]
    fn greedy_clustering_separates_divergent_models() {
        let db = make_db();
        let clusters = greedy_clusters(&db, 0.5).unwrap();
        // The paper chain and its perturbation cluster together; the
        // divergent chain stands alone.
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].models, vec![0, 1]);
        assert_eq!(clusters[1].models, vec![2]);
    }

    #[test]
    fn clustered_query_matches_exact_threshold_query() {
        let db = make_db();
        let clusters = greedy_clusters(&db, 0.5).unwrap();
        let config = EngineConfig::default();
        for tau in [0.05, 0.3, 0.5, 0.85, 0.9, 0.99] {
            let mut stats = EvalStats::new();
            let clustered =
                clustered_threshold_query(&db, &window(), tau, &clusters, &config, &mut stats)
                    .unwrap();
            let exact =
                threshold::threshold_query(&db, &window(), tau, &config, &mut EvalStats::new())
                    .unwrap();
            let mut got = clustered.accepted.clone();
            got.sort_unstable();
            assert_eq!(got, exact, "τ = {tau}");
            assert_eq!(clustered.decided_by_bounds + clustered.individually_evaluated, db.len());
        }
    }

    #[test]
    fn singleton_clusters_decide_everything_by_bounds() {
        // With one model per cluster the interval is degenerate (lo = hi),
        // so every object is decided by bounds alone.
        let db = make_db();
        let clusters: Vec<ModelCluster> =
            (0..3).map(|m| ModelCluster::build(&db, vec![m]).unwrap()).collect();
        let mut stats = EvalStats::new();
        let result = clustered_threshold_query(
            &db,
            &window(),
            0.5,
            &clusters,
            &EngineConfig::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(result.individually_evaluated, 0);
        assert_eq!(result.decided_by_bounds, db.len());
        // "Without touching members": no object was exactly evaluated and
        // every one was pruned by the envelope.
        assert_eq!(stats.objects_evaluated, 0);
        assert_eq!(stats.objects_pruned, db.len() as u64);
    }

    #[test]
    fn subset_variant_matches_full_query_on_subset() {
        let db = make_db();
        let clusters = greedy_clusters(&db, 0.5).unwrap();
        let config = EngineConfig::default();
        let subset = [0usize, 2, 4];
        for tau in [0.05, 0.5, 0.9] {
            let on = clustered_threshold_query_on(
                &db,
                &subset,
                &window(),
                tau,
                &clusters,
                &config,
                &mut EvalStats::new(),
            )
            .unwrap();
            // The subset answer is the full answer restricted to the subset
            // — per-object decisions do not depend on who else was asked.
            let full = clustered_threshold_query(
                &db,
                &window(),
                tau,
                &clusters,
                &config,
                &mut EvalStats::new(),
            )
            .unwrap();
            let subset_ids: Vec<u64> = subset.iter().map(|&i| db.object(i).unwrap().id()).collect();
            let expect: Vec<u64> =
                full.accepted.iter().copied().filter(|id| subset_ids.contains(id)).collect();
            assert_eq!(on.accepted, expect, "τ = {tau}");
            assert_eq!(on.decided_by_bounds + on.individually_evaluated, subset.len());
        }
    }

    #[test]
    fn decide_by_bounds_is_conservative() {
        // Whenever the envelope decides an object, the exact probability
        // must agree with the decision.
        let db = make_db();
        let clusters = greedy_clusters(&db, 0.5).unwrap();
        let config = EngineConfig::default();
        let indices: Vec<usize> = (0..db.len()).collect();
        for tau in [0.05, 0.3, 0.5, 0.85, 0.9, 0.99] {
            let decisions =
                decide_by_bounds(&db, &indices, &window(), tau, &clusters, &mut EvalStats::new())
                    .unwrap();
            for (&idx, decision) in indices.iter().zip(&decisions) {
                let object = db.object(idx).unwrap();
                let p = query_based::exists_probability(
                    db.model_of(object),
                    object,
                    &window(),
                    &config,
                )
                .unwrap();
                if let Some(accept) = decision {
                    assert_eq!(*accept, p >= tau, "object {idx}, τ = {tau}, p = {p}");
                }
            }
        }
    }

    #[test]
    fn missing_cluster_for_model_errors() {
        let db = make_db();
        let clusters = vec![ModelCluster::build(&db, vec![0, 1]).unwrap()];
        assert!(clustered_threshold_query(
            &db,
            &window(),
            0.5,
            &clusters,
            &EngineConfig::default(),
            &mut EvalStats::new(),
        )
        .is_err());
    }
}
