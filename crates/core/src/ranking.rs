//! Top-k probability ranking.
//!
//! "Find the k icebergs most likely to enter the shipping lane" — a ranking
//! variant of the PST∃Q that uncertain databases commonly expose alongside
//! threshold queries (cf. the probabilistic ranking literature the paper
//! cites, e.g. Bernecker et al., TKDE 2010). Two strategies:
//!
//! * [`topk_query_based`] — compute every probability via the (cheap)
//!   query-based engine and select the k largest; the baseline.
//! * [`topk_object_based_pruned`] — object-based evaluation with
//!   bound-based pruning: objects are first screened with the
//!   [`ReachabilityPruner`]'s instant upper bound; propagation then runs
//!   only while an object's upper bound still beats the current k-th best
//!   lower bound. With a selective window most objects are dismissed
//!   before (or shortly after) their first transition.

use std::ops::ControlFlow;

use crate::database::TrajectoryDatabase;
use crate::engine::pipeline::{BatchPhase, ObjectBatch, Propagator};
use crate::engine::{group_batchable, object_based, query_based, EngineConfig};
use crate::error::{QueryError, Result};
use crate::query::QueryWindow;
use crate::stats::EvalStats;
use crate::threshold::ReachabilityPruner;

/// One ranked result.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedObject {
    /// The object's identifier.
    pub object_id: u64,
    /// Its PST∃Q probability.
    pub probability: f64,
}

/// Exact top-k via the query-based engine (one backward pass, one dot
/// product per object, then selection). Ties broken by ascending id.
pub fn topk_query_based(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    k: usize,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<RankedObject>> {
    let all = query_based::evaluate(db, window, config, stats)?;
    Ok(select_topk(all, k))
}

/// As [`topk_query_based`], answering the backward fields through a shared
/// [`crate::engine::cache::BackwardFieldCache`]: a repeated or overlapping
/// window reuses the cached suffix sweep. Bit-for-bit identical to the
/// uncached ranking.
pub fn topk_query_based_with_cache(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    k: usize,
    config: &EngineConfig,
    cache: &mut crate::engine::cache::BackwardFieldCache,
    stats: &mut EvalStats,
) -> Result<Vec<RankedObject>> {
    let all = query_based::evaluate_with_cache(db, window, config, cache, stats)?;
    Ok(select_topk(all, k))
}

pub(crate) fn select_topk(
    mut all: Vec<crate::query::ObjectProbability>,
    k: usize,
) -> Vec<RankedObject> {
    all.sort_by(|a, b| b.probability.total_cmp(&a.probability).then(a.object_id.cmp(&b.object_id)));
    all.into_iter()
        .take(k)
        .map(|r| RankedObject { object_id: r.object_id, probability: r.probability })
        .collect()
}

/// Exact top-k via pruned object-based evaluation.
///
/// Useful when objects follow *many distinct models* (where QB would need
/// one backward pass per model) or when `k` is small and the window
/// selective. Produces exactly the same ranking as [`topk_query_based`].
pub fn topk_object_based_pruned(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    k: usize,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<RankedObject>> {
    let indices: Vec<usize> = (0..db.len()).collect();
    let mut pipeline = Propagator::new(config, stats);
    topk_batched(&mut pipeline, db, &indices, window, k)
}

/// Inserts `entry` into the sorted top-k candidate list (probability
/// descending, ties by ascending id), trimming beyond `k`.
pub(crate) fn insert_ranked(best: &mut Vec<RankedObject>, entry: RankedObject, k: usize) {
    let pos = best
        .binary_search_by(|probe| {
            probe
                .probability
                .total_cmp(&entry.probability)
                .reverse()
                .then(probe.object_id.cmp(&entry.object_id))
        })
        .unwrap_or_else(|p| p);
    best.insert(pos, entry);
    if best.len() > k {
        best.pop();
    }
}

/// The batched top-k driver over an explicit set of database object indices
/// (one `ShardedExecutor` worker's share). Returns that share's top-k
/// candidates — already the final answer for a single-worker run; shards
/// merge their candidate lists with [`insert_ranked`].
///
/// Objects grouped by `(model, anchor time)` propagate in
/// [`EngineConfig::batch_size`] batches: the ∃ rule accumulates per live
/// group, and after every timestamp each group whose reachability-pruned
/// upper bound can no longer beat the current k-th best lower bound drops
/// out of the batch. The candidate list is updated per batch, so later
/// batches prune against the tightened bound. Survivor probabilities are
/// exact, making the final ranking identical at every batch size.
pub(crate) fn topk_batched(
    pipeline: &mut Propagator<'_>,
    db: &TrajectoryDatabase,
    indices: &[usize],
    window: &QueryWindow,
    k: usize,
) -> Result<Vec<RankedObject>> {
    if k == 0 || indices.is_empty() {
        return Ok(Vec::new());
    }
    object_based::validate_indices(db, indices, window)?;

    // Current top-k lower bounds (min-heap behaviour via sorted Vec —
    // k is small in practice).
    let mut best: Vec<RankedObject> = Vec::with_capacity(k + 1);
    let kth_bound = |best: &Vec<RankedObject>| -> f64 {
        if best.len() < k {
            0.0
        } else {
            best.last().map(|r| r.probability).unwrap_or(0.0)
        }
    };

    let batch_size = pipeline.config().effective_batch_size();
    for ((model, t0), members) in group_batchable(db, indices)? {
        let chain = &db.models()[model];
        let pruner = ReachabilityPruner::build(chain, window, t0)?;
        for chunk in members.chunks(batch_size) {
            let mut rows = object_based::seed_anchor_rows(pipeline, db, indices, chunk)?;
            let mut batch = ObjectBatch::new(&mut rows, 1)?;
            let mut hits = vec![0.0f64; chunk.len()];
            let mut dismissed_at: Vec<Option<u32>> = vec![None; chunk.len()];
            pipeline.forward_batch(chain.matrix(), &mut batch, t0, window, |phase, batch, t| {
                match phase {
                    BatchPhase::Window => {
                        object_based::accumulate_exists_hits(batch, &mut hits, window);
                    }
                    BatchPhase::StepEnd => {
                        for (g, dismissal) in dismissed_at.iter_mut().enumerate() {
                            if !batch.is_active(g) {
                                continue;
                            }
                            let upper = match pruner.mask_at(t) {
                                Some(mask) => {
                                    (hits[g] + batch.group(g)[0].masked_sum(mask)).min(1.0)
                                }
                                None => (hits[g] + batch.group(g)[0].sum()).min(1.0),
                            };
                            // Dismiss an object that can no longer
                            // *strictly* beat the k-th candidate, or
                            // that can never reach the window at all.
                            // The strict comparison keeps boundary ties
                            // alive in every batch size, so exact ties
                            // are always resolved by the deterministic
                            // id tie-break — the final ranking is
                            // independent of batch composition.
                            if upper == 0.0 || upper < kth_bound(&best) {
                                *dismissal = Some(t);
                                batch.deactivate(g);
                            }
                        }
                    }
                }
                Ok(ControlFlow::Continue(()))
            })?;
            for (g, &pos) in chunk.iter().enumerate() {
                match dismissed_at[g] {
                    // Screened out by the instant upper bound, before any
                    // step.
                    Some(t) if t == t0 => pipeline.stats().objects_pruned += 1,
                    // Dismissed mid-propagation: cannot beat the k-th
                    // candidate.
                    Some(_) => pipeline.stats().early_terminations += 1,
                    None => {
                        let object = db.object(indices[pos]).ok_or(QueryError::internal(
                            "ranked positions resolve to database objects",
                        ))?;
                        insert_ranked(
                            &mut best,
                            RankedObject { object_id: object.id(), probability: hits[g].min(1.0) },
                            k,
                        );
                    }
                }
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::UncertainObject;
    use crate::observation::Observation;
    use ust_markov::{CsrMatrix, MarkovChain};
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn three_object_db() -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new(paper_chain());
        for (id, s) in [(10u64, 0usize), (20, 1), (30, 2)] {
            db.insert(UncertainObject::with_single_observation(
                id,
                Observation::exact(0, 3, s).unwrap(),
            ))
            .unwrap();
        }
        db
    }

    fn window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn topk_orders_by_probability() {
        // Exact probabilities: id 10 → 0.96, id 20 → 0.864, id 30 → 0.928.
        let db = three_object_db();
        let config = EngineConfig::default();
        let top2 = topk_query_based(&db, &window(), 2, &config, &mut EvalStats::new()).unwrap();
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].object_id, 10);
        assert_eq!(top2[1].object_id, 30);
        assert!((top2[0].probability - 0.96).abs() < 1e-12);
    }

    #[test]
    fn both_strategies_agree() {
        let db = three_object_db();
        let config = EngineConfig::default();
        for k in 0..=4usize {
            let qb = topk_query_based(&db, &window(), k, &config, &mut EvalStats::new()).unwrap();
            let ob = topk_object_based_pruned(&db, &window(), k, &config, &mut EvalStats::new())
                .unwrap();
            assert_eq!(qb.len(), ob.len(), "k = {k}");
            for (a, b) in qb.iter().zip(&ob) {
                assert_eq!(a.object_id, b.object_id, "k = {k}");
                assert!((a.probability - b.probability).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn agreement_on_random_dataset() {
        let chain = ust_markov::testutil::random_chain(3, 100, 4);
        let mut rng = ust_markov::testutil::rng(4);
        let mut db = TrajectoryDatabase::new(chain);
        for id in 0..40u64 {
            let dist = ust_markov::testutil::random_distribution(&mut rng, 100, 3);
            db.insert(UncertainObject::with_single_observation(
                id,
                Observation::uncertain(0, dist).unwrap(),
            ))
            .unwrap();
        }
        let window = QueryWindow::from_states(100, 10usize..=14, TimeSet::interval(3, 6)).unwrap();
        let config = EngineConfig::default();
        let qb = topk_query_based(&db, &window, 5, &config, &mut EvalStats::new()).unwrap();
        let ob = topk_object_based_pruned(&db, &window, 5, &config, &mut EvalStats::new()).unwrap();
        assert_eq!(qb.len(), 5);
        for (a, b) in qb.iter().zip(&ob) {
            assert_eq!(a.object_id, b.object_id);
            assert!((a.probability - b.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn pruning_actually_skips_work() {
        // A line chain where only nearby objects can reach the window.
        let n = 60;
        let mut b = ust_markov::CooBuilder::new(n, n);
        for i in 0..n {
            if i + 1 < n {
                b.push(i, i + 1, 1.0).unwrap();
            } else {
                b.push(i, i, 1.0).unwrap();
            }
        }
        let chain = MarkovChain::from_csr(b.build()).unwrap();
        let mut db = TrajectoryDatabase::new(chain);
        for id in 0..n as u64 {
            db.insert(UncertainObject::with_single_observation(
                id,
                Observation::exact(0, n, id as usize).unwrap(),
            ))
            .unwrap();
        }
        // Window at states [40, 42] over times [1, 3]: only objects at
        // 37..=41 can hit it.
        let window = QueryWindow::from_states(n, 40usize..=42, TimeSet::interval(1, 3)).unwrap();
        let mut stats = EvalStats::new();
        let top = topk_object_based_pruned(&db, &window, 3, &EngineConfig::default(), &mut stats)
            .unwrap();
        assert_eq!(top.len(), 3);
        for r in &top {
            assert!((r.probability - 1.0).abs() < 1e-12);
        }
        assert!(
            stats.objects_pruned > 40,
            "most objects should be dismissed instantly, pruned = {}",
            stats.objects_pruned
        );
    }

    #[test]
    fn k_zero_and_empty_db() {
        let db = three_object_db();
        let config = EngineConfig::default();
        assert!(topk_object_based_pruned(&db, &window(), 0, &config, &mut EvalStats::new())
            .unwrap()
            .is_empty());
        let empty = TrajectoryDatabase::new(paper_chain());
        assert!(topk_object_based_pruned(&empty, &window(), 3, &config, &mut EvalStats::new())
            .unwrap()
            .is_empty());
        assert!(topk_query_based(&empty, &window(), 3, &config, &mut EvalStats::new())
            .unwrap()
            .is_empty());
    }
}
