//! Query windows and result types (Definitions 2–4 of the paper).

use ust_markov::StateMask;
use ust_space::{Region, StateSpace, TimeSet};

use crate::error::{QueryError, Result};

/// A resolved spatio-temporal query window `Q▫ = S▫ × T▫`: a set of states
/// and a set of timestamps (neither necessarily contiguous).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryWindow {
    states: StateMask,
    times: TimeSet,
}

impl QueryWindow {
    /// Creates a window from a state mask and time set; both must be
    /// non-empty.
    pub fn new(states: StateMask, times: TimeSet) -> Result<Self> {
        if states.is_empty() {
            return Err(QueryError::EmptySpatialWindow);
        }
        if times.is_empty() {
            return Err(QueryError::EmptyTemporalWindow);
        }
        Ok(QueryWindow { states, times })
    }

    /// Resolves a geometric [`Region`] against a state space.
    pub fn from_region<S: StateSpace + ?Sized>(
        space: &S,
        region: &Region,
        times: TimeSet,
    ) -> Result<Self> {
        let ids = region.resolve(space);
        let states = StateMask::from_indices(space.num_states(), ids)?;
        QueryWindow::new(states, times)
    }

    /// Convenience constructor from explicit state ids.
    pub fn from_states<I: IntoIterator<Item = usize>>(
        num_states: usize,
        states: I,
        times: TimeSet,
    ) -> Result<Self> {
        QueryWindow::new(StateMask::from_indices(num_states, states)?, times)
    }

    /// The spatial component `S▫`.
    pub fn states(&self) -> &StateMask {
        &self.states
    }

    /// The temporal component `T▫`.
    pub fn times(&self) -> &TimeSet {
        &self.times
    }

    /// `t_end = max(T▫)` — the anchor of backward passes.
    pub fn t_end(&self) -> u32 {
        self.times.max().expect("validated non-empty")
    }

    /// `t_start = min(T▫)`.
    pub fn t_start(&self) -> u32 {
        self.times.min().expect("validated non-empty")
    }

    /// Number of query timestamps `|T▫|`.
    pub fn num_times(&self) -> usize {
        self.times.len()
    }

    /// True when `t ∈ T▫`.
    pub fn time_in_window(&self, t: u32) -> bool {
        self.times.contains(t)
    }

    /// The complemented window `(S ∖ S▫) × T▫` used to reduce PST∀Q to
    /// PST∃Q (Section VII): `P∀(S▫, T▫) = 1 − P∃(S ∖ S▫, T▫)`.
    pub fn complement_states(&self) -> Result<QueryWindow> {
        QueryWindow::new(self.states.complement(), self.times.clone())
    }
}

/// Per-object probability result of a PST∃Q or PST∀Q.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectProbability {
    /// The object's identifier.
    pub object_id: u64,
    /// The query probability for that object.
    pub probability: f64,
}

/// Per-object result of a PSTkQ: `probabilities[k]` is the probability the
/// object is inside the window at exactly `k ∈ {0..|T▫|}` query timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectKDistribution {
    /// The object's identifier.
    pub object_id: u64,
    /// Distribution over visit counts, indexed by `k` (length `|T▫| + 1`).
    pub probabilities: Vec<f64>,
}

impl ObjectKDistribution {
    /// `P(k ≥ 1)` — must equal the PST∃Q probability.
    pub fn prob_at_least_once(&self) -> f64 {
        1.0 - self.probabilities.first().copied().unwrap_or(1.0)
    }

    /// `P(k = |T▫|)` — must equal the PST∀Q probability.
    pub fn prob_always(&self) -> f64 {
        self.probabilities.last().copied().unwrap_or(0.0)
    }

    /// Expected number of window timestamps the object is inside `S▫`.
    pub fn expected_visits(&self) -> f64 {
        self.probabilities.iter().enumerate().map(|(k, p)| k as f64 * p).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_space::LineSpace;

    #[test]
    fn window_construction_and_accessors() {
        let w = QueryWindow::from_states(10, [3usize, 4, 5], TimeSet::interval(2, 4)).unwrap();
        assert_eq!(w.t_start(), 2);
        assert_eq!(w.t_end(), 4);
        assert_eq!(w.num_times(), 3);
        assert!(w.time_in_window(3));
        assert!(!w.time_in_window(5));
        assert!(w.states().contains(4));
        assert!(!w.states().contains(6));
    }

    #[test]
    fn empty_windows_rejected() {
        assert_eq!(
            QueryWindow::from_states(10, [], TimeSet::interval(0, 1)),
            Err(QueryError::EmptySpatialWindow)
        );
        assert_eq!(
            QueryWindow::from_states(10, [1usize], TimeSet::empty()),
            Err(QueryError::EmptyTemporalWindow)
        );
    }

    #[test]
    fn from_region_resolves_states() {
        let line = LineSpace::new(20);
        let w = QueryWindow::from_region(&line, &Region::rect(4.2, -1.0, 7.9, 1.0), TimeSet::at(3))
            .unwrap();
        assert_eq!(w.states().to_indices(), vec![5, 6, 7]);
    }

    #[test]
    fn complement_flips_states() {
        let w = QueryWindow::from_states(5, [1usize, 2], TimeSet::at(0)).unwrap();
        let c = w.complement_states().unwrap();
        assert_eq!(c.states().to_indices(), vec![0, 3, 4]);
        assert_eq!(c.times(), w.times());
        // Complement of the full space is empty and must be rejected.
        let full = QueryWindow::from_states(3, [0usize, 1, 2], TimeSet::at(0)).unwrap();
        assert_eq!(full.complement_states(), Err(QueryError::EmptySpatialWindow));
    }

    #[test]
    fn k_distribution_helpers() {
        let d = ObjectKDistribution { object_id: 7, probabilities: vec![0.136, 0.672, 0.192] };
        assert!((d.prob_at_least_once() - 0.864).abs() < 1e-12);
        assert!((d.prob_always() - 0.192).abs() < 1e-12);
        assert!((d.expected_visits() - (0.672 + 2.0 * 0.192)).abs() < 1e-12);
    }
}
