//! Query windows, declarative query specs and result types
//! (Definitions 2–4 of the paper).
//!
//! The paper defines **one** query model: a predicate (PST∃Q, PST∀Q,
//! PSTkQ) over a window `Q▫ = S▫ × T▫`, optionally decorated with a
//! probability threshold or a top-k selection, and answerable by either
//! the object-based or the query-based evaluation technique. [`QuerySpec`]
//! is that model as data: the predicate, the decorator and the window are
//! *what* is asked, while the [`Strategy`] (defaulting to
//! [`Strategy::Auto`]) is *how* it is answered — chosen by the planner in
//! [`crate::engine::plan`] from database and window statistics unless
//! explicitly overridden. Specs are built fluently:
//!
//! ```
//! use ust_core::prelude::*;
//! use ust_space::TimeSet;
//!
//! let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3))?;
//! let spec = Query::exists().window(window).threshold(0.5).build()?;
//! assert_eq!(spec.strategy(), Strategy::Auto);
//! # Ok::<(), ust_core::QueryError>(())
//! ```
//!
//! and executed through [`crate::engine::QueryProcessor::execute`] (or
//! submitted asynchronously through
//! [`crate::engine::QueryProcessor::submit`]), which returns a
//! [`QueryAnswer`] variant matching the decorator.

use ust_markov::StateMask;
use ust_space::{Region, StateSpace, TimeSet};

use crate::engine::monte_carlo::MonteCarlo;
use crate::error::{QueryError, Result};

/// A resolved spatio-temporal query window `Q▫ = S▫ × T▫`: a set of states
/// and a set of timestamps (neither necessarily contiguous).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryWindow {
    states: StateMask,
    times: TimeSet,
}

impl QueryWindow {
    /// Creates a window from a state mask and time set; both must be
    /// non-empty.
    pub fn new(states: StateMask, times: TimeSet) -> Result<Self> {
        if states.is_empty() {
            return Err(QueryError::EmptySpatialWindow);
        }
        if times.is_empty() {
            return Err(QueryError::EmptyTemporalWindow);
        }
        Ok(QueryWindow { states, times })
    }

    /// Resolves a geometric [`Region`] against a state space.
    pub fn from_region<S: StateSpace + ?Sized>(
        space: &S,
        region: &Region,
        times: TimeSet,
    ) -> Result<Self> {
        let ids = region.resolve(space);
        let states = StateMask::from_indices(space.num_states(), ids)?;
        QueryWindow::new(states, times)
    }

    /// Convenience constructor from explicit state ids.
    pub fn from_states<I: IntoIterator<Item = usize>>(
        num_states: usize,
        states: I,
        times: TimeSet,
    ) -> Result<Self> {
        QueryWindow::new(StateMask::from_indices(num_states, states)?, times)
    }

    /// The spatial component `S▫`.
    pub fn states(&self) -> &StateMask {
        &self.states
    }

    /// The temporal component `T▫`.
    pub fn times(&self) -> &TimeSet {
        &self.times
    }

    /// `t_end = max(T▫)` — the anchor of backward passes.
    pub fn t_end(&self) -> u32 {
        // lint: allow(panicking-call-in-lib) — `QueryWindow::new` rejects an empty
        // time set with `EmptyTemporalWindow`, so `times` always has a maximum.
        self.times.max().expect("validated non-empty")
    }

    /// `t_start = min(T▫)`.
    pub fn t_start(&self) -> u32 {
        // lint: allow(panicking-call-in-lib) — same constructor invariant as
        // `t_end`: the validated time set is non-empty.
        self.times.min().expect("validated non-empty")
    }

    /// Number of query timestamps `|T▫|`.
    pub fn num_times(&self) -> usize {
        self.times.len()
    }

    /// True when `t ∈ T▫`.
    pub fn time_in_window(&self, t: u32) -> bool {
        self.times.contains(t)
    }

    /// The complemented window `(S ∖ S▫) × T▫` used to reduce PST∀Q to
    /// PST∃Q (Section VII): `P∀(S▫, T▫) = 1 − P∃(S ∖ S▫, T▫)`.
    pub fn complement_states(&self) -> Result<QueryWindow> {
        QueryWindow::new(self.states.complement(), self.times.clone())
    }
}

/// Per-object probability result of a PST∃Q or PST∀Q.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectProbability {
    /// The object's identifier.
    pub object_id: u64,
    /// The query probability for that object.
    pub probability: f64,
}

/// Per-object result of a PSTkQ: `probabilities[k]` is the probability the
/// object is inside the window at exactly `k ∈ {0..|T▫|}` query timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectKDistribution {
    /// The object's identifier.
    pub object_id: u64,
    /// Distribution over visit counts, indexed by `k` (length `|T▫| + 1`).
    pub probabilities: Vec<f64>,
}

impl ObjectKDistribution {
    /// `P(k ≥ 1)` — must equal the PST∃Q probability.
    pub fn prob_at_least_once(&self) -> f64 {
        1.0 - self.probabilities.first().copied().unwrap_or(1.0)
    }

    /// `P(k = |T▫|)` — must equal the PST∀Q probability.
    pub fn prob_always(&self) -> f64 {
        self.probabilities.last().copied().unwrap_or(0.0)
    }

    /// Expected number of window timestamps the object is inside `S▫`.
    pub fn expected_visits(&self) -> f64 {
        self.probabilities.iter().enumerate().map(|(k, p)| k as f64 * p).sum()
    }

    /// `P(visits ≥ k)` — the tail mass of the distribution, the quantity
    /// the [`Predicate::KTimes`] threshold and top-k decorators filter and
    /// rank by. `k = 0` is trivially 1, `k > |T▫|` trivially 0.
    pub fn prob_at_least(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        self.probabilities.iter().skip(k).sum()
    }
}

/// The query predicate: *what* is asked of each object over the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// PST∃Q (Definition 2): inside `S▫` at *some* `t ∈ T▫`.
    Exists,
    /// PST∀Q (Definition 3): inside `S▫` at *all* `t ∈ T▫`.
    ForAll,
    /// PSTkQ (Section VII): inside `S▫` at **at least** `k` timestamps of
    /// `T▫`. With the [`Decorator::Probabilities`] decorator the answer is
    /// the full distribution over visit counts
    /// ([`QueryAnswer::Distributions`]), from which `P(≥ k)` and every
    /// other tail is derivable; the threshold and top-k decorators filter
    /// and rank by [`ObjectKDistribution::prob_at_least`]`(k)`.
    KTimes(usize),
}

/// The result decorator: *how much* of the per-object probability the
/// caller wants back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decorator {
    /// Every object's probability (or visit-count distribution for
    /// [`Predicate::KTimes`]).
    Probabilities,
    /// Only the ids of objects whose predicate probability is `≥ τ` —
    /// the probabilistic threshold query. Enables bound-based early
    /// termination under the object-based strategy.
    Threshold(f64),
    /// The `k` objects with the highest predicate probability, ranked
    /// descending (ties broken by ascending id).
    ///
    /// The ranking is value-identical across strategies, with one
    /// documented asymmetry inherited from the drivers: the object-based
    /// strategy's reachability pruning *omits* objects that provably
    /// cannot intersect the window, while the query-based strategy lists
    /// them with probability `0.0` — so answers may differ in their
    /// zero-probability tail when fewer than `k` objects can reach the
    /// window at all.
    TopK(usize),
}

/// The evaluation strategy: *how* the engines answer the spec.
///
/// The predicate/decorator axes of [`QuerySpec`] are orthogonal to the
/// evaluation technique (the object-based forward pass of Section V-A vs.
/// the query-based backward pass of Section V-B); `Strategy` makes that
/// orthogonality explicit. [`Strategy::Auto`] defers the choice to the
/// planner, which estimates both costs from database and window statistics
/// (plus backward-field cache residency) — inspect the decision with
/// [`crate::engine::QueryProcessor::explain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Let the planner choose between the exact strategies (never picks
    /// the sampling baseline).
    Auto,
    /// Force the object-based forward engine (Section V-A).
    ObjectBased,
    /// Force the query-based backward engine (Section V-B), served through
    /// the processor's backward-field caches.
    QueryBased,
    /// Force the Monte-Carlo sampling baseline (approximate; configure via
    /// [`QueryBuilder::sampling`]).
    MonteCarlo,
}

/// A declarative, executable query: predicate × decorator × window ×
/// strategy, plus an optional restriction to explicit object ids.
///
/// Build with [`Query`], execute with
/// [`crate::engine::QueryProcessor::execute`] (synchronous) or
/// [`crate::engine::QueryProcessor::submit`] (asynchronous ticket).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    predicate: Predicate,
    decorator: Decorator,
    window: QueryWindow,
    strategy: Strategy,
    objects: Option<Vec<u64>>,
    sampling: MonteCarlo,
}

impl QuerySpec {
    /// The query predicate.
    pub fn predicate(&self) -> Predicate {
        self.predicate
    }

    /// The result decorator.
    pub fn decorator(&self) -> Decorator {
        self.decorator
    }

    /// The query window `S▫ × T▫`.
    pub fn window(&self) -> &QueryWindow {
        &self.window
    }

    /// The requested evaluation strategy ([`Strategy::Auto`] unless
    /// overridden).
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The explicit object-id subset, if the query is restricted
    /// (sorted, deduplicated). `None` means the whole database.
    pub fn objects(&self) -> Option<&[u64]> {
        self.objects.as_deref()
    }

    /// The sampling parameters used under [`Strategy::MonteCarlo`].
    pub fn sampling(&self) -> MonteCarlo {
        self.sampling
    }
}

/// Entry point of the query-builder API: pick the predicate, then chain
/// the window, decorator, strategy and subset.
///
/// ```
/// use ust_core::prelude::*;
/// use ust_space::TimeSet;
///
/// let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3))?;
/// // "The 5 objects most likely to visit the window at least twice,
/// //  evaluated query-based."
/// let spec = Query::ktimes(2)
///     .window(window)
///     .top_k(5)
///     .strategy(Strategy::QueryBased)
///     .build()?;
/// assert_eq!(spec.predicate(), Predicate::KTimes(2));
/// # Ok::<(), ust_core::QueryError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Query;

impl Query {
    /// A PST∃Q spec builder.
    pub fn exists() -> QueryBuilder {
        QueryBuilder::new(Predicate::Exists)
    }

    /// A PST∀Q spec builder.
    pub fn forall() -> QueryBuilder {
        QueryBuilder::new(Predicate::ForAll)
    }

    /// A PSTkQ spec builder (see [`Predicate::KTimes`] for how `k`
    /// interacts with the decorators).
    pub fn ktimes(k: usize) -> QueryBuilder {
        QueryBuilder::new(Predicate::KTimes(k))
    }
}

/// Fluent builder for a [`QuerySpec`]; obtained from [`Query`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    predicate: Predicate,
    decorator: Decorator,
    window: Option<QueryWindow>,
    strategy: Strategy,
    objects: Option<Vec<u64>>,
    sampling: MonteCarlo,
}

impl QueryBuilder {
    fn new(predicate: Predicate) -> QueryBuilder {
        QueryBuilder {
            predicate,
            decorator: Decorator::Probabilities,
            window: None,
            strategy: Strategy::Auto,
            objects: None,
            sampling: MonteCarlo::default(),
        }
    }

    /// Sets the query window (required).
    pub fn window(mut self, window: QueryWindow) -> Self {
        self.window = Some(window);
        self
    }

    /// Asks for every object's probability / distribution (the default
    /// decorator).
    pub fn probabilities(mut self) -> Self {
        self.decorator = Decorator::Probabilities;
        self
    }

    /// Asks only for the ids of objects with predicate probability `≥ tau`.
    pub fn threshold(mut self, tau: f64) -> Self {
        self.decorator = Decorator::Threshold(tau);
        self
    }

    /// Asks for the `k` objects with the highest predicate probability.
    pub fn top_k(mut self, k: usize) -> Self {
        self.decorator = Decorator::TopK(k);
        self
    }

    /// Overrides the planner's strategy choice.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Restricts the query to an explicit set of object ids (any order,
    /// duplicates ignored). Every id must exist in the database at
    /// execution time.
    pub fn objects<I: IntoIterator<Item = u64>>(mut self, ids: I) -> Self {
        self.objects = Some(ids.into_iter().collect());
        self
    }

    /// Sets the sampling parameters for [`Strategy::MonteCarlo`].
    pub fn sampling(mut self, sampling: MonteCarlo) -> Self {
        self.sampling = sampling;
        self
    }

    /// Validates and freezes the spec.
    ///
    /// Fails with [`QueryError::MissingWindow`] when no window was set and
    /// [`QueryError::InvalidThreshold`] when a threshold decorator's τ is
    /// not a probability.
    pub fn build(self) -> Result<QuerySpec> {
        let window = self.window.ok_or(QueryError::MissingWindow)?;
        if let Decorator::Threshold(tau) = self.decorator {
            if !(0.0..=1.0).contains(&tau) {
                return Err(QueryError::InvalidThreshold { tau });
            }
        }
        let objects = self.objects.map(|mut ids| {
            ids.sort_unstable();
            ids.dedup();
            ids
        });
        Ok(QuerySpec {
            predicate: self.predicate,
            decorator: self.decorator,
            window,
            strategy: self.strategy,
            objects,
            sampling: self.sampling,
        })
    }
}

/// The answer of an executed [`QuerySpec`]; the variant follows the
/// decorator (and, for PSTkQ probabilities, the predicate).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// Per-object probabilities ([`Decorator::Probabilities`] under
    /// [`Predicate::Exists`] / [`Predicate::ForAll`]).
    Probabilities(Vec<ObjectProbability>),
    /// Per-object visit-count distributions
    /// ([`Decorator::Probabilities`] under [`Predicate::KTimes`]).
    Distributions(Vec<ObjectKDistribution>),
    /// Accepted object ids in database order
    /// ([`Decorator::Threshold`]).
    ObjectIds(Vec<u64>),
    /// The ranked top-k ([`Decorator::TopK`]).
    Ranked(Vec<crate::ranking::RankedObject>),
}

impl QueryAnswer {
    /// The per-object probabilities, if this is a
    /// [`QueryAnswer::Probabilities`] answer.
    pub fn probabilities(&self) -> Option<&[ObjectProbability]> {
        match self {
            QueryAnswer::Probabilities(p) => Some(p),
            _ => None,
        }
    }

    /// The visit-count distributions, if this is a
    /// [`QueryAnswer::Distributions`] answer.
    pub fn distributions(&self) -> Option<&[ObjectKDistribution]> {
        match self {
            QueryAnswer::Distributions(d) => Some(d),
            _ => None,
        }
    }

    /// The accepted ids, if this is a [`QueryAnswer::ObjectIds`] answer.
    pub fn ids(&self) -> Option<&[u64]> {
        match self {
            QueryAnswer::ObjectIds(ids) => Some(ids),
            _ => None,
        }
    }

    /// The ranking, if this is a [`QueryAnswer::Ranked`] answer.
    pub fn ranked(&self) -> Option<&[crate::ranking::RankedObject]> {
        match self {
            QueryAnswer::Ranked(r) => Some(r),
            _ => None,
        }
    }

    /// Number of entries in the answer, whatever its variant.
    pub fn len(&self) -> usize {
        match self {
            QueryAnswer::Probabilities(p) => p.len(),
            QueryAnswer::Distributions(d) => d.len(),
            QueryAnswer::ObjectIds(ids) => ids.len(),
            QueryAnswer::Ranked(r) => r.len(),
        }
    }

    /// True when the answer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_space::LineSpace;

    #[test]
    fn window_construction_and_accessors() {
        let w = QueryWindow::from_states(10, [3usize, 4, 5], TimeSet::interval(2, 4)).unwrap();
        assert_eq!(w.t_start(), 2);
        assert_eq!(w.t_end(), 4);
        assert_eq!(w.num_times(), 3);
        assert!(w.time_in_window(3));
        assert!(!w.time_in_window(5));
        assert!(w.states().contains(4));
        assert!(!w.states().contains(6));
    }

    #[test]
    fn empty_windows_rejected() {
        assert_eq!(
            QueryWindow::from_states(10, [], TimeSet::interval(0, 1)),
            Err(QueryError::EmptySpatialWindow)
        );
        assert_eq!(
            QueryWindow::from_states(10, [1usize], TimeSet::empty()),
            Err(QueryError::EmptyTemporalWindow)
        );
    }

    #[test]
    fn from_region_resolves_states() {
        let line = LineSpace::new(20);
        let w = QueryWindow::from_region(&line, &Region::rect(4.2, -1.0, 7.9, 1.0), TimeSet::at(3))
            .unwrap();
        assert_eq!(w.states().to_indices(), vec![5, 6, 7]);
    }

    #[test]
    fn complement_flips_states() {
        let w = QueryWindow::from_states(5, [1usize, 2], TimeSet::at(0)).unwrap();
        let c = w.complement_states().unwrap();
        assert_eq!(c.states().to_indices(), vec![0, 3, 4]);
        assert_eq!(c.times(), w.times());
        // Complement of the full space is empty and must be rejected.
        let full = QueryWindow::from_states(3, [0usize, 1, 2], TimeSet::at(0)).unwrap();
        assert_eq!(full.complement_states(), Err(QueryError::EmptySpatialWindow));
    }

    #[test]
    fn k_distribution_helpers() {
        let d = ObjectKDistribution { object_id: 7, probabilities: vec![0.136, 0.672, 0.192] };
        assert!((d.prob_at_least_once() - 0.864).abs() < 1e-12);
        assert!((d.prob_always() - 0.192).abs() < 1e-12);
        assert!((d.expected_visits() - (0.672 + 2.0 * 0.192)).abs() < 1e-12);
        assert_eq!(d.prob_at_least(0), 1.0);
        assert!((d.prob_at_least(1) - 0.864).abs() < 1e-12);
        assert!((d.prob_at_least(2) - 0.192).abs() < 1e-12);
        assert_eq!(d.prob_at_least(3), 0.0);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let w = QueryWindow::from_states(4, [1usize, 2], TimeSet::interval(1, 3)).unwrap();
        let spec = Query::exists().window(w.clone()).build().unwrap();
        assert_eq!(spec.predicate(), Predicate::Exists);
        assert_eq!(spec.decorator(), Decorator::Probabilities);
        assert_eq!(spec.strategy(), Strategy::Auto);
        assert_eq!(spec.objects(), None);
        assert_eq!(spec.window(), &w);

        let spec = Query::forall()
            .window(w.clone())
            .threshold(0.25)
            .strategy(Strategy::ObjectBased)
            .objects([9u64, 3, 9, 1])
            .build()
            .unwrap();
        assert_eq!(spec.predicate(), Predicate::ForAll);
        assert_eq!(spec.decorator(), Decorator::Threshold(0.25));
        assert_eq!(spec.strategy(), Strategy::ObjectBased);
        assert_eq!(spec.objects(), Some(&[1u64, 3, 9][..]), "ids sorted and deduplicated");

        let spec = Query::ktimes(2).window(w).top_k(5).probabilities().build().unwrap();
        assert_eq!(spec.predicate(), Predicate::KTimes(2));
        assert_eq!(spec.decorator(), Decorator::Probabilities, "last decorator wins");
    }

    #[test]
    fn builder_validation() {
        let w = QueryWindow::from_states(4, [1usize], TimeSet::at(2)).unwrap();
        assert_eq!(Query::exists().build(), Err(QueryError::MissingWindow));
        assert_eq!(
            Query::exists().window(w.clone()).threshold(1.5).build(),
            Err(QueryError::InvalidThreshold { tau: 1.5 })
        );
        assert!(Query::exists().window(w.clone()).threshold(f64::NAN).build().is_err());
        assert!(Query::exists().window(w).threshold(0.0).build().is_ok());
    }

    #[test]
    fn answer_accessors_match_variants() {
        let probs =
            QueryAnswer::Probabilities(vec![ObjectProbability { object_id: 1, probability: 0.5 }]);
        assert_eq!(probs.probabilities().unwrap().len(), 1);
        assert!(probs.ids().is_none());
        assert!(probs.ranked().is_none());
        assert!(probs.distributions().is_none());
        assert_eq!(probs.len(), 1);
        assert!(!probs.is_empty());
        let ids = QueryAnswer::ObjectIds(vec![]);
        assert!(ids.is_empty());
        assert_eq!(ids.ids().unwrap().len(), 0);
    }
}
