//! # ust-core — querying uncertain spatio-temporal data
//!
//! A faithful, production-quality Rust implementation of
//! *Querying Uncertain Spatio-Temporal Data* (Emrich, Kriegel, Mamoulis,
//! Renz, Züfle — ICDE 2012).
//!
//! Uncertain moving objects are modeled as realizations of a first-order
//! homogeneous Markov chain over a discrete state space (Definition 1).
//! On top of that model the paper defines three probabilistic
//! spatio-temporal queries over a window `S▫ × T▫`:
//!
//! | Query | Definition | Module |
//! |---|---|---|
//! | PST∃Q | object inside `S▫` at *some* `t ∈ T▫` | [`engine::object_based`], [`engine::query_based`] |
//! | PST∀Q | object inside `S▫` at *all* `t ∈ T▫` | [`engine::forall`] |
//! | PSTkQ | inside `S▫` at exactly `k` times of `T▫` | [`engine::ktimes`] |
//!
//! Correct possible-worlds semantics comes from the absorbing-state
//! (`M−`/`M+`) construction of Section V, applied virtually by the engines.
//! Section VI (multiple observations / interpolation) lives in
//! [`multi_obs`] and [`smoothing`]; Section V-C (cluster pruning with
//! interval chains) in [`cluster`]. Baselines for the paper's evaluation —
//! Monte-Carlo sampling and the temporal-independence model — live in
//! [`engine::monte_carlo`] and [`engine::independent`], with
//! [`engine::exhaustive`] as the test oracle.
//!
//! ## Quick start
//!
//! ```
//! use ust_core::prelude::*;
//! use ust_markov::{CsrMatrix, MarkovChain};
//! use ust_space::TimeSet;
//!
//! // A 3-state chain (the paper's running example) and one object
//! // observed at state s2 at time 0.
//! let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
//!     vec![0.0, 0.0, 1.0],
//!     vec![0.6, 0.0, 0.4],
//!     vec![0.0, 0.8, 0.2],
//! ]).unwrap()).unwrap();
//! let mut db = TrajectoryDatabase::new(chain);
//! db.insert(UncertainObject::with_single_observation(
//!     1, Observation::exact(0, 3, 1).unwrap(),
//! )).unwrap();
//!
//! // P(object in {s1, s2} at some t ∈ [2, 3]) = 0.864: declare the query,
//! // let the planner pick the strategy, execute.
//! let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
//! let spec = Query::exists().window(window).build().unwrap();
//! let answer = QueryProcessor::new(&db).execute(&spec).unwrap();
//! assert!((answer.probabilities().unwrap()[0].probability - 0.864).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
// The workspace denies `unsafe_code`; this crate opts back in for the
// scoped-job lifetime erasure in `parallel` (one transmute, documented and
// bounded by `run_scoped`), with clippy-enforced safety comments.
#![allow(unsafe_code)]
pub mod cluster;
pub mod database;
pub mod engine;
pub mod error;
pub mod index;
pub mod multi_obs;
pub mod object;
pub mod observation;
pub mod parallel;
pub mod prefilter;
pub mod query;
pub mod ranking;
pub mod serving;
pub mod smoothing;
pub mod stats;
pub mod streaming;
pub mod threshold;

pub use database::{IngestOutcome, TrajectoryDatabase};
pub use engine::cache::{BackwardFieldCache, KTimesFieldCache};
pub use engine::{
    CostEstimate, EngineConfig, KernelMode, PrefilterMode, QueryPlan, QueryProcessor, QueryTicket,
};
pub use error::{QueryError, Result};
pub use index::SpatioTemporalIndex;
pub use object::UncertainObject;
pub use observation::Observation;
pub use parallel::PoolStats;
pub use query::{
    Decorator, ObjectKDistribution, ObjectProbability, Predicate, Query, QueryAnswer, QueryBuilder,
    QuerySpec, QueryWindow, Strategy,
};
pub use ranking::RankedObject;
pub use serving::{MetricsSnapshot, PlanMetrics, StreamMetrics};
pub use stats::EvalStats;
pub use streaming::Subscription;

/// Convenience prelude re-exporting the types most applications need.
pub mod prelude {
    pub use crate::database::{IngestOutcome, TrajectoryDatabase};
    pub use crate::engine::cache::{BackwardFieldCache, KTimesFieldCache};
    pub use crate::engine::{
        CostEstimate, EngineConfig, KernelMode, PrefilterMode, QueryPlan, QueryProcessor,
        QueryTicket,
    };
    pub use crate::error::{QueryError, Result};
    pub use crate::index::SpatioTemporalIndex;
    pub use crate::object::UncertainObject;
    pub use crate::observation::Observation;
    pub use crate::parallel::PoolStats;
    pub use crate::query::{
        Decorator, ObjectKDistribution, ObjectProbability, Predicate, Query, QueryAnswer,
        QueryBuilder, QuerySpec, QueryWindow, Strategy,
    };
    pub use crate::ranking::RankedObject;
    pub use crate::serving::{MetricsSnapshot, PlanMetrics, StreamMetrics};
    pub use crate::stats::EvalStats;
    pub use crate::streaming::Subscription;
}
