//! Long-lived worker-pool execution for every query driver.
//!
//! All of the paper's queries are embarrassingly parallel over objects —
//! each propagation touches only the shared read-only chain. Two layers
//! turn that observation into a serving architecture rather than a
//! per-query thread spawn:
//!
//! * [`WorkerPool`] — a fixed set of **long-lived worker threads**, one
//!   per-shard work queue each, created once (typically owned by a
//!   [`crate::engine::QueryProcessor`]) and reused by every query until the
//!   pool is dropped, at which point the workers drain their queues and
//!   shut down gracefully. This replaces the per-query
//!   `std::thread::scope` fan-out of earlier revisions: a query enqueues
//!   one job per shard and blocks until all shards report completion.
//! * [`ShardedExecutor`] — the sharding logic: it splits the database's
//!   object indices into contiguous chunks, gives each worker **its own
//!   [`Propagator`]** (and thus its own scratch accumulator and batch
//!   buffers), and stitches the per-object outputs back in database order,
//!   merging the per-worker [`EvalStats`] deterministically in shard order.
//!
//! The query-based drivers add a third ingredient, the **shared-field
//! plan** ([`SharedFieldPlan`] / [`ktimes::KTimesFieldPlan`]):
//! each `(model, window)` backward field is swept **exactly once** before
//! the fan-out — or fetched from a [`BackwardFieldCache`] behind a lock —
//! and the workers receive read-only [`std::sync::Arc`] views, so no worker
//! ever re-sweeps a field another worker (or a previous query) already
//! paid for. The deduplication is observable through
//! [`EvalStats::fields_shared`].
//!
//! Every [`crate::engine::QueryProcessor`] entry point routes through the
//! executor: with [`crate::engine::EngineConfig::num_threads`] `== 1` the
//! worker runs inline on the caller's thread (no queue hop), at higher
//! counts the shards run on the pool. Within each shard the drivers are
//! the same batched ones the sequential path uses, so parallel results are
//! **bit-for-bit identical** to sequential evaluation for ∃/∀/k, threshold
//! decisions and top-k rankings (asserted by the tests below and the
//! property suite).
//!
//! ## Admission control
//!
//! Detached jobs (the [`crate::engine::QueryProcessor::submit`] path) are
//! where overload lives: nothing blocks the submitter, so without a bound
//! a burst can queue arbitrary work. Each shard queue therefore carries
//! a configurable depth bound — [`WorkerPool::with_queue_depth`] — that
//! [`WorkerPool::try_spawn`] enforces by handing the job back instead of
//! enqueueing it ([`WorkerPool::spawn`] and the scoped path stay
//! unconditional: a scoped submitter is already blocked on its own
//! latch). Queue depths and the bound are observable through
//! [`WorkerPool::stats`] / [`PoolStats`]. Depth-bounded pools also shut
//! down like a server rather than a batch runner: jobs still queued when
//! the pool is dropped are **discarded** (their `Drop` impls run, which
//! is how abandoned query tickets get completed with
//! `QueryError::AsyncQueryDropped`), whereas unbounded [`WorkerPool::new`]
//! pools keep the PR 3 drain-to-completion semantics the process-wide
//! [`shared_pool`] relies on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::database::TrajectoryDatabase;
use crate::engine::cache::BackwardFieldCache;
use crate::engine::pipeline::Propagator;
use crate::engine::query_based::SharedFieldPlan;
use crate::engine::{ktimes, object_based, EngineConfig};
use crate::error::{QueryError, Result};
use crate::query::{ObjectKDistribution, ObjectProbability, QueryWindow};
use crate::ranking::{self, RankedObject};
use crate::stats::EvalStats;
use crate::threshold;

/// A unit of pool work. Jobs are type-erased to `'static`; soundness of the
/// erasure is the contract of [`WorkerPool::run_scoped`], which never
/// returns before every submitted job has finished.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One worker's work queue: jobs in FIFO order (tagged with their
/// [`JobHandle`] id so queued detached jobs can be cancelled) plus the
/// shutdown flag the pool raises on drop.
#[derive(Default)]
struct QueueState {
    jobs: VecDeque<(u64, Job)>,
    shutdown: bool,
}

impl std::fmt::Debug for QueueState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueState")
            .field("jobs", &self.jobs.len())
            .field("shutdown", &self.shutdown)
            .finish()
    }
}

/// A per-shard queue: its mutex-guarded state, the condvar the owning
/// worker parks on while the queue is empty, and the depth bound
/// [`ShardQueue::try_push`] enforces for detached jobs (`usize::MAX`
/// means unbounded).
#[derive(Debug)]
struct ShardQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    limit: usize,
}

impl Default for ShardQueue {
    fn default() -> ShardQueue {
        ShardQueue::with_limit(usize::MAX)
    }
}

impl ShardQueue {
    fn with_limit(limit: usize) -> ShardQueue {
        ShardQueue { state: Mutex::default(), ready: Condvar::new(), limit }
    }

    // Every lock below recovers from poisoning instead of panicking: the
    // queue and latch state stay consistent under unwinds (a panicking job
    // never holds these locks), and `run_scoped`'s soundness argument
    // requires the submit-to-wait window to be panic-free.
    fn push(&self, id: u64, job: Job) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.jobs.push_back((id, job));
        drop(state);
        self.ready.notify_one();
    }

    /// Enqueues the job unless the queue is at its depth bound or already
    /// shut down, handing the job back on refusal (backpressure, never
    /// blocking).
    fn try_push(&self, id: u64, job: Job) -> std::result::Result<(), Job> {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.shutdown || state.jobs.len() >= self.limit {
            return Err(job);
        }
        state.jobs.push_back((id, job));
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Removes a still-queued job by id — the dequeue half of best-effort
    /// cancellation. `None` once the worker has already popped it.
    fn remove(&self, id: u64) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let pos = state.jobs.iter().position(|(jid, _)| *jid == id)?;
        state.jobs.remove(pos).map(|(_, job)| job)
    }

    fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).jobs.len()
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.shutdown = true;
        drop(state);
        self.ready.notify_all();
    }
}

/// Completion tracking for one [`WorkerPool::run_scoped`] call: the caller
/// blocks until `remaining` hits zero; jobs that unwound are counted so the
/// panic can be re-raised on the submitting thread.
#[derive(Debug)]
struct Latch {
    state: Mutex<(usize, usize)>,
    done: Condvar,
}

impl Latch {
    fn new(jobs: usize) -> Latch {
        Latch { state: Mutex::new((jobs, 0)), done: Condvar::new() }
    }

    fn complete(&self, panicked: bool) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.0 -= 1;
        if panicked {
            state.1 += 1;
        }
        if state.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every job has completed; returns how many panicked.
    /// Must not panic before the last job has finished (`run_scoped`'s
    /// borrows are only released afterwards), hence the poison recovery.
    fn wait(&self) -> usize {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while state.0 > 0 {
            state = self.done.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.1
    }
}

/// Decrements the latch when the job ends — by running to completion *or*
/// by unwinding — so [`WorkerPool::run_scoped`] can never deadlock on a
/// panicking job.
struct CompletionGuard<'l> {
    latch: &'l Latch,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        self.latch.complete(std::thread::panicking());
    }
}

/// A fixed set of long-lived worker threads with one work queue per shard.
///
/// The pool is the process's reusable evaluation capacity: create it once
/// (a [`crate::engine::QueryProcessor`] with
/// [`EngineConfig::num_threads`] `> 1` owns one; ad-hoc callers share the
/// process-wide pool of [`shared_pool`]) and submit every query's shard
/// jobs to the same threads. Shard `i` of a run always lands on worker
/// `i % num_threads`, so repeated queries over the same database keep each
/// worker on the same contiguous object range — the precondition for the
/// NUMA/affinity work ROADMAP.md names as the next step.
///
/// Dropping the pool shuts it down and joins the worker threads. What
/// happens to jobs still queued at that point depends on the constructor:
/// unbounded [`WorkerPool::new`] pools drain them to completion (the PR 3
/// semantics the process-wide [`shared_pool`] relies on), depth-bounded
/// [`WorkerPool::with_queue_depth`] pools **discard** them — a serving
/// pool shutting down mid-burst sheds its backlog, and dropping the job
/// boxes runs their `Drop` impls, which is what completes abandoned
/// query tickets with `QueryError::AsyncQueryDropped` instead of leaving
/// their waiters blocked forever. A job that panics is caught on the
/// worker (the thread survives for the next query) and the panic is
/// re-raised on the thread that submitted the batch.
pub struct WorkerPool {
    queues: Arc<Vec<ShardQueue>>,
    handles: Vec<JoinHandle<()>>,
    next_job: AtomicU64,
    max_queue_depth: Option<usize>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("num_threads", &self.num_threads())
            .field("max_queue_depth", &self.max_queue_depth)
            .finish()
    }
}

/// An instantaneous view of a [`WorkerPool`]'s queues, from
/// [`WorkerPool::stats`]. Depths move as workers pop jobs; treat the
/// numbers as a load signal, not a reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads (= shard queues) in the pool.
    pub num_threads: usize,
    /// Jobs currently queued across all shards (excluding jobs already
    /// running on a worker).
    pub queued_jobs: usize,
    /// Per-shard queue depths, indexed by shard.
    pub shard_depths: Vec<usize>,
    /// The per-shard depth bound detached spawns are held to, if the pool
    /// was built with one.
    pub max_queue_depth: Option<usize>,
}

/// Identifies one detached job on its pool — returned by
/// [`WorkerPool::spawn`] / [`WorkerPool::try_spawn`] and accepted by
/// [`WorkerPool::cancel_queued`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobHandle {
    shard: usize,
    id: u64,
}

impl WorkerPool {
    /// Spawns a pool of `num_threads` workers (clamped to at least 1), each
    /// owning one unbounded work queue; queued jobs are drained to
    /// completion on drop.
    pub fn new(num_threads: usize) -> WorkerPool {
        WorkerPool::build(num_threads, None)
    }

    /// As [`WorkerPool::new`], but every shard queue refuses detached
    /// [`WorkerPool::try_spawn`] jobs beyond `max_queue_depth` pending
    /// entries (`0` means unbounded), and jobs still queued when the pool
    /// is dropped are discarded rather than drained — the serving
    /// configuration [`crate::engine::QueryProcessor`] uses for the pool
    /// it owns.
    pub fn with_queue_depth(num_threads: usize, max_queue_depth: usize) -> WorkerPool {
        WorkerPool::build(num_threads, Some(max_queue_depth))
    }

    fn build(num_threads: usize, depth: Option<usize>) -> WorkerPool {
        let num_threads = num_threads.max(1);
        let limit = match depth {
            Some(0) | None => usize::MAX,
            Some(d) => d,
        };
        let discard_on_shutdown = depth.is_some();
        let queues: Arc<Vec<ShardQueue>> =
            Arc::new((0..num_threads).map(|_| ShardQueue::with_limit(limit)).collect());
        let handles = (0..num_threads)
            .map(|i| {
                let queues = Arc::clone(&queues);
                std::thread::Builder::new()
                    .name(format!("ust-worker-{i}"))
                    .spawn(move || worker_loop(&queues[i], discard_on_shutdown))
                    // lint: allow(panicking-call-in-lib) — OS thread spawn at pool
                    // construction: without workers the pool cannot exist, and a
                    // spawn failure means the process is already resource-starved;
                    // there is no degraded mode for a caller to fall back to.
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            queues,
            handles,
            next_job: AtomicU64::new(0),
            max_queue_depth: depth.filter(|&d| d > 0),
        }
    }

    /// The number of worker threads (and shard queues).
    pub fn num_threads(&self) -> usize {
        self.queues.len()
    }

    /// The per-shard depth bound detached spawns are held to, if any.
    pub fn max_queue_depth(&self) -> Option<usize> {
        self.max_queue_depth
    }

    /// Jobs currently queued (not yet running) on shard
    /// `shard % num_threads`.
    pub fn shard_depth(&self, shard: usize) -> usize {
        self.queues[shard % self.queues.len()].depth()
    }

    /// A snapshot of every queue's depth plus the pool's shape.
    pub fn stats(&self) -> PoolStats {
        let shard_depths: Vec<usize> = self.queues.iter().map(ShardQueue::depth).collect();
        PoolStats {
            num_threads: self.queues.len(),
            queued_jobs: shard_depths.iter().sum(),
            shard_depths,
            max_queue_depth: self.max_queue_depth,
        }
    }

    /// Runs every job on the pool and blocks until all of them have
    /// finished. Job `i` goes to shard queue `i % num_threads`.
    ///
    /// Jobs may borrow from the caller's stack (the `'env` lifetime): the
    /// call does not return before every job has completed, which is what
    /// makes the internal lifetime erasure sound. If any job panics, the
    /// panic is re-raised here after the whole batch has settled.
    pub fn run_scoped<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        let latch = Latch::new(jobs.len());
        let latch_ref: &Latch = &latch;
        for (i, job) in jobs.into_iter().enumerate() {
            let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                // The guard decrements the latch even if `job` unwinds.
                let _guard = CompletionGuard { latch: latch_ref };
                job();
            });
            // SAFETY: `run_scoped` blocks on the latch below until every
            // job (including this one) has run to completion or unwound,
            // so no borrow captured by `wrapped` (the caller's `'env` data
            // and the latch local) outlives this call.
            let erased: Job = unsafe { erase_job_lifetime(wrapped) };
            let id = self.next_job.fetch_add(1, Ordering::Relaxed);
            // Scoped jobs bypass the depth bound: the submitter is about
            // to block on the latch, so the backlog is already bounded by
            // the callers themselves.
            self.queues[i % self.queues.len()].push(id, erased);
        }
        let panicked = latch.wait();
        assert!(panicked == 0, "{panicked} worker-pool job(s) panicked");
    }

    /// Enqueues one detached `'static` job on shard queue
    /// `shard % num_threads` and returns immediately — ignoring any depth
    /// bound. Prefer [`WorkerPool::try_spawn`] for admission-controlled
    /// submission.
    ///
    /// Unlike [`WorkerPool::run_scoped`] nothing blocks: the job must own
    /// everything it touches (completion is typically signalled through a
    /// shared `Arc` latch). A panicking job is caught on the worker;
    /// detached submitters that need to observe it should catch it inside
    /// the job (the pool has no caller to re-raise it on). See the type
    /// docs for what happens to jobs still queued when the pool drops.
    pub fn spawn(&self, shard: usize, job: Box<dyn FnOnce() + Send + 'static>) -> JobHandle {
        let shard = shard % self.queues.len();
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.queues[shard].push(id, job);
        JobHandle { shard, id }
    }

    /// As [`WorkerPool::spawn`], but refuses the job — handing it back
    /// instead of enqueueing — when shard queue `shard % num_threads` is
    /// at its depth bound (or the pool is shutting down). The
    /// backpressure primitive behind
    /// [`crate::engine::QueryProcessor::submit`]'s `QueueFull` rejection:
    /// the caller is never blocked either way.
    pub fn try_spawn(
        &self,
        shard: usize,
        job: Box<dyn FnOnce() + Send + 'static>,
    ) -> std::result::Result<JobHandle, Box<dyn FnOnce() + Send + 'static>> {
        let shard = shard % self.queues.len();
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.queues[shard].try_push(id, job)?;
        Ok(JobHandle { shard, id })
    }

    /// Removes a detached job from its queue if the worker has not popped
    /// it yet, dropping the job box (whose `Drop` impls observe the
    /// cancellation). Returns `false` once the job already started — the
    /// running job can only be interrupted cooperatively.
    pub fn cancel_queued(&self, handle: JobHandle) -> bool {
        self.queues[handle.shard].remove(handle.id).is_some()
    }

    /// Closes every queue without joining the workers — after this,
    /// discard-mode workers shed their backlog and exit. Test hook for
    /// exercising the shutdown paths deterministically.
    #[cfg(test)]
    pub(crate) fn close_queues(&self) {
        for queue in self.queues.iter() {
            queue.close();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for queue in self.queues.iter() {
            queue.close();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // Discard-mode workers shed their queues before exiting; anything
        // still queued here (e.g. spawned after shutdown began) is
        // dropped with the queues themselves when the last Arc goes.
    }
}

/// Erases a job's borrow lifetime so it can cross into the long-lived
/// queues.
///
/// # Safety
///
/// The caller must not let the erased job outlive the borrows it captures —
/// [`WorkerPool::run_scoped`] guarantees this by blocking until every
/// submitted job has finished. The two trait-object types differ only in
/// their lifetime bound, so the transmute does not change layout.
unsafe fn erase_job_lifetime<'a>(job: Box<dyn FnOnce() + Send + 'a>) -> Job {
    // SAFETY: the lifetime contract is deferred to the caller (see
    // `# Safety` above); the transmute itself only widens the lifetime
    // bound between two otherwise identical trait-object types, so the
    // layout is unchanged.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Job>(job) }
}

/// The loop each worker thread runs: pop a job or park on the condvar;
/// exit once the queue is closed. On shutdown a drain-mode worker
/// (`discard_on_shutdown == false`) runs the remaining jobs to
/// completion, a discard-mode worker drops them unrun — outside the
/// queue lock, since dropping a detached job may run ticket-completion
/// logic that takes other locks.
fn worker_loop(queue: &ShardQueue, discard_on_shutdown: bool) {
    loop {
        let job = {
            let mut state = queue.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if state.shutdown && discard_on_shutdown {
                    let backlog: Vec<(u64, Job)> = state.jobs.drain(..).collect();
                    drop(state);
                    drop(backlog);
                    return;
                }
                if let Some((_, job)) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = queue.ready.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // A panicking job must not take the worker down with it — catch
        // the unwind (the submitter re-raises it via the latch) and move
        // on to the next job.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

/// The process-wide shared pool used by the free `*_parallel` functions.
static SHARED_POOL: Mutex<Option<Arc<WorkerPool>>> = Mutex::new(None);

/// A process-wide [`WorkerPool`] with at least `min_threads` workers.
///
/// The pool is created on first use and grown (by replacement; in-flight
/// queries keep the previous pool alive until they finish) when a caller
/// asks for more workers than it has. Callers that want an isolated pool —
/// one per [`crate::engine::QueryProcessor`], differently sized pools side
/// by side — construct [`WorkerPool::new`] directly instead.
pub fn shared_pool(min_threads: usize) -> Arc<WorkerPool> {
    let min_threads = min_threads.max(1);
    let mut guard = SHARED_POOL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(pool) = guard.as_ref() {
        if pool.num_threads() >= min_threads {
            return Arc::clone(pool);
        }
    }
    // lint: allow(lock-held-across-blocking) — the registry guard must be
    // held across pool construction for exactly-once initialization; the
    // blocking inside is `thread::spawn` of workers that never touch
    // SHARED_POOL, so no thread can wait on this guard while it waits on
    // them.
    let pool = Arc::new(WorkerPool::new(min_threads));
    *guard = Some(Arc::clone(&pool));
    pool
}

/// Shards object work across the workers of a [`WorkerPool`].
///
/// The executor is a cheap handle (an `Arc` to the pool plus a thread
/// count); construct one per query or keep one around — the threads behind
/// it live in the pool either way.
#[derive(Debug, Clone)]
pub struct ShardedExecutor {
    num_threads: usize,
    pool: Option<Arc<WorkerPool>>,
}

impl ShardedExecutor {
    /// An executor over `num_threads` workers of the process-wide
    /// [`shared_pool`] (clamped to at least 1; `1` runs inline without
    /// touching the pool).
    pub fn new(num_threads: usize) -> ShardedExecutor {
        let num_threads = num_threads.max(1);
        let pool = (num_threads > 1).then(|| shared_pool(num_threads));
        ShardedExecutor { num_threads, pool }
    }

    /// An executor sized from [`EngineConfig::num_threads`], on the
    /// process-wide shared pool.
    pub fn from_config(config: &EngineConfig) -> ShardedExecutor {
        ShardedExecutor::new(config.effective_num_threads())
    }

    /// A strictly sequential executor (inline on the caller's thread).
    pub fn sequential() -> ShardedExecutor {
        ShardedExecutor { num_threads: 1, pool: None }
    }

    /// An executor over all workers of a specific pool — the constructor
    /// [`crate::engine::QueryProcessor`] uses for the pool it owns.
    pub fn on_pool(pool: Arc<WorkerPool>) -> ShardedExecutor {
        ShardedExecutor { num_threads: pool.num_threads(), pool: Some(pool) }
    }

    /// The worker count.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `worker` over contiguous shards of the database's object
    /// indices and concatenates the outputs in shard order.
    ///
    /// Each worker owns one [`Propagator`] over a private [`EvalStats`]
    /// that is merged into `stats` afterwards (deterministically, in shard
    /// order — as is the first error, should any shard fail). Workers that
    /// return one output per index therefore produce the same vector the
    /// sequential driver would; reduction-style workers (top-k candidates)
    /// return fewer and the caller merges.
    pub fn run<T, F>(
        &self,
        db: &TrajectoryDatabase,
        config: &EngineConfig,
        stats: &mut EvalStats,
        worker: F,
    ) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut Propagator<'_>, &[usize]) -> Result<Vec<T>> + Sync,
    {
        let indices: Vec<usize> = (0..db.len()).collect();
        self.run_on(&indices, config, stats, worker)
    }

    /// As [`ShardedExecutor::run`], over an explicit set of database
    /// object indices — the fan-out of subset-restricted query specs.
    /// Shards are contiguous chunks of `indices`; outputs come back
    /// concatenated in `indices` order.
    pub fn run_on<T, F>(
        &self,
        indices: &[usize],
        config: &EngineConfig,
        stats: &mut EvalStats,
        worker: F,
    ) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut Propagator<'_>, &[usize]) -> Result<Vec<T>> + Sync,
    {
        let n = indices.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let threads = self.num_threads.min(n);
        let pool = match (&self.pool, threads) {
            (Some(pool), 2..) => pool,
            _ => {
                let mut pipeline = Propagator::new(config, stats);
                return worker(&mut pipeline, indices);
            }
        };

        let chunk_size = n.div_ceil(threads);
        type WorkerOutput<T> = Result<(Vec<T>, EvalStats)>;
        let shards: Vec<&[usize]> = indices.chunks(chunk_size).collect();
        let mut slots: Vec<Option<WorkerOutput<T>>> = (0..shards.len()).map(|_| None).collect();
        let worker = &worker;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .zip(shards)
            .map(|(slot, shard)| {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let mut local_stats = EvalStats::new();
                    let mut pipeline = Propagator::new(config, &mut local_stats);
                    *slot = Some(worker(&mut pipeline, shard).map(|out| (out, local_stats)));
                });
                job
            })
            .collect();
        pool.run_scoped(jobs);

        let mut out = Vec::with_capacity(n);
        for slot in slots {
            let (shard_out, local_stats) =
                slot.ok_or(QueryError::internal("run_scoped completes every job"))??;
            stats.merge(&local_stats);
            out.extend(shard_out);
        }
        Ok(out)
    }
}

/// PST∃Q for every object, object-based, sharded over the executor's
/// workers. Identical to [`object_based::evaluate`] (same order, same
/// bits); `stats` aggregates the per-worker counters.
pub fn evaluate_exists_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    executor.run(db, config, stats, |pipeline, indices| {
        object_based::exists_batched(pipeline, db, indices, window)
    })
}

/// As [`evaluate_exists_on`], on the process-wide shared pool sized from
/// [`EngineConfig::num_threads`].
pub fn evaluate_exists_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    evaluate_exists_on(&ShardedExecutor::from_config(config), db, window, config, stats)
}

/// The shared answer fan-out of the query-based ∃ drivers — including the
/// planner's dispatch over explicit index subsets: one dot product per
/// object against the plan's read-only fields, sharded. This is the one
/// copy of the bit-identity-critical loop (object lookup, field lookup,
/// `object_probability`, evaluation accounting) every QB ∃ path runs.
pub(crate) fn answer_exists_plan_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    indices: &[usize],
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
    plan: &SharedFieldPlan,
) -> Result<Vec<ObjectProbability>> {
    executor.run_on(indices, config, stats, |pipeline, idxs| {
        let mut out = Vec::with_capacity(idxs.len());
        for &idx in idxs {
            let object = db
                .object(idx)
                .ok_or(QueryError::internal("the executor shards validated indices"))?;
            let field = plan.field(object.model()).ok_or(QueryError::internal(
                "the shared plan holds one field per populated model",
            ))?;
            let probability = field
                .object_probability(object, window)
                .ok_or(QueryError::internal("the shared plan requested anchor snapshots"))?;
            pipeline.stats().objects_evaluated += 1;
            out.push(ObjectProbability { object_id: object.id(), probability });
        }
        Ok(out)
    })
}

/// The k-times analogue of [`answer_exists_plan_on`]: one
/// `(|T▫|+1)`-level dot product per object against the plan's read-only
/// level fields, sharded over an explicit index set.
pub(crate) fn answer_ktimes_plan_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    indices: &[usize],
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
    plan: &ktimes::KTimesFieldPlan,
) -> Result<Vec<ObjectKDistribution>> {
    executor.run_on(indices, config, stats, |pipeline, idxs| {
        let mut out = Vec::with_capacity(idxs.len());
        for &idx in idxs {
            let object = db
                .object(idx)
                .ok_or(QueryError::internal("the executor shards validated indices"))?;
            let field = plan.field(object.model()).ok_or(QueryError::internal(
                "the shared plan holds one field per populated model",
            ))?;
            let probabilities = field
                .object_distribution(object, window)
                .ok_or(QueryError::internal("the shared plan requested anchor snapshots"))?;
            pipeline.stats().objects_evaluated += 1;
            out.push(ObjectKDistribution { object_id: object.id(), probabilities });
        }
        Ok(out)
    })
}

/// PST∃Q for every object, query-based, sharded. The backward sweep — the
/// dominant, inherently sequential cost — runs **once per model** in the
/// [`SharedFieldPlan`] stage before the fan-out; the workers then share the
/// read-only `Arc` fields and shard only the per-object dot products, so no
/// field is swept more than once regardless of the worker count. Results
/// match [`crate::engine::query_based::evaluate`] bit for bit.
pub fn evaluate_exists_qb_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let plan = SharedFieldPlan::prepare(db, window, config, stats)?;
    stats.fields_shared += plan.num_fields() as u64;
    let indices: Vec<usize> = (0..db.len()).collect();
    answer_exists_plan_on(executor, db, &indices, window, config, stats, &plan)
}

/// As [`evaluate_exists_qb_on`], on the process-wide shared pool.
pub fn evaluate_exists_qb_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    evaluate_exists_qb_on(&ShardedExecutor::from_config(config), db, window, config, stats)
}

/// As [`evaluate_exists_qb_on`], preparing the shared-field plan through a
/// lock-guarded [`BackwardFieldCache`]: a repeated or overlapping window
/// reuses the cached suffix sweep, a fresh one is swept once and cached,
/// and either way the workers receive read-only `Arc` views. Bit-for-bit
/// identical to the uncached path.
pub fn evaluate_exists_qb_cached_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    cache: &Mutex<BackwardFieldCache>,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let plan = SharedFieldPlan::prepare_with_cache(db, window, config, cache, stats)?;
    stats.fields_shared += plan.num_fields() as u64;
    let indices: Vec<usize> = (0..db.len()).collect();
    answer_exists_plan_on(executor, db, &indices, window, config, stats, &plan)
}

/// PST∀Q for every object, object-based, sharded (complement reduction on
/// the sharded ∃ driver).
pub fn evaluate_forall_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let complement = window.complement_states()?;
    let mut results = evaluate_exists_on(executor, db, &complement, config, stats)?;
    crate::engine::forall::complement_probabilities(&mut results);
    Ok(results)
}

/// As [`evaluate_forall_on`], on the process-wide shared pool.
pub fn evaluate_forall_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    evaluate_forall_on(&ShardedExecutor::from_config(config), db, window, config, stats)
}

/// PST∀Q for every object, query-based, sharded.
pub fn evaluate_forall_qb_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let complement = window.complement_states()?;
    let mut results = evaluate_exists_qb_on(executor, db, &complement, config, stats)?;
    crate::engine::forall::complement_probabilities(&mut results);
    Ok(results)
}

/// As [`evaluate_forall_qb_on`], on the process-wide shared pool.
pub fn evaluate_forall_qb_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    evaluate_forall_qb_on(&ShardedExecutor::from_config(config), db, window, config, stats)
}

/// PSTkQ for every object, object-based (`C(t)` algorithm), sharded.
pub fn evaluate_ktimes_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectKDistribution>> {
    executor.run(db, config, stats, |pipeline, indices| {
        ktimes::ktimes_batched(pipeline, db, indices, window)
    })
}

/// As [`evaluate_ktimes_on`], on the process-wide shared pool.
pub fn evaluate_ktimes_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectKDistribution>> {
    evaluate_ktimes_on(&ShardedExecutor::from_config(config), db, window, config, stats)
}

/// PSTkQ for every object, query-based, sharded. As with
/// [`evaluate_exists_qb_on`], the per-model backward level sweeps run once
/// in the [`ktimes::KTimesFieldPlan`] stage and the workers shard the
/// per-object dot products against the shared read-only fields.
pub fn evaluate_ktimes_qb_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectKDistribution>> {
    let plan = ktimes::KTimesFieldPlan::prepare(db, window, stats)?;
    stats.fields_shared += plan.num_fields() as u64;
    let indices: Vec<usize> = (0..db.len()).collect();
    answer_ktimes_plan_on(executor, db, &indices, window, config, stats, &plan)
}

/// As [`evaluate_ktimes_qb_on`], on the process-wide shared pool.
pub fn evaluate_ktimes_qb_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectKDistribution>> {
    evaluate_ktimes_qb_on(&ShardedExecutor::from_config(config), db, window, config, stats)
}

/// Thresholded PST∃Q over the whole database, sharded: each worker runs the
/// batched bound-based driver on its shard (building its own reachability
/// pruners). The accepted id list matches [`threshold::threshold_query`]
/// exactly.
pub fn threshold_query_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    tau: f64,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<u64>> {
    let outcomes = executor.run(db, config, stats, |pipeline, indices| {
        threshold::threshold_batched(pipeline, db, indices, window, tau)
    })?;
    outcomes
        .into_iter()
        .enumerate()
        .filter(|(_, o)| o.qualifies)
        .map(|(idx, _)| {
            db.object(idx)
                .map(|o| o.id())
                .ok_or(QueryError::internal("each outcome aligns with a database object"))
        })
        .collect()
}

/// As [`threshold_query_on`], on the process-wide shared pool.
pub fn threshold_query_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    tau: f64,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<u64>> {
    threshold_query_on(&ShardedExecutor::from_config(config), db, window, tau, config, stats)
}

/// Thresholded PST∃Q answered from the query-based shared-field plan: one
/// locked cache lookup (or fresh sweep) per `(model, window)`, then sharded
/// dot products and the `≥ τ` filter. Exact, and bit-for-bit identical to
/// [`threshold::threshold_query_cached`] run sequentially.
pub fn threshold_query_cached_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    tau: f64,
    config: &EngineConfig,
    cache: &Mutex<BackwardFieldCache>,
    stats: &mut EvalStats,
) -> Result<Vec<u64>> {
    let all = evaluate_exists_qb_cached_on(executor, db, window, config, cache, stats)?;
    Ok(all.into_iter().filter(|r| r.probability >= tau).map(|r| r.object_id).collect())
}

/// Top-k most likely window intersectors, object-based with pruning,
/// sharded: each worker ranks its shard (pruning against its local k-th
/// bound — conservative, so no global candidate is lost) and the shard
/// lists are merged. The final ranking matches
/// [`ranking::topk_object_based_pruned`] exactly.
pub fn topk_object_based_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    k: usize,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<RankedObject>> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let candidates = executor.run(db, config, stats, |pipeline, indices| {
        ranking::topk_batched(pipeline, db, indices, window, k)
    })?;
    let mut best: Vec<RankedObject> = Vec::with_capacity(k + 1);
    for candidate in candidates {
        ranking::insert_ranked(&mut best, candidate, k);
    }
    Ok(best)
}

/// As [`topk_object_based_on`], on the process-wide shared pool.
pub fn topk_object_based_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    k: usize,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<RankedObject>> {
    topk_object_based_on(&ShardedExecutor::from_config(config), db, window, k, config, stats)
}

/// Top-k via the query-based engine, sharded over the probability
/// computation (one shared-field sweep per model up front). Matches
/// [`ranking::topk_query_based`] exactly.
pub fn topk_query_based_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    k: usize,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<RankedObject>> {
    let all = evaluate_exists_qb_on(executor, db, window, config, stats)?;
    Ok(ranking::select_topk(all, k))
}

/// As [`topk_query_based_on`], on the process-wide shared pool.
pub fn topk_query_based_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    k: usize,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<RankedObject>> {
    topk_query_based_on(&ShardedExecutor::from_config(config), db, window, k, config, stats)
}

/// As [`topk_query_based_on`], preparing the shared-field plan through a
/// lock-guarded [`BackwardFieldCache`]. Bit-for-bit identical to the
/// uncached ranking.
pub fn topk_query_based_cached_on(
    executor: &ShardedExecutor,
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    k: usize,
    config: &EngineConfig,
    cache: &Mutex<BackwardFieldCache>,
    stats: &mut EvalStats,
) -> Result<Vec<RankedObject>> {
    let all = evaluate_exists_qb_cached_on(executor, db, window, config, cache, stats)?;
    Ok(ranking::select_topk(all, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{forall, query_based};
    use crate::object::UncertainObject;
    use crate::observation::Observation;
    use ust_markov::testutil;
    use ust_markov::MarkovChain;
    use ust_space::TimeSet;

    fn random_db(seed: u64, n_states: usize, n_objects: usize) -> TrajectoryDatabase {
        let chain = testutil::random_chain(seed, n_states, 4);
        let mut rng = testutil::rng(seed + 1);
        let mut db = TrajectoryDatabase::new(chain);
        for i in 0..n_objects {
            let dist = testutil::random_distribution(&mut rng, n_states, 3);
            let anchor_time = (i % 3) as u32;
            db.insert(UncertainObject::with_single_observation(
                i as u64,
                Observation::uncertain(anchor_time, dist).unwrap(),
            ))
            .unwrap();
        }
        db
    }

    fn window(n: usize) -> QueryWindow {
        QueryWindow::from_states(n, 10usize..=15, TimeSet::interval(4, 7)).unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = random_db(17, 60, 37);
        let window = window(60);
        let config = EngineConfig::default();
        let sequential =
            object_based::evaluate(&db, &window, &config, &mut EvalStats::new()).unwrap();
        for threads in [1usize, 2, 3, 8, 64] {
            let mut stats = EvalStats::new();
            let parallel = evaluate_exists_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            assert_eq!(parallel.len(), sequential.len());
            for (a, b) in parallel.iter().zip(&sequential) {
                assert_eq!(a.object_id, b.object_id);
                assert_eq!(a.probability.to_bits(), b.probability.to_bits(), "threads={threads}");
            }
            assert_eq!(stats.objects_evaluated, db.len() as u64);
        }
    }

    #[test]
    fn all_drivers_match_sequential_bit_for_bit() {
        let db = random_db(23, 60, 29);
        let window = window(60);
        let config = EngineConfig::default().with_batch_size(7);
        let mut seq = EvalStats::new();
        let exists_qb = query_based::evaluate(&db, &window, &config, &mut seq).unwrap();
        let forall_ob = forall::evaluate_object_based(&db, &window, &config, &mut seq).unwrap();
        let forall_qb = forall::evaluate_query_based(&db, &window, &config, &mut seq).unwrap();
        let ktimes_ob = ktimes::evaluate_object_based(&db, &window, &config, &mut seq).unwrap();
        let ktimes_qb = ktimes::evaluate_query_based(&db, &window, &config, &mut seq).unwrap();
        let accepted = threshold::threshold_query(&db, &window, 0.4, &config, &mut seq).unwrap();
        let topk_ob =
            ranking::topk_object_based_pruned(&db, &window, 5, &config, &mut seq).unwrap();
        let topk_qb = ranking::topk_query_based(&db, &window, 5, &config, &mut seq).unwrap();

        for threads in [2usize, 5, 16] {
            let mut stats = EvalStats::new();
            let p = evaluate_exists_qb_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&exists_qb) {
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let p = evaluate_forall_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&forall_ob) {
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let p = evaluate_forall_qb_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&forall_qb) {
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let p = evaluate_ktimes_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&ktimes_ob) {
                assert_eq!(a.object_id, b.object_id);
                for (x, y) in a.probabilities.iter().zip(&b.probabilities) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            let p = evaluate_ktimes_qb_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&ktimes_qb) {
                for (x, y) in a.probabilities.iter().zip(&b.probabilities) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            let p = threshold_query_parallel(
                &db,
                &window,
                0.4,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            assert_eq!(p, accepted, "threads={threads}");
            let p = topk_object_based_parallel(
                &db,
                &window,
                5,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            assert_eq!(p.len(), topk_ob.len());
            for (a, b) in p.iter().zip(&topk_ob) {
                assert_eq!(a.object_id, b.object_id);
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let p = topk_query_based_parallel(
                &db,
                &window,
                5,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&topk_qb) {
                assert_eq!(a.object_id, b.object_id);
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
        }
    }

    #[test]
    fn pool_reuse_across_queries_and_graceful_shutdown() {
        let db = random_db(29, 40, 23);
        let window = window(40);
        let config = EngineConfig::default().with_num_threads(4);
        let pool = Arc::new(WorkerPool::new(4));
        assert_eq!(pool.num_threads(), 4);
        let executor = ShardedExecutor::on_pool(Arc::clone(&pool));
        let sequential =
            object_based::evaluate(&db, &window, &config, &mut EvalStats::new()).unwrap();
        // Many queries over the same pool: no respawn, identical bits.
        for _ in 0..3 {
            let out = evaluate_exists_on(&executor, &db, &window, &config, &mut EvalStats::new())
                .unwrap();
            for (a, b) in out.iter().zip(&sequential) {
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
        }
        drop(executor);
        // Dropping the last handle joins the workers without hanging.
        drop(pool);
    }

    #[test]
    fn pool_propagates_job_panics_and_survives_them() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_scoped(vec![
                Box::new(|| panic!("boom")) as Box<dyn FnOnce() + Send + '_>,
                Box::new(|| {}),
            ]);
        }));
        assert!(caught.is_err(), "the job panic must surface on the submitter");
        // The workers survived the panic and still run jobs.
        let flag = std::sync::atomic::AtomicUsize::new(0);
        pool.run_scoped(
            (0..4)
                .map(|_| {
                    let flag = &flag;
                    Box::new(move || {
                        flag.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect(),
        );
        assert_eq!(flag.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    fn shared_pool_grows_monotonically() {
        // Other tests in this binary grow the process-wide pool
        // concurrently, so only monotonicity can be asserted exactly.
        let small = shared_pool(2);
        assert!(small.num_threads() >= 2);
        let big = shared_pool(small.num_threads() + 1);
        assert!(big.num_threads() > small.num_threads());
        // A smaller request reuses a grown pool instead of shrinking it.
        let again = shared_pool(1);
        assert!(again.num_threads() >= big.num_threads());
    }

    #[test]
    fn cached_drivers_match_uncached_bit_for_bit() {
        let db = random_db(31, 50, 19);
        let window = window(50);
        let config = EngineConfig::default().with_num_threads(3);
        let executor = ShardedExecutor::from_config(&config);
        let cache = Mutex::new(BackwardFieldCache::new(8));
        let uncached =
            evaluate_exists_qb_on(&executor, &db, &window, &config, &mut EvalStats::new()).unwrap();
        // Twice through the cache: a miss-then-sweep pass and a pure-hit
        // pass must both reproduce the uncached bits.
        for pass in 0..2 {
            let mut stats = EvalStats::new();
            let cached =
                evaluate_exists_qb_cached_on(&executor, &db, &window, &config, &cache, &mut stats)
                    .unwrap();
            for (a, b) in cached.iter().zip(&uncached) {
                assert_eq!(a.probability.to_bits(), b.probability.to_bits(), "pass={pass}");
            }
            if pass == 1 {
                assert_eq!(stats.cache_misses, 0, "second pass must be a pure hit");
                assert_eq!(stats.backward_steps, 0);
            }
            assert_eq!(stats.fields_shared, 1, "one model, one shared field");
        }
        let mut stats = EvalStats::new();
        let accepted_cached =
            threshold_query_cached_on(&executor, &db, &window, 0.4, &config, &cache, &mut stats)
                .unwrap();
        let accepted =
            threshold_query_parallel(&db, &window, 0.4, &config, &mut EvalStats::new()).unwrap();
        assert_eq!(accepted_cached, accepted);
        assert_eq!(stats.backward_steps, 0, "the threshold run rides the cached field");
        let topk_cached = topk_query_based_cached_on(
            &executor,
            &db,
            &window,
            5,
            &config,
            &cache,
            &mut EvalStats::new(),
        )
        .unwrap();
        let topk =
            topk_query_based_parallel(&db, &window, 5, &config, &mut EvalStats::new()).unwrap();
        for (a, b) in topk_cached.iter().zip(&topk) {
            assert_eq!(a.object_id, b.object_id);
            assert_eq!(a.probability.to_bits(), b.probability.to_bits());
        }
    }

    #[test]
    fn qb_sweeps_each_field_once_regardless_of_threads() {
        let db = random_db(37, 50, 24);
        let window = window(50);
        let mut baseline = EvalStats::new();
        evaluate_exists_qb_parallel(
            &db,
            &window,
            &EngineConfig::default().with_num_threads(1),
            &mut baseline,
        )
        .unwrap();
        assert!(baseline.backward_steps > 0);
        for threads in [2usize, 4, 8] {
            let mut stats = EvalStats::new();
            evaluate_exists_qb_parallel(
                &db,
                &window,
                &EngineConfig::default().with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            assert_eq!(
                stats.backward_steps, baseline.backward_steps,
                "threads={threads}: the shared-field plan must not re-sweep per worker"
            );
            assert_eq!(stats.fields_shared, baseline.fields_shared);
        }
    }

    #[test]
    fn empty_database() {
        let db = random_db(5, 10, 0);
        let window = QueryWindow::from_states(10, [0usize], TimeSet::at(1)).unwrap();
        let out = evaluate_exists_parallel(
            &db,
            &window,
            &EngineConfig::default().with_num_threads(4),
            &mut EvalStats::new(),
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn validation_errors_surface_deterministically() {
        let mut db = random_db(9, 10, 3);
        // Add an object anchored after the window.
        db.insert(UncertainObject::with_single_observation(
            99,
            Observation::exact(50, 10, 0).unwrap(),
        ))
        .unwrap();
        let window = QueryWindow::from_states(10, [0usize], TimeSet::at(3)).unwrap();
        for threads in [1usize, 4] {
            assert!(evaluate_exists_parallel(
                &db,
                &window,
                &EngineConfig::default().with_num_threads(threads),
                &mut EvalStats::new(),
            )
            .is_err());
        }
    }

    #[test]
    fn bounded_queue_rejects_overflow_without_blocking() {
        // One worker, depth 2. Gate the worker so queued depths are
        // deterministic, then overfill the queue.
        let pool = WorkerPool::with_queue_depth(1, 2);
        assert_eq!(pool.max_queue_depth(), Some(2));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let worker_gate = Arc::clone(&gate);
        pool.spawn(
            0,
            Box::new(move || {
                let (lock, cv) = &*worker_gate;
                let mut open = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                while !*open {
                    open = cv.wait(open).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }),
        );
        // Wait for the worker to pop the gate job so the queue is empty.
        while pool.shard_depth(0) > 0 {
            std::thread::yield_now();
        }
        let ran = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            let job: Job = Box::new(move || {
                ran.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
            match pool.try_spawn(0, job) {
                Ok(_) => accepted += 1,
                Err(_returned_job) => rejected += 1,
            }
        }
        assert_eq!(accepted, 2, "exactly the depth bound is admitted");
        assert_eq!(rejected, 3, "the overflow is refused, never queued");
        let stats = pool.stats();
        assert_eq!(stats.queued_jobs, 2);
        assert_eq!(stats.shard_depths, vec![2]);
        assert_eq!(stats.max_queue_depth, Some(2));
        // Release the gate: the admitted jobs run, the rejected never do.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
        drop(pool);
        // Depth-bounded pools discard on shutdown, but these two were
        // already queued before the gate opened and the drain-side
        // ordering (gate job finishes, then pop) means they may run or be
        // shed; the gate released before drop, so the worker pops them
        // before it ever observes shutdown only if it wins the race.
        // What must hold: no rejected job ever ran.
        assert!(ran.load(std::sync::atomic::Ordering::SeqCst) <= 2);
    }

    #[test]
    fn cancel_queued_removes_pending_jobs_only() {
        let pool = WorkerPool::with_queue_depth(1, 0);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let worker_gate = Arc::clone(&gate);
        pool.spawn(
            0,
            Box::new(move || {
                let (lock, cv) = &*worker_gate;
                let mut open = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                while !*open {
                    open = cv.wait(open).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }),
        );
        while pool.shard_depth(0) > 0 {
            std::thread::yield_now();
        }
        let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let dropped = Arc::new(std::sync::atomic::AtomicBool::new(false));
        struct DropSensor(Arc<std::sync::atomic::AtomicBool>);
        impl Drop for DropSensor {
            fn drop(&mut self) {
                self.0.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let sensor = DropSensor(Arc::clone(&dropped));
        let ran_flag = Arc::clone(&ran);
        let handle = match pool.try_spawn(
            0,
            Box::new(move || {
                let _sensor = &sensor;
                ran_flag.store(true, std::sync::atomic::Ordering::SeqCst);
            }),
        ) {
            Ok(handle) => handle,
            Err(_) => panic!("unbounded queue must admit the job"),
        };
        assert!(pool.cancel_queued(handle), "still queued — removable");
        assert!(dropped.load(std::sync::atomic::Ordering::SeqCst), "the job box was dropped");
        assert!(!pool.cancel_queued(handle), "second cancel finds nothing");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
        drop(pool);
        assert!(!ran.load(std::sync::atomic::Ordering::SeqCst), "cancelled job never ran");
    }

    #[test]
    fn bounded_pool_discards_backlog_on_shutdown_unbounded_drains() {
        for (discard, expect_ran) in [(true, false), (false, true)] {
            let pool =
                if discard { WorkerPool::with_queue_depth(1, 0) } else { WorkerPool::new(1) };
            // Close the queues first: the worker exits immediately, so a
            // job spawned afterwards can never be popped — it is dropped
            // (discard mode) when the pool's queues are freed, exactly
            // the shutdown-mid-burst scenario. For drain mode, enqueue
            // before closing so the worker still runs it.
            let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let ran_flag = Arc::clone(&ran);
            let job: Job = Box::new(move || {
                ran_flag.store(true, std::sync::atomic::Ordering::SeqCst);
            });
            if discard {
                pool.close_queues();
                pool.spawn(0, job);
            } else {
                // Gate the worker so the job is observably queued, then
                // close: the drain must still run it.
                let gate = Arc::new((Mutex::new(false), Condvar::new()));
                let worker_gate = Arc::clone(&gate);
                pool.spawn(
                    0,
                    Box::new(move || {
                        let (lock, cv) = &*worker_gate;
                        let mut open =
                            lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        while !*open {
                            open = cv.wait(open).unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    }),
                );
                while pool.shard_depth(0) > 0 {
                    std::thread::yield_now();
                }
                pool.spawn(0, job);
                pool.close_queues();
                let (lock, cv) = &*gate;
                *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
                cv.notify_all();
            }
            drop(pool);
            assert_eq!(
                ran.load(std::sync::atomic::Ordering::SeqCst),
                expect_ran,
                "discard={discard}"
            );
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let db = random_db(3, 20, 5);
        let window = QueryWindow::from_states(20, [1usize, 2], TimeSet::interval(2, 4)).unwrap();
        let out = evaluate_exists_parallel(
            &db,
            &window,
            &EngineConfig::default().with_num_threads(0),
            &mut EvalStats::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(ShardedExecutor::new(0).num_threads(), 1);
        assert_eq!(ShardedExecutor::sequential().num_threads(), 1);
        assert_eq!(WorkerPool::new(0).num_threads(), 1);
        let _ = MarkovChain::from_csr(ust_markov::CsrMatrix::identity(2)).unwrap();
    }
}
