//! Parallel object-based evaluation.
//!
//! The object-based approach is embarrassingly parallel over objects — each
//! propagation touches only the shared read-only chain. This module shards
//! the database across `std::thread` scoped threads, giving each worker its
//! own propagation pipeline (and thus its own scratch accumulator), and
//! stitches the results back in object order. (The query-based approach
//! rarely needs this: its per-object work is a single dot product.)

use crate::database::TrajectoryDatabase;
use crate::engine::pipeline::Propagator;
use crate::engine::{object_based, EngineConfig};
use crate::error::Result;
use crate::query::{ObjectProbability, QueryWindow};
use crate::stats::EvalStats;

/// Evaluates the PST∃Q for every object with `num_threads` workers.
///
/// Results are identical to [`object_based::evaluate`] (same order, same
/// probabilities); `stats` aggregates the per-worker counters.
pub fn evaluate_exists_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    num_threads: usize,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let num_threads = num_threads.max(1);
    if db.is_empty() {
        return Ok(Vec::new());
    }
    if num_threads == 1 || db.len() == 1 {
        return object_based::evaluate(db, window, config, stats);
    }

    // Validate everything up front so workers can't fail halfway through.
    for object in db.objects() {
        object_based::validate(db.model_of(object), object, window)?;
    }

    let chunk_size = db.len().div_ceil(num_threads);
    let objects = db.objects();
    type WorkerOutput = Result<(Vec<(usize, ObjectProbability)>, EvalStats)>;

    let worker_results: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_threads);
        for (chunk_idx, chunk) in objects.chunks(chunk_size).enumerate() {
            let base = chunk_idx * chunk_size;
            handles.push(scope.spawn(move || -> WorkerOutput {
                let mut local_stats = EvalStats::new();
                let mut pipeline = Propagator::new(config, &mut local_stats);
                let mut out = Vec::with_capacity(chunk.len());
                for (offset, object) in chunk.iter().enumerate() {
                    let chain = db.model_of(object);
                    let probability =
                        object_based::exists_with(&mut pipeline, chain, object, window)?;
                    out.push((
                        base + offset,
                        ObjectProbability { object_id: object.id(), probability },
                    ));
                }
                drop(pipeline);
                Ok((out, local_stats))
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut results: Vec<Option<ObjectProbability>> = vec![None; db.len()];
    for worker in worker_results {
        let (entries, local_stats) = worker?;
        stats.merge(&local_stats);
        for (idx, r) in entries {
            results[idx] = Some(r);
        }
    }
    Ok(results.into_iter().map(|r| r.expect("all chunks cover the database")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::UncertainObject;
    use crate::observation::Observation;
    use ust_markov::testutil;
    use ust_markov::MarkovChain;
    use ust_space::TimeSet;

    fn random_db(seed: u64, n_states: usize, n_objects: usize) -> TrajectoryDatabase {
        let chain = testutil::random_chain(seed, n_states, 4);
        let mut rng = testutil::rng(seed + 1);
        let mut db = TrajectoryDatabase::new(chain);
        for i in 0..n_objects {
            let dist = testutil::random_distribution(&mut rng, n_states, 3);
            db.insert(UncertainObject::with_single_observation(
                i as u64,
                Observation::uncertain(0, dist).unwrap(),
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = random_db(17, 60, 37);
        let window = QueryWindow::from_states(60, 10usize..=15, TimeSet::interval(4, 7)).unwrap();
        let config = EngineConfig::default();
        let sequential =
            object_based::evaluate(&db, &window, &config, &mut EvalStats::new()).unwrap();
        for threads in [1usize, 2, 3, 8, 64] {
            let mut stats = EvalStats::new();
            let parallel =
                evaluate_exists_parallel(&db, &window, &config, threads, &mut stats).unwrap();
            assert_eq!(parallel.len(), sequential.len());
            for (a, b) in parallel.iter().zip(&sequential) {
                assert_eq!(a.object_id, b.object_id);
                assert!((a.probability - b.probability).abs() < 1e-12, "threads={threads}");
            }
            assert_eq!(stats.objects_evaluated, db.len() as u64);
        }
    }

    #[test]
    fn empty_database() {
        let db = random_db(5, 10, 0);
        let window = QueryWindow::from_states(10, [0usize], TimeSet::at(1)).unwrap();
        let out = evaluate_exists_parallel(
            &db,
            &window,
            &EngineConfig::default(),
            4,
            &mut EvalStats::new(),
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn validation_errors_surface_before_spawning() {
        let mut db = random_db(9, 10, 3);
        // Add an object anchored after the window.
        db.insert(UncertainObject::with_single_observation(
            99,
            Observation::exact(50, 10, 0).unwrap(),
        ))
        .unwrap();
        let window = QueryWindow::from_states(10, [0usize], TimeSet::at(3)).unwrap();
        assert!(evaluate_exists_parallel(
            &db,
            &window,
            &EngineConfig::default(),
            4,
            &mut EvalStats::new(),
        )
        .is_err());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let db = random_db(3, 20, 5);
        let window = QueryWindow::from_states(20, [1usize, 2], TimeSet::interval(2, 4)).unwrap();
        let out = evaluate_exists_parallel(
            &db,
            &window,
            &EngineConfig::default(),
            0,
            &mut EvalStats::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 5);
        let _ = MarkovChain::from_csr(ust_markov::CsrMatrix::identity(2)).unwrap();
    }
}
