//! Sharded parallel evaluation for every query driver.
//!
//! All of the paper's queries are embarrassingly parallel over objects —
//! each propagation touches only the shared read-only chain. The
//! [`ShardedExecutor`] shards the database's object indices into contiguous
//! chunks across `std::thread::scope` workers, gives each worker **its own
//! [`Propagator`]** (and thus its own scratch accumulator and batch
//! buffers), and stitches the per-object outputs back in database order,
//! merging the per-worker [`EvalStats`].
//!
//! Every [`crate::engine::QueryProcessor`] entry point routes through the
//! executor: with [`crate::engine::EngineConfig::num_threads`] `== 1` the
//! worker runs inline on the caller's thread (no spawn), at higher counts
//! the shards run concurrently. Within each shard the drivers are the same
//! batched ones the sequential path uses, so parallel results are
//! **bit-for-bit identical** to sequential evaluation for ∃/∀/k, threshold
//! decisions and top-k rankings (asserted by the tests below and the
//! property suite).

use crate::database::TrajectoryDatabase;
use crate::engine::pipeline::Propagator;
use crate::engine::{ktimes, object_based, query_based, EngineConfig};
use crate::error::Result;
use crate::query::{ObjectKDistribution, ObjectProbability, QueryWindow};
use crate::ranking::{self, RankedObject};
use crate::stats::EvalStats;
use crate::threshold;

/// Shards object work across scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ShardedExecutor {
    num_threads: usize,
}

impl ShardedExecutor {
    /// An executor with `num_threads` workers (clamped to at least 1).
    pub fn new(num_threads: usize) -> Self {
        ShardedExecutor { num_threads: num_threads.max(1) }
    }

    /// An executor sized from [`EngineConfig::num_threads`].
    pub fn from_config(config: &EngineConfig) -> Self {
        ShardedExecutor::new(config.effective_num_threads())
    }

    /// The worker count.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `worker` over contiguous shards of the database's object
    /// indices and concatenates the outputs in shard order.
    ///
    /// Each worker owns one [`Propagator`] over a private [`EvalStats`]
    /// that is merged into `stats` afterwards (deterministically, in shard
    /// order — as is the first error, should any shard fail). Workers that
    /// return one output per index therefore produce the same vector the
    /// sequential driver would; reduction-style workers (top-k candidates)
    /// return fewer and the caller merges.
    pub fn run<T, F>(
        &self,
        db: &TrajectoryDatabase,
        config: &EngineConfig,
        stats: &mut EvalStats,
        worker: F,
    ) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut Propagator<'_>, &[usize]) -> Result<Vec<T>> + Sync,
    {
        let n = db.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let threads = self.num_threads.min(n);
        if threads == 1 {
            let mut pipeline = Propagator::new(config, stats);
            let indices: Vec<usize> = (0..n).collect();
            return worker(&mut pipeline, &indices);
        }

        let chunk_size = n.div_ceil(threads);
        type WorkerOutput<T> = Result<(Vec<T>, EvalStats)>;
        let worker_results: Vec<WorkerOutput<T>> = std::thread::scope(|scope| {
            let worker = &worker;
            let mut handles = Vec::with_capacity(threads);
            for shard in 0..threads {
                let lo = shard * chunk_size;
                let hi = ((shard + 1) * chunk_size).min(n);
                if lo >= hi {
                    break;
                }
                handles.push(scope.spawn(move || -> WorkerOutput<T> {
                    let indices: Vec<usize> = (lo..hi).collect();
                    let mut local_stats = EvalStats::new();
                    let mut pipeline = Propagator::new(config, &mut local_stats);
                    let out = worker(&mut pipeline, &indices)?;
                    drop(pipeline);
                    Ok((out, local_stats))
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        let mut out = Vec::with_capacity(n);
        for result in worker_results {
            let (shard_out, local_stats) = result?;
            stats.merge(&local_stats);
            out.extend(shard_out);
        }
        Ok(out)
    }
}

/// PST∃Q for every object, object-based, sharded over
/// [`EngineConfig::num_threads`] workers. Identical to [`object_based::evaluate`] (same order, same
/// bits); `stats` aggregates the per-worker counters.
pub fn evaluate_exists_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    ShardedExecutor::from_config(config).run(db, config, stats, |pipeline, indices| {
        object_based::exists_batched(pipeline, db, indices, window)
    })
}

/// PST∃Q for every object, query-based, sharded. The backward sweep — the
/// dominant, inherently sequential cost — runs **once per model** up
/// front; the workers then share the read-only fields and shard only the
/// per-object dot products. Results match [`query_based::evaluate`] bit
/// for bit.
pub fn evaluate_exists_qb_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let fields = query_based::compute_model_fields(db, window, config, stats)?;
    let fields = &fields;
    ShardedExecutor::from_config(config).run(db, config, stats, |pipeline, indices| {
        let mut out = Vec::with_capacity(indices.len());
        for &idx in indices {
            let object = db.object(idx).expect("executor passes valid indices");
            let field = fields[object.model()].as_ref().expect("one field per populated model");
            let probability =
                field.object_probability(object, window).expect("anchor snapshot was requested");
            pipeline.stats().objects_evaluated += 1;
            out.push(ObjectProbability { object_id: object.id(), probability });
        }
        Ok(out)
    })
}

/// PST∀Q for every object, object-based, sharded (complement reduction on
/// the sharded ∃ driver).
pub fn evaluate_forall_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let complement = window.complement_states()?;
    let mut results = evaluate_exists_parallel(db, &complement, config, stats)?;
    crate::engine::forall::complement_probabilities(&mut results);
    Ok(results)
}

/// PST∀Q for every object, query-based, sharded.
pub fn evaluate_forall_qb_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let complement = window.complement_states()?;
    let mut results = evaluate_exists_qb_parallel(db, &complement, config, stats)?;
    crate::engine::forall::complement_probabilities(&mut results);
    Ok(results)
}

/// PSTkQ for every object, object-based (`C(t)` algorithm), sharded.
pub fn evaluate_ktimes_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectKDistribution>> {
    ShardedExecutor::from_config(config).run(db, config, stats, |pipeline, indices| {
        ktimes::ktimes_batched(pipeline, db, indices, window)
    })
}

/// PSTkQ for every object, query-based, sharded. As with
/// [`evaluate_exists_qb_parallel`], the per-model backward level sweeps run
/// once up front and the workers shard the per-object dot products.
pub fn evaluate_ktimes_qb_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectKDistribution>> {
    let fields = ktimes::compute_model_fields(db, window, stats)?;
    let fields = &fields;
    ShardedExecutor::from_config(config).run(db, config, stats, |pipeline, indices| {
        let mut out = Vec::with_capacity(indices.len());
        for &idx in indices {
            let object = db.object(idx).expect("executor passes valid indices");
            let field = fields[object.model()].as_ref().expect("one field per populated model");
            let probabilities =
                field.object_distribution(object, window).expect("anchor snapshot was requested");
            pipeline.stats().objects_evaluated += 1;
            out.push(ObjectKDistribution { object_id: object.id(), probabilities });
        }
        Ok(out)
    })
}

/// Thresholded PST∃Q over the whole database, sharded: each worker runs the
/// batched bound-based driver on its shard (building its own reachability
/// pruners). The accepted id list matches [`threshold::threshold_query`]
/// exactly.
pub fn threshold_query_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    tau: f64,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<u64>> {
    let outcomes =
        ShardedExecutor::from_config(config).run(db, config, stats, |pipeline, indices| {
            threshold::threshold_batched(pipeline, db, indices, window, tau)
        })?;
    Ok(outcomes
        .into_iter()
        .enumerate()
        .filter(|(_, o)| o.qualifies)
        .map(|(idx, _)| db.object(idx).expect("one outcome per object").id())
        .collect())
}

/// Top-k most likely window intersectors, object-based with pruning,
/// sharded: each worker ranks its shard (pruning against its local k-th
/// bound — conservative, so no global candidate is lost) and the shard
/// lists are merged. The final ranking matches
/// [`ranking::topk_object_based_pruned`] exactly.
pub fn topk_object_based_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    k: usize,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<RankedObject>> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let candidates =
        ShardedExecutor::from_config(config).run(db, config, stats, |pipeline, indices| {
            ranking::topk_batched(pipeline, db, indices, window, k)
        })?;
    let mut best: Vec<RankedObject> = Vec::with_capacity(k + 1);
    for candidate in candidates {
        ranking::insert_ranked(&mut best, candidate, k);
    }
    Ok(best)
}

/// Top-k via the query-based engine, sharded over the probability
/// computation. Matches [`ranking::topk_query_based`] exactly.
pub fn topk_query_based_parallel(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    k: usize,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<RankedObject>> {
    let all = evaluate_exists_qb_parallel(db, window, config, stats)?;
    Ok(ranking::select_topk(all, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::forall;
    use crate::object::UncertainObject;
    use crate::observation::Observation;
    use ust_markov::testutil;
    use ust_markov::MarkovChain;
    use ust_space::TimeSet;

    fn random_db(seed: u64, n_states: usize, n_objects: usize) -> TrajectoryDatabase {
        let chain = testutil::random_chain(seed, n_states, 4);
        let mut rng = testutil::rng(seed + 1);
        let mut db = TrajectoryDatabase::new(chain);
        for i in 0..n_objects {
            let dist = testutil::random_distribution(&mut rng, n_states, 3);
            let anchor_time = (i % 3) as u32;
            db.insert(UncertainObject::with_single_observation(
                i as u64,
                Observation::uncertain(anchor_time, dist).unwrap(),
            ))
            .unwrap();
        }
        db
    }

    fn window(n: usize) -> QueryWindow {
        QueryWindow::from_states(n, 10usize..=15, TimeSet::interval(4, 7)).unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = random_db(17, 60, 37);
        let window = window(60);
        let config = EngineConfig::default();
        let sequential =
            object_based::evaluate(&db, &window, &config, &mut EvalStats::new()).unwrap();
        for threads in [1usize, 2, 3, 8, 64] {
            let mut stats = EvalStats::new();
            let parallel = evaluate_exists_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            assert_eq!(parallel.len(), sequential.len());
            for (a, b) in parallel.iter().zip(&sequential) {
                assert_eq!(a.object_id, b.object_id);
                assert_eq!(a.probability.to_bits(), b.probability.to_bits(), "threads={threads}");
            }
            assert_eq!(stats.objects_evaluated, db.len() as u64);
        }
    }

    #[test]
    fn all_drivers_match_sequential_bit_for_bit() {
        let db = random_db(23, 60, 29);
        let window = window(60);
        let config = EngineConfig::default().with_batch_size(7);
        let mut seq = EvalStats::new();
        let exists_qb = query_based::evaluate(&db, &window, &config, &mut seq).unwrap();
        let forall_ob = forall::evaluate_object_based(&db, &window, &config, &mut seq).unwrap();
        let forall_qb = forall::evaluate_query_based(&db, &window, &config, &mut seq).unwrap();
        let ktimes_ob = ktimes::evaluate_object_based(&db, &window, &config, &mut seq).unwrap();
        let ktimes_qb = ktimes::evaluate_query_based(&db, &window, &config, &mut seq).unwrap();
        let accepted = threshold::threshold_query(&db, &window, 0.4, &config, &mut seq).unwrap();
        let topk_ob =
            ranking::topk_object_based_pruned(&db, &window, 5, &config, &mut seq).unwrap();
        let topk_qb = ranking::topk_query_based(&db, &window, 5, &config, &mut seq).unwrap();

        for threads in [2usize, 5, 16] {
            let mut stats = EvalStats::new();
            let p = evaluate_exists_qb_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&exists_qb) {
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let p = evaluate_forall_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&forall_ob) {
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let p = evaluate_forall_qb_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&forall_qb) {
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let p = evaluate_ktimes_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&ktimes_ob) {
                assert_eq!(a.object_id, b.object_id);
                for (x, y) in a.probabilities.iter().zip(&b.probabilities) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            let p = evaluate_ktimes_qb_parallel(
                &db,
                &window,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&ktimes_qb) {
                for (x, y) in a.probabilities.iter().zip(&b.probabilities) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            let p = threshold_query_parallel(
                &db,
                &window,
                0.4,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            assert_eq!(p, accepted, "threads={threads}");
            let p = topk_object_based_parallel(
                &db,
                &window,
                5,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            assert_eq!(p.len(), topk_ob.len());
            for (a, b) in p.iter().zip(&topk_ob) {
                assert_eq!(a.object_id, b.object_id);
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
            let p = topk_query_based_parallel(
                &db,
                &window,
                5,
                &config.with_num_threads(threads),
                &mut stats,
            )
            .unwrap();
            for (a, b) in p.iter().zip(&topk_qb) {
                assert_eq!(a.object_id, b.object_id);
                assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            }
        }
    }

    #[test]
    fn empty_database() {
        let db = random_db(5, 10, 0);
        let window = QueryWindow::from_states(10, [0usize], TimeSet::at(1)).unwrap();
        let out = evaluate_exists_parallel(
            &db,
            &window,
            &EngineConfig::default().with_num_threads(4),
            &mut EvalStats::new(),
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn validation_errors_surface_deterministically() {
        let mut db = random_db(9, 10, 3);
        // Add an object anchored after the window.
        db.insert(UncertainObject::with_single_observation(
            99,
            Observation::exact(50, 10, 0).unwrap(),
        ))
        .unwrap();
        let window = QueryWindow::from_states(10, [0usize], TimeSet::at(3)).unwrap();
        for threads in [1usize, 4] {
            assert!(evaluate_exists_parallel(
                &db,
                &window,
                &EngineConfig::default().with_num_threads(threads),
                &mut EvalStats::new(),
            )
            .is_err());
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let db = random_db(3, 20, 5);
        let window = QueryWindow::from_states(20, [1usize, 2], TimeSet::interval(2, 4)).unwrap();
        let out = evaluate_exists_parallel(
            &db,
            &window,
            &EngineConfig::default().with_num_threads(0),
            &mut EvalStats::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(ShardedExecutor::new(0).num_threads(), 1);
        let _ = MarkovChain::from_csr(ust_markov::CsrMatrix::identity(2)).unwrap();
    }
}
