//! Serving-side accounting: per-plan latency counters, admission
//! outcomes, and the planner-calibration feedback loop.
//!
//! A [`crate::engine::QueryProcessor`] that serves traffic needs more than
//! per-query [`EvalStats`]: it needs to know, *across* queries, how many
//! submissions were accepted, rejected at the admission bound, cancelled
//! or shed at their deadline, and how long each `(predicate, strategy)`
//! plan shape actually spends waiting in the queue, planning and
//! executing. [`Metrics`] is that registry — one per processor, shared
//! with every asynchronously submitted job, inspected through
//! [`crate::engine::QueryProcessor::metrics`] which returns an owned
//! [`MetricsSnapshot`].
//!
//! ## The calibration loop
//!
//! The registry also closes the loop PR 4's planner left open: every
//! executed query reports how many propagation steps it *actually*
//! performed against the step count the cost model *estimated*, and the
//! per-strategy EWMA of that ratio replaces the planner's flat `×0.5`
//! early-termination discount once samples exist (see
//! [`crate::engine::plan`]). The feedback is deliberately fed by the
//! deterministic [`EvalStats`] counters, **not** by wall-clock time:
//! counter-based calibration makes a given query sequence plan
//! reproducibly (the property suite depends on it), whereas wall-clock
//! feedback would make strategy choice — and therefore result bits, since
//! the two exact strategies agree only to rounding — depend on machine
//! noise. Because even deterministic calibration can legitimately flip a
//! borderline plan between two executions of the same spec, the planner
//! only *consults* the EWMA when
//! [`crate::engine::EngineConfig::calibrate_planner`] is enabled; the
//! registry records a sample whenever a cost model was computed for the
//! executed query (always under [`Strategy::Auto`]; for explicit
//! strategies only when calibration is on, since the estimates are
//! otherwise skipped), and
//! [`crate::engine::QueryProcessor::explain`] renders the state either
//! way.
//!
//! Wall-clock latencies (queue wait, plan time, execute time) are still
//! recorded per plan shape — they are what a serving dashboard watches —
//! and by default they never influence planning. The one deliberate
//! exception is the per-strategy **matrix-entry throughput** EWMA
//! (`entries_touched / execute_time`, entries per second): because
//! [`EvalStats::entries_touched`] is invariant across the batched kernel
//! modes, the rate is a clean measure of how fast each strategy actually
//! chews through matrix entries on this machine, and the planner divides
//! its entry-count estimates by it to rank strategies in predicted
//! seconds — but **only** when
//! [`crate::engine::EngineConfig::calibrate_planner`] is enabled, the
//! same opt-in that accepts plan drift for the step-ratio EWMA.

use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

use crate::query::{Predicate, Strategy};
use crate::stats::EvalStats;

/// Smoothing factor of the calibration EWMAs: a new observation
/// contributes 30%, so roughly the last ~7 queries dominate the estimate.
const EWMA_ALPHA: f64 = 0.3;

/// Floor applied to observed step ratios so a fully-pruned query cannot
/// teach the planner that a strategy is free.
const MIN_STEP_RATIO: f64 = 0.01;

/// An exponentially weighted moving average over `f64` observations.
#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    value: f64,
    samples: u64,
}

impl Ewma {
    fn observe(&mut self, x: f64) {
        self.value =
            if self.samples == 0 { x } else { EWMA_ALPHA * x + (1.0 - EWMA_ALPHA) * self.value };
        self.samples += 1;
    }

    fn get(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.value)
    }
}

/// How an asynchronously submitted query left the system — the
/// classification [`Metrics::record_async_finished`] tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AsyncOutcome {
    /// The job ran to completion with an answer.
    Completed,
    /// The job ran and returned a query error.
    Failed,
    /// Cancelled via `QueryTicket::cancel` before producing an answer.
    Cancelled,
    /// Dropped without running (pool shut down, job discarded).
    Dropped,
    /// Shed because its queue wait exceeded the configured deadline.
    DeadlineExpired,
    /// Panicked on its worker.
    Panicked,
}

/// One execution's worth of accounting handed to
/// [`Metrics::record_execution`] by the execution engine.
#[derive(Debug, Clone)]
pub(crate) struct ExecutionRecord {
    /// The query predicate.
    pub predicate: Predicate,
    /// The strategy that actually ran — or, for a query that failed
    /// before its plan was resolved (index resolution / planning error),
    /// the *requested* strategy, which may still be [`Strategy::Auto`].
    pub strategy: Strategy,
    /// True when a threshold/top-k decorator allowed early termination —
    /// the runs the discount EWMA learns from.
    pub bounded: bool,
    /// The cost model's *undiscounted* estimate of propagation steps for
    /// the strategy that ran (vector steps, not matrix-entry touches).
    pub estimated_steps: f64,
    /// Time spent resolving indices and planning.
    pub plan_time: Duration,
    /// Time spent executing the resolved plan.
    pub execute_time: Duration,
    /// Queue wait between submission and job start (async runs only).
    pub queue_wait: Option<Duration>,
    /// The evaluation counters this execution accumulated.
    pub delta: EvalStats,
    /// Whether the execution succeeded.
    pub ok: bool,
}

/// Per-subscription counters for one standing query registered through
/// [`crate::engine::QueryProcessor::watch`], keyed by
/// [`crate::streaming::Subscription::id`].
///
/// The step split is the streaming story in numbers: `recompute_steps`
/// is what full evaluations (the registration probe plus any stale
/// resynchronizations) cost, `incremental_steps` what the per-arrival
/// single-object refreshes cost. On a warmed query-based subscription
/// the latter stays at zero backward steps per arrival — the ratio
/// `BENCH_pr8.json` reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamMetrics {
    /// The subscription this row accounts for.
    pub subscription_id: u64,
    /// Notifications committed into the maintained answer (incremental
    /// refreshes plus full resynchronizations; the registration probe is
    /// not a notification).
    pub notifications: u64,
    /// Incremental single-object re-evaluations.
    pub reevaluations: u64,
    /// Full evaluations: the registration probe plus stale resyncs.
    pub full_recomputes: u64,
    /// Maintained result entries invalidated by arrivals — the scoped
    /// inverse of a whole-cache flush: one entry per in-scope arrival,
    /// never the backward-field caches (their keys are
    /// observation-independent).
    pub suffix_invalidations: u64,
    /// Refreshes shed at the admission bound or deadline.
    pub sheds: u64,
    /// Propagation steps (forward transitions + backward steps) spent on
    /// incremental refreshes.
    pub incremental_steps: u64,
    /// Propagation steps spent on full evaluations.
    pub recompute_steps: u64,
}

impl StreamMetrics {
    fn new(subscription_id: u64) -> StreamMetrics {
        StreamMetrics {
            subscription_id,
            notifications: 0,
            reevaluations: 0,
            full_recomputes: 0,
            suffix_invalidations: 0,
            sheds: 0,
            incremental_steps: 0,
            recompute_steps: 0,
        }
    }
}

/// Aggregated counters for one `(predicate, strategy)` plan shape.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanMetrics {
    /// The query predicate of this plan shape.
    pub predicate: Predicate,
    /// The evaluation strategy of this plan shape. Executions are keyed
    /// by the strategy that *ran*; rejections — and executions that
    /// failed before their plan was resolved — by the one *requested*,
    /// which may be [`Strategy::Auto`] (such queries never reached a
    /// concrete strategy).
    pub strategy: Strategy,
    /// Executions recorded (synchronous calls and asynchronous jobs).
    pub executions: u64,
    /// Executions that returned an error.
    pub failures: u64,
    /// Submissions rejected at the admission bound.
    pub rejections: u64,
    /// Total seconds submitted jobs of this shape waited in the queue.
    pub queue_wait_secs: f64,
    /// Total seconds spent planning (index resolution + cost model).
    pub plan_secs: f64,
    /// Total seconds spent executing resolved plans.
    pub execute_secs: f64,
    /// Backward-field cache hits accumulated by these executions.
    pub cache_hits: u64,
    /// Backward-field cache misses accumulated by these executions.
    pub cache_misses: u64,
    /// Forward transitions accumulated by these executions.
    pub transitions: u64,
    /// Backward steps accumulated by these executions.
    pub backward_steps: u64,
    /// Matrix entries multiplied by these executions (forward batched
    /// kernels; see [`EvalStats::entries_touched`]).
    pub entries_touched: u64,
    /// Candidates that survived the spatio-temporal index prefilter and
    /// were handed to the exact engines.
    pub candidates_examined: u64,
    /// Candidates discarded by the prefilter without being evaluated.
    pub candidates_pruned: u64,
}

impl PlanMetrics {
    fn new(predicate: Predicate, strategy: Strategy) -> PlanMetrics {
        PlanMetrics {
            predicate,
            strategy,
            executions: 0,
            failures: 0,
            rejections: 0,
            queue_wait_secs: 0.0,
            plan_secs: 0.0,
            execute_secs: 0.0,
            cache_hits: 0,
            cache_misses: 0,
            transitions: 0,
            backward_steps: 0,
            entries_touched: 0,
            candidates_examined: 0,
            candidates_pruned: 0,
        }
    }

    /// Mean execute wall per execution, if any were recorded.
    pub fn mean_execute_secs(&self) -> Option<f64> {
        (self.executions > 0).then(|| self.execute_secs / self.executions as f64)
    }
}

/// An owned, consistent copy of a processor's serving counters at one
/// instant, returned by [`crate::engine::QueryProcessor::metrics`].
///
/// The lifecycle totals obey two identities the test suite pins:
/// `submitted == accepted + rejected`, and `accepted` equals the sum of
/// the terminal outcomes (`completed + failed + cancelled + dropped +
/// deadline_expired + panicked`) plus [`MetricsSnapshot::in_flight`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Asynchronous submissions attempted (accepted or rejected).
    pub submitted: u64,
    /// Submissions admitted to a queue.
    pub accepted: u64,
    /// Submissions rejected with `QueryError::QueueFull`.
    pub rejected: u64,
    /// Accepted queries that completed with an answer.
    pub completed: u64,
    /// Accepted queries that completed with a query error.
    pub failed: u64,
    /// Accepted queries cancelled before completion.
    pub cancelled: u64,
    /// Accepted queries dropped without running.
    pub dropped: u64,
    /// Accepted queries shed at their deadline.
    pub deadline_expired: u64,
    /// Accepted queries that panicked on their worker.
    pub panicked: u64,
    /// Accepted queries still queued or running.
    pub in_flight: u64,
    /// Executions recorded in total — synchronous `execute` calls plus
    /// asynchronous job bodies.
    pub executions: u64,
    /// Learned object-based step discount (actual / estimated forward
    /// steps under bound decorators), once observed.
    pub ob_discount: Option<f64>,
    /// Learned query-based step discount, once observed.
    pub qb_discount: Option<f64>,
    /// Observed object-based matrix-entry throughput (entries per second
    /// of execute wall), once a forward execution touched entries.
    pub ob_entry_throughput: Option<f64>,
    /// Observed query-based matrix-entry throughput, ditto.
    pub qb_entry_throughput: Option<f64>,
    /// Per-`(predicate, strategy)` counters, in first-seen order.
    pub plans: Vec<PlanMetrics>,
    /// Per-subscription streaming counters, in registration order.
    pub streams: Vec<StreamMetrics>,
}

impl MetricsSnapshot {
    /// The counters for one plan shape, if it was ever recorded.
    pub fn plan(&self, predicate: Predicate, strategy: Strategy) -> Option<&PlanMetrics> {
        self.plans.iter().find(|p| p.predicate == predicate && p.strategy == strategy)
    }

    /// The counters for one subscription, if it was ever registered.
    pub fn stream(&self, subscription_id: u64) -> Option<&StreamMetrics> {
        self.streams.iter().find(|s| s.subscription_id == subscription_id)
    }

    /// Sum of the terminal async outcomes — equals
    /// `accepted - in_flight`.
    pub fn finished(&self) -> u64 {
        self.completed
            + self.failed
            + self.cancelled
            + self.dropped
            + self.deadline_expired
            + self.panicked
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serving: {} submitted = {} accepted + {} rejected; {} completed, {} failed, \
             {} cancelled, {} dropped, {} deadline-expired, {} panicked, {} in flight",
            self.submitted,
            self.accepted,
            self.rejected,
            self.completed,
            self.failed,
            self.cancelled,
            self.dropped,
            self.deadline_expired,
            self.panicked,
            self.in_flight,
        )?;
        write!(
            f,
            "calibration: ob discount {}, qb discount {}, ob {} entries/s, qb {} entries/s",
            self.ob_discount.map_or("—".into(), |d| format!("{d:.3}")),
            self.qb_discount.map_or("—".into(), |d| format!("{d:.3}")),
            self.ob_entry_throughput.map_or("—".into(), |r| format!("{r:.0}")),
            self.qb_entry_throughput.map_or("—".into(), |r| format!("{r:.0}")),
        )?;
        for p in &self.plans {
            write!(
                f,
                "\n  {:?}/{:?}: {} exec ({} failed, {} rejected), wait {:.3}s, plan {:.3}s, \
                 run {:.3}s, cache {}/{}",
                p.predicate,
                p.strategy,
                p.executions,
                p.failures,
                p.rejections,
                p.queue_wait_secs,
                p.plan_secs,
                p.execute_secs,
                p.cache_hits,
                p.cache_misses,
            )?;
            if p.candidates_pruned > 0 {
                write!(
                    f,
                    ", prefilter {}/{} examined",
                    p.candidates_examined,
                    p.candidates_examined + p.candidates_pruned,
                )?;
            }
        }
        for s in &self.streams {
            write!(
                f,
                "\n  stream #{}: {} notified ({} incremental / {} full, {} shed), \
                 {} entries invalidated, steps {} incr / {} full",
                s.subscription_id,
                s.notifications,
                s.reevaluations,
                s.full_recomputes,
                s.sheds,
                s.suffix_invalidations,
                s.incremental_steps,
                s.recompute_steps,
            )?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct Inner {
    submitted: u64,
    accepted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    dropped: u64,
    deadline_expired: u64,
    panicked: u64,
    in_flight: u64,
    executions: u64,
    ob_discount: Ewma,
    qb_discount: Ewma,
    ob_entry_rate: Ewma,
    qb_entry_rate: Ewma,
    plans: Vec<PlanMetrics>,
    streams: Vec<StreamMetrics>,
}

impl Inner {
    fn plan_entry(&mut self, predicate: Predicate, strategy: Strategy) -> &mut PlanMetrics {
        if let Some(pos) =
            self.plans.iter().position(|p| p.predicate == predicate && p.strategy == strategy)
        {
            return &mut self.plans[pos];
        }
        self.plans.push(PlanMetrics::new(predicate, strategy));
        // lint: allow(panicking-call-in-lib) — `last_mut` on the vector the
        // previous line pushed to; it cannot be empty here.
        self.plans.last_mut().expect("just pushed")
    }

    fn stream_entry(&mut self, subscription_id: u64) -> &mut StreamMetrics {
        if let Some(pos) = self.streams.iter().position(|s| s.subscription_id == subscription_id) {
            return &mut self.streams[pos];
        }
        self.streams.push(StreamMetrics::new(subscription_id));
        // lint: allow(panicking-call-in-lib) — `last_mut` on the vector the
        // previous line pushed to; it cannot be empty here.
        self.streams.last_mut().expect("just pushed")
    }
}

/// The per-processor serving registry. Interior-mutable and shared (via
/// `Arc`) with every asynchronous job; all locking recovers from poison,
/// so a panicking job can never wedge the accounting.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    /// A fresh, zeroed registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Tallies a rejected submission. `submitted` is bumped under the
    /// same lock acquisition as the rejection so the
    /// `submitted == accepted + rejected` identity holds in **every**
    /// snapshot, including one taken concurrently with a submit.
    pub(crate) fn record_rejected(&self, predicate: Predicate, requested: Strategy) {
        let mut inner = self.lock();
        inner.submitted += 1;
        inner.rejected += 1;
        inner.plan_entry(predicate, requested).rejections += 1;
    }

    /// Tallies an admitted submission (see [`Metrics::record_rejected`]
    /// for why `submitted` is bumped here rather than separately).
    pub(crate) fn record_accepted(&self) {
        let mut inner = self.lock();
        inner.submitted += 1;
        inner.accepted += 1;
        inner.in_flight += 1;
    }

    pub(crate) fn record_async_finished(&self, outcome: AsyncOutcome) {
        let mut inner = self.lock();
        inner.in_flight = inner.in_flight.saturating_sub(1);
        match outcome {
            AsyncOutcome::Completed => inner.completed += 1,
            AsyncOutcome::Failed => inner.failed += 1,
            AsyncOutcome::Cancelled => inner.cancelled += 1,
            AsyncOutcome::Dropped => inner.dropped += 1,
            AsyncOutcome::DeadlineExpired => inner.deadline_expired += 1,
            AsyncOutcome::Panicked => inner.panicked += 1,
        }
    }

    pub(crate) fn record_execution(&self, record: &ExecutionRecord) {
        let mut inner = self.lock();
        inner.executions += 1;
        if record.ok && record.bounded && record.estimated_steps > 0.0 {
            let actual = match record.strategy {
                Strategy::ObjectBased => Some(record.delta.transitions),
                Strategy::QueryBased => Some(record.delta.backward_steps),
                _ => None,
            };
            if let Some(actual) = actual {
                let ratio = (actual as f64 / record.estimated_steps).clamp(MIN_STEP_RATIO, 1.0);
                match record.strategy {
                    Strategy::ObjectBased => inner.ob_discount.observe(ratio),
                    Strategy::QueryBased => inner.qb_discount.observe(ratio),
                    // lint: allow(panicking-call-in-lib) — the surrounding
                    // `if` admits only the two exact strategies matched above.
                    _ => unreachable!("filtered above"),
                }
            }
        }
        if record.ok && record.delta.entries_touched > 0 {
            let secs = record.execute_time.as_secs_f64();
            if secs > 0.0 {
                let rate = record.delta.entries_touched as f64 / secs;
                match record.strategy {
                    Strategy::ObjectBased => inner.ob_entry_rate.observe(rate),
                    Strategy::QueryBased => inner.qb_entry_rate.observe(rate),
                    _ => {}
                }
            }
        }
        let entry = inner.plan_entry(record.predicate, record.strategy);
        entry.executions += 1;
        if !record.ok {
            entry.failures += 1;
        }
        if let Some(wait) = record.queue_wait {
            entry.queue_wait_secs += wait.as_secs_f64();
        }
        entry.plan_secs += record.plan_time.as_secs_f64();
        entry.execute_secs += record.execute_time.as_secs_f64();
        entry.cache_hits += record.delta.cache_hits;
        entry.cache_misses += record.delta.cache_misses;
        entry.transitions += record.delta.transitions;
        entry.backward_steps += record.delta.backward_steps;
        entry.entries_touched += record.delta.entries_touched;
        entry.candidates_examined += record.delta.candidates_examined;
        entry.candidates_pruned += record.delta.candidates_pruned;
    }

    /// Tallies a subscription's registration: the initial full evaluation
    /// [`crate::engine::QueryProcessor::watch`] performs to seed the
    /// maintained answer.
    pub(crate) fn record_stream_watch(&self, subscription_id: u64, steps: u64) {
        let mut inner = self.lock();
        let entry = inner.stream_entry(subscription_id);
        entry.full_recomputes += 1;
        entry.recompute_steps += steps;
    }

    /// Tallies a committed incremental refresh: one arrival invalidated
    /// exactly one maintained entry and re-evaluated it.
    pub(crate) fn record_stream_refresh(&self, subscription_id: u64, steps: u64) {
        let mut inner = self.lock();
        let entry = inner.stream_entry(subscription_id);
        entry.notifications += 1;
        entry.reevaluations += 1;
        entry.suffix_invalidations += 1;
        entry.incremental_steps += steps;
    }

    /// Tallies a full resynchronization of a stale (or errored, or
    /// Monte-Carlo) subscription.
    pub(crate) fn record_stream_resync(&self, subscription_id: u64, steps: u64) {
        let mut inner = self.lock();
        let entry = inner.stream_entry(subscription_id);
        entry.notifications += 1;
        entry.full_recomputes += 1;
        entry.recompute_steps += steps;
    }

    /// Tallies a refresh shed at the admission bound or deadline.
    pub(crate) fn record_stream_shed(&self, subscription_id: u64) {
        self.lock().stream_entry(subscription_id).sheds += 1;
    }

    /// The learned `(object-based, query-based)` matrix-entry throughputs
    /// (entries per second of execute wall); `None` until the respective
    /// strategy has executed a query that touched entries. Wall-clock
    /// derived — the planner consults them only under
    /// [`crate::engine::EngineConfig::calibrate_planner`].
    pub fn entry_throughputs(&self) -> (Option<f64>, Option<f64>) {
        let inner = self.lock();
        (inner.ob_entry_rate.get(), inner.qb_entry_rate.get())
    }

    /// The learned `(object-based, query-based)` step discounts the
    /// planner substitutes for its flat `×0.5` prior when calibration is
    /// enabled; `None` until the respective strategy has served a
    /// bound-decorated query.
    pub fn discounts(&self) -> (Option<f64>, Option<f64>) {
        let inner = self.lock();
        (inner.ob_discount.get(), inner.qb_discount.get())
    }

    /// An owned, consistent snapshot of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            submitted: inner.submitted,
            accepted: inner.accepted,
            rejected: inner.rejected,
            completed: inner.completed,
            failed: inner.failed,
            cancelled: inner.cancelled,
            dropped: inner.dropped,
            deadline_expired: inner.deadline_expired,
            panicked: inner.panicked,
            in_flight: inner.in_flight,
            executions: inner.executions,
            ob_discount: inner.ob_discount.get(),
            qb_discount: inner.qb_discount.get(),
            ob_entry_throughput: inner.ob_entry_rate.get(),
            qb_entry_throughput: inner.qb_entry_rate.get(),
            plans: inner.plans.clone(),
            streams: inner.streams.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        strategy: Strategy,
        bounded: bool,
        est: f64,
        actual: u64,
        ok: bool,
    ) -> ExecutionRecord {
        ExecutionRecord {
            predicate: Predicate::Exists,
            strategy,
            bounded,
            estimated_steps: est,
            plan_time: Duration::from_micros(5),
            execute_time: Duration::from_micros(50),
            queue_wait: Some(Duration::from_micros(10)),
            delta: EvalStats {
                transitions: actual,
                backward_steps: actual,
                cache_hits: 1,
                candidates_examined: 8,
                candidates_pruned: 2,
                ..Default::default()
            },
            ok,
        }
    }

    #[test]
    fn lifecycle_identities_hold() {
        let m = Metrics::new();
        for _ in 0..3 {
            m.record_accepted();
        }
        m.record_rejected(Predicate::Exists, Strategy::Auto);
        m.record_rejected(Predicate::ForAll, Strategy::Auto);
        m.record_async_finished(AsyncOutcome::Completed);
        m.record_async_finished(AsyncOutcome::Cancelled);
        let s = m.snapshot();
        assert_eq!(s.submitted, 5);
        assert_eq!(s.accepted + s.rejected, 5);
        assert_eq!(s.finished() + s.in_flight, s.accepted);
        assert_eq!(s.in_flight, 1);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.plan(Predicate::Exists, Strategy::Auto).unwrap().rejections, 1);
        assert!(s.to_string().contains("5 submitted"));
    }

    #[test]
    fn execution_records_accumulate_per_plan() {
        let m = Metrics::new();
        m.record_execution(&record(Strategy::ObjectBased, false, 100.0, 40, true));
        m.record_execution(&record(Strategy::ObjectBased, false, 100.0, 40, false));
        m.record_execution(&record(Strategy::QueryBased, false, 100.0, 70, true));
        let s = m.snapshot();
        assert_eq!(s.executions, 3);
        let ob = s.plan(Predicate::Exists, Strategy::ObjectBased).unwrap();
        assert_eq!(ob.executions, 2);
        assert_eq!(ob.failures, 1);
        assert_eq!(ob.cache_hits, 2);
        assert_eq!(ob.candidates_examined, 16);
        assert_eq!(ob.candidates_pruned, 4);
        assert!(s.to_string().contains("prefilter 16/20 examined"));
        assert!(ob.queue_wait_secs > 0.0);
        assert!(ob.mean_execute_secs().unwrap() > 0.0);
        // Unbounded executions never touch the discount EWMAs.
        assert_eq!(s.ob_discount, None);
        assert_eq!(s.qb_discount, None);
    }

    #[test]
    fn discount_ewma_learns_from_bounded_runs_only() {
        let m = Metrics::new();
        m.record_execution(&record(Strategy::ObjectBased, true, 100.0, 40, true));
        let (ob, qb) = m.discounts();
        assert!((ob.unwrap() - 0.4).abs() < 1e-12, "first sample seeds the EWMA");
        assert_eq!(qb, None);
        m.record_execution(&record(Strategy::ObjectBased, true, 100.0, 80, true));
        let (ob, _) = m.discounts();
        assert!((ob.unwrap() - (0.3 * 0.8 + 0.7 * 0.4)).abs() < 1e-12);
        // Failures and zero estimates are ignored; ratios are clamped.
        m.record_execution(&record(Strategy::QueryBased, true, 0.0, 10, true));
        m.record_execution(&record(Strategy::QueryBased, true, 100.0, 10, false));
        assert_eq!(m.discounts().1, None);
        m.record_execution(&record(Strategy::QueryBased, true, 10.0, 500, true));
        assert!((m.discounts().1.unwrap() - 1.0).abs() < 1e-12, "ratio clamps at 1");
        m.record_execution(&record(Strategy::MonteCarlo, true, 10.0, 5, true));
        assert!((m.discounts().1.unwrap() - 1.0).abs() < 1e-12, "MC never calibrates");
    }

    #[test]
    fn stream_counters_split_incremental_from_full_work() {
        let m = Metrics::new();
        m.record_stream_watch(3, 100);
        m.record_stream_refresh(3, 4);
        m.record_stream_refresh(3, 6);
        m.record_stream_shed(3);
        m.record_stream_resync(3, 90);
        m.record_stream_watch(7, 50);
        let s = m.snapshot();
        assert_eq!(s.streams.len(), 2);
        let three = s.stream(3).unwrap();
        assert_eq!(three.notifications, 3, "watch is not a notification");
        assert_eq!(three.reevaluations, 2);
        assert_eq!(three.full_recomputes, 2, "watch + resync");
        assert_eq!(three.suffix_invalidations, 2);
        assert_eq!(three.sheds, 1);
        assert_eq!(three.incremental_steps, 10);
        assert_eq!(three.recompute_steps, 190);
        assert_eq!(s.stream(7).unwrap().recompute_steps, 50);
        assert_eq!(s.stream(42), None);
        assert!(s.to_string().contains("stream #3: 3 notified"));
    }

    #[test]
    fn entry_throughput_ewma_tracks_entries_per_second() {
        let m = Metrics::new();
        assert_eq!(m.entry_throughputs(), (None, None));
        // 1000 entries in 1 ms → 1e6 entries/s seeds the OB EWMA.
        let mut r = record(Strategy::ObjectBased, false, 0.0, 40, true);
        r.delta.entries_touched = 1_000;
        r.execute_time = Duration::from_millis(1);
        m.record_execution(&r);
        let (ob, qb) = m.entry_throughputs();
        assert!((ob.unwrap() - 1.0e6).abs() < 1.0);
        assert_eq!(qb, None);
        // Failed executions and zero-entry executions never contribute.
        let mut bad = record(Strategy::QueryBased, false, 0.0, 40, false);
        bad.delta.entries_touched = 1_000;
        m.record_execution(&bad);
        m.record_execution(&record(Strategy::QueryBased, false, 0.0, 40, true));
        assert_eq!(m.entry_throughputs().1, None);
        // The per-plan totals accumulate the raw entry counts.
        let s = m.snapshot();
        assert_eq!(s.ob_entry_throughput, m.entry_throughputs().0);
        let ob_plan = s.plan(Predicate::Exists, Strategy::ObjectBased).unwrap();
        assert_eq!(ob_plan.entries_touched, 1_000);
        assert!(s.to_string().contains("entries/s"));
    }
}
