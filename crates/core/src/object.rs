//! Uncertain spatio-temporal objects (Definition 1).
//!
//! An uncertain object is a stochastic process `{o(t) ∈ S, t ∈ T}`: a set of
//! timestamped observations plus the (shared or per-class) Markov chain that
//! instantiates its location at all unobserved timestamps.

use ust_markov::SparseVector;

use crate::error::{QueryError, Result};
use crate::observation::Observation;

/// An uncertain moving object: id, observations, and the index of the
/// transition model it follows (into its database's model table).
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainObject {
    id: u64,
    observations: Vec<Observation>,
    model: usize,
}

impl UncertainObject {
    /// Creates an object from observations (sorted by time on construction).
    /// At least one observation is required; duplicate timestamps are
    /// rejected.
    pub fn new(id: u64, mut observations: Vec<Observation>) -> Result<Self> {
        if observations.is_empty() {
            return Err(QueryError::NoObservations);
        }
        observations.sort_by_key(|o| o.time());
        for pair in observations.windows(2) {
            if pair[0].time() == pair[1].time() {
                return Err(QueryError::DuplicateObservation { time: pair[0].time() });
            }
        }
        let dim = observations[0].num_states();
        for o in &observations {
            if o.num_states() != dim {
                return Err(QueryError::ModelDimensionMismatch {
                    model_states: dim,
                    object_states: o.num_states(),
                });
            }
        }
        Ok(UncertainObject { id, observations, model: 0 })
    }

    /// Creates an object with a single observation.
    pub fn with_single_observation(id: u64, observation: Observation) -> Self {
        UncertainObject { id, observations: vec![observation], model: 0 }
    }

    /// Assigns a transition-model index (defaults to 0, the shared model).
    pub fn with_model(mut self, model: usize) -> Self {
        self.model = model;
        self
    }

    /// The object identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Index of the object's transition model in the database model table.
    pub fn model(&self) -> usize {
        self.model
    }

    /// All observations, ascending by time.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// The earliest observation — the anchor of forward propagation.
    pub fn anchor(&self) -> &Observation {
        &self.observations[0]
    }

    /// The latest observation.
    pub fn last_observation(&self) -> &Observation {
        // lint: allow(panicking-call-in-lib) — every constructor rejects an empty
        // observation list with `QueryError::NoObservations`, so `observations`
        // is non-empty for the lifetime of the object.
        self.observations.last().expect("objects hold ≥ 1 observation")
    }

    /// The observation at exactly time `t`, if any.
    pub fn observation_at(&self, t: u32) -> Option<&Observation> {
        self.observations.binary_search_by_key(&t, |o| o.time()).ok().map(|i| &self.observations[i])
    }

    /// The latest observation at or before `t`, if any.
    pub fn observation_at_or_before(&self, t: u32) -> Option<&Observation> {
        match self.observations.binary_search_by_key(&t, |o| o.time()) {
            Ok(i) => Some(&self.observations[i]),
            Err(0) => None,
            Err(i) => Some(&self.observations[i - 1]),
        }
    }

    /// The anchor distribution (initial `P(o, t_anchor)`).
    pub fn initial_distribution(&self) -> &SparseVector {
        self.anchor().distribution()
    }

    /// Dimension of the state space the object lives in.
    pub fn num_states(&self) -> usize {
        self.anchor().num_states()
    }

    /// True when more than one observation is attached (interpolation
    /// semantics of Section VI apply).
    pub fn has_multiple_observations(&self) -> bool {
        self.observations.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(time: u32, state: usize) -> Observation {
        Observation::exact(time, 10, state).unwrap()
    }

    #[test]
    fn construction_sorts_observations() {
        let o = UncertainObject::new(1, vec![obs(7, 2), obs(3, 1)]).unwrap();
        assert_eq!(o.id(), 1);
        assert_eq!(o.anchor().time(), 3);
        assert_eq!(o.last_observation().time(), 7);
        assert!(o.has_multiple_observations());
        assert_eq!(o.num_states(), 10);
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert_eq!(UncertainObject::new(1, vec![]), Err(QueryError::NoObservations));
        assert_eq!(
            UncertainObject::new(1, vec![obs(3, 1), obs(3, 2)]),
            Err(QueryError::DuplicateObservation { time: 3 })
        );
    }

    #[test]
    fn rejects_mixed_dimensions() {
        let a = Observation::exact(0, 10, 1).unwrap();
        let b = Observation::exact(1, 12, 1).unwrap();
        assert!(matches!(
            UncertainObject::new(1, vec![a, b]),
            Err(QueryError::ModelDimensionMismatch { .. })
        ));
    }

    #[test]
    fn observation_lookup() {
        let o = UncertainObject::new(1, vec![obs(2, 0), obs(5, 1), obs(9, 2)]).unwrap();
        assert_eq!(o.observation_at(5).unwrap().time(), 5);
        assert!(o.observation_at(4).is_none());
        assert_eq!(o.observation_at_or_before(4).unwrap().time(), 2);
        assert_eq!(o.observation_at_or_before(9).unwrap().time(), 9);
        assert_eq!(o.observation_at_or_before(100).unwrap().time(), 9);
        assert!(o.observation_at_or_before(1).is_none());
    }

    #[test]
    fn model_assignment() {
        let o = UncertainObject::with_single_observation(4, obs(0, 0)).with_model(2);
        assert_eq!(o.model(), 2);
        assert!(!o.has_multiple_observations());
        assert_eq!(o.initial_distribution().get(0), 1.0);
    }
}
