//! The uncertain-trajectory database `D`.
//!
//! Holds the transition models (one shared chain in the common case the
//! paper optimizes for, or several per-class chains as discussed in
//! Section V-C) and the uncertain objects referencing them.

use std::fmt;
use std::sync::{Arc, OnceLock};

use ust_markov::MarkovChain;
use ust_space::StateSpace;

use crate::error::{QueryError, Result};
use crate::index::SpatioTemporalIndex;
use crate::object::UncertainObject;
use crate::observation::Observation;

/// Outcome of feeding one observation into the database via
/// [`TrajectoryDatabase::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The fix is at or after the object's stored fix and replaced it.
    Applied,
    /// The fix predates the stored one (out-of-order arrival) and was
    /// ignored; the database is unchanged.
    IgnoredStale,
}

/// A database of uncertain spatio-temporal objects over one or more
/// transition models.
///
/// The storage lives behind a shared handle: [`Clone`] is a cheap
/// reference-count bump, and a clone is a consistent **snapshot** — a later
/// [`TrajectoryDatabase::insert`] through one handle copies the object
/// store on write and leaves every other handle untouched. This is what
/// lets [`crate::engine::QueryProcessor::submit`] hand an asynchronous
/// query its own owned view of the database without copying the data or
/// blocking the submitting thread. The transition models themselves are
/// `Arc`-shared one level deeper, so snapshots keep serving the same cached
/// backward fields (the field cache keys on the chain allocation).
#[derive(Debug, Clone)]
pub struct TrajectoryDatabase {
    inner: Arc<DbInner>,
}

struct DbInner {
    models: Vec<Arc<MarkovChain>>,
    objects: Vec<UncertainObject>,
    /// Spatial embedding of the state space, when one has been attached;
    /// required for the planner's spatio-temporal prefilter.
    space: Option<Arc<dyn StateSpace + Send + Sync>>,
    /// Lazily built candidate index over this exact object store. Cleared
    /// on every mutation (see [`TrajectoryDatabase::insert`]), so a
    /// populated slot always describes the snapshot it lives in.
    index: OnceLock<Arc<SpatioTemporalIndex>>,
}

impl Clone for DbInner {
    fn clone(&self) -> Self {
        // Copy-on-write invalidation: the freshly copied store starts with
        // an empty index slot and rebuilds lazily on first use, while the
        // source snapshot keeps its index.
        DbInner {
            models: self.models.clone(),
            objects: self.objects.clone(),
            space: self.space.clone(),
            index: OnceLock::new(),
        }
    }
}

impl fmt::Debug for DbInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DbInner")
            .field("models", &self.models)
            .field("objects", &self.objects)
            .field("space", &self.space.as_ref().map(|s| s.num_states()))
            .field("index", &self.index.get().is_some())
            .finish()
    }
}

impl TrajectoryDatabase {
    /// Creates a database with a single shared model (the paper's primary
    /// setting: "all objects follow the same model").
    pub fn new(chain: MarkovChain) -> Self {
        TrajectoryDatabase {
            inner: Arc::new(DbInner {
                models: vec![Arc::new(chain)],
                objects: Vec::new(),
                space: None,
                index: OnceLock::new(),
            }),
        }
    }

    /// Creates a database with several models (e.g. buses / trucks / cars).
    pub fn with_models(chains: Vec<MarkovChain>) -> Result<Self> {
        if chains.is_empty() {
            return Err(QueryError::UnknownModel { model: 0 });
        }
        let dim = chains[0].num_states();
        for c in &chains {
            if c.num_states() != dim {
                return Err(QueryError::ModelDimensionMismatch {
                    model_states: dim,
                    object_states: c.num_states(),
                });
            }
        }
        Ok(TrajectoryDatabase {
            inner: Arc::new(DbInner {
                models: chains.into_iter().map(Arc::new).collect(),
                objects: Vec::new(),
                space: None,
                index: OnceLock::new(),
            }),
        })
    }

    /// Attaches a spatial embedding of the state space, enabling the
    /// planner's index-accelerated candidate pruning
    /// ([`TrajectoryDatabase::spatial_index`]). The embedding must cover
    /// exactly the model dimension.
    pub fn attach_space(&mut self, space: Arc<dyn StateSpace + Send + Sync>) -> Result<()> {
        if space.num_states() != self.num_states() {
            return Err(QueryError::ModelDimensionMismatch {
                model_states: self.num_states(),
                object_states: space.num_states(),
            });
        }
        let inner = Arc::make_mut(&mut self.inner);
        inner.space = Some(space);
        inner.index.take();
        Ok(())
    }

    /// The attached spatial embedding, if any.
    pub fn space(&self) -> Option<&Arc<dyn StateSpace + Send + Sync>> {
        self.inner.space.as_ref()
    }

    /// The spatio-temporal candidate index for this snapshot, building it
    /// on first use. `None` until a space is attached
    /// ([`TrajectoryDatabase::attach_space`]). The index is shared with
    /// clones taken *after* it was built and dropped from handles that
    /// mutate (insert / attach), so it always describes the snapshot that
    /// returns it.
    pub fn spatial_index(&self) -> Option<Arc<SpatioTemporalIndex>> {
        let space = self.inner.space.as_ref()?;
        let index = self
            .inner
            .index
            .get_or_init(|| Arc::new(SpatioTemporalIndex::build(self, Arc::clone(space))));
        Some(Arc::clone(index))
    }

    /// Adds an object after validating its model reference and dimensions.
    ///
    /// If other handles (clones, in-flight asynchronous queries) still
    /// share the storage, the object store is copied first — existing
    /// snapshots never observe the insertion.
    pub fn insert(&mut self, object: UncertainObject) -> Result<()> {
        let model = object.model();
        let chain = self.inner.models.get(model).ok_or(QueryError::UnknownModel { model })?;
        if object.num_states() != chain.num_states() {
            return Err(QueryError::ModelDimensionMismatch {
                model_states: chain.num_states(),
                object_states: object.num_states(),
            });
        }
        // A built index survives the insertion incrementally (overlay
        // entry) unless it is due for compaction, in which case the slot
        // stays empty and the next read rebuilds in bulk.
        let prev_index = self.inner.index.get().cloned();
        let idx = {
            let inner = Arc::make_mut(&mut self.inner);
            let idx = inner.objects.len();
            inner.objects.push(object);
            // When this handle was the sole owner, make_mut mutated in
            // place — drop the index explicitly so it can never describe a
            // stale store.
            inner.index.take();
            idx
        };
        self.refresh_index(prev_index, idx);
        Ok(())
    }

    /// Feeds one new observation for the object with id `object_id` — the
    /// streaming ingest path.
    ///
    /// The database keeps each object's **latest fix** (the paper's engines
    /// anchor at the most recent observation and extrapolate forward, so a
    /// newer sighting supersedes the stored one): a fix at or after the
    /// stored fix replaces it ([`IngestOutcome::Applied`]), an older
    /// out-of-order fix is ignored ([`IngestOutcome::IgnoredStale`]). Per
    /// object, anchors are therefore monotone non-decreasing and the
    /// database state is a pure function of the applied feed prefix —
    /// replaying the same feed always reproduces the same snapshot.
    ///
    /// Copy-on-write semantics match [`TrajectoryDatabase::insert`]:
    /// existing clones never observe the mutation, and a built
    /// [`SpatioTemporalIndex`] is updated incrementally instead of being
    /// rebuilt from scratch.
    pub fn ingest(&mut self, object_id: u64, observation: Observation) -> Result<IngestOutcome> {
        let idx = self
            .inner
            .objects
            .iter()
            .position(|o| o.id() == object_id)
            .ok_or(QueryError::UnknownObject { id: object_id })?;
        let current = &self.inner.objects[idx];
        let model = current.model();
        let chain = &self.inner.models[model];
        if observation.num_states() != chain.num_states() {
            return Err(QueryError::ModelDimensionMismatch {
                model_states: chain.num_states(),
                object_states: observation.num_states(),
            });
        }
        if observation.time() < current.anchor().time() {
            return Ok(IngestOutcome::IgnoredStale);
        }
        let prev_index = self.inner.index.get().cloned();
        {
            let inner = Arc::make_mut(&mut self.inner);
            inner.objects[idx] =
                UncertainObject::with_single_observation(object_id, observation).with_model(model);
            inner.index.take();
        }
        self.refresh_index(prev_index, idx);
        Ok(IngestOutcome::Applied)
    }

    /// The database index of the object with the given id, if present.
    pub fn index_of(&self, object_id: u64) -> Option<usize> {
        self.inner.objects.iter().position(|o| o.id() == object_id)
    }

    /// Installs the incrementally updated successor of `prev` (if any) into
    /// this handle's empty index slot, covering the mutated object at
    /// `idx`. Past the compaction threshold the slot is left empty — the
    /// next [`TrajectoryDatabase::spatial_index`] read rebuilds in bulk.
    fn refresh_index(&self, prev: Option<Arc<SpatioTemporalIndex>>, idx: usize) {
        if let Some(prev) = prev {
            if !prev.wants_compaction() {
                let updated = prev.with_updated(idx, &self.inner.objects[idx]);
                let _ = self.inner.index.set(Arc::new(updated));
            }
        }
    }

    /// Bulk insert.
    pub fn insert_all<I: IntoIterator<Item = UncertainObject>>(
        &mut self,
        objects: I,
    ) -> Result<()> {
        for o in objects {
            self.insert(o)?;
        }
        Ok(())
    }

    /// Number of objects `|D|`.
    pub fn len(&self) -> usize {
        self.inner.objects.len()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.objects.is_empty()
    }

    /// Number of states of the (shared-dimension) state space.
    pub fn num_states(&self) -> usize {
        self.inner.models[0].num_states()
    }

    /// All objects.
    pub fn objects(&self) -> &[UncertainObject] {
        &self.inner.objects
    }

    /// The object with database index `idx`.
    pub fn object(&self, idx: usize) -> Option<&UncertainObject> {
        self.inner.objects.get(idx)
    }

    /// All transition models.
    pub fn models(&self) -> &[Arc<MarkovChain>] {
        &self.inner.models
    }

    /// The model a given object follows.
    pub fn model_of(&self, object: &UncertainObject) -> &Arc<MarkovChain> {
        &self.inner.models[object.model()]
    }

    /// The shared model, when there is exactly one.
    pub fn shared_model(&self) -> Option<&Arc<MarkovChain>> {
        if self.inner.models.len() == 1 {
            Some(&self.inner.models[0])
        } else {
            None
        }
    }

    /// Groups object indices by model index (used by the query-based engine
    /// to amortize one backward pass per model, per Section V-C).
    pub fn objects_by_model(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.inner.models.len()];
        for (idx, o) in self.inner.objects.iter().enumerate() {
            groups[o.model()].push(idx);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;
    use ust_markov::CsrMatrix;

    fn chain3() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn object(id: u64, state: usize) -> UncertainObject {
        UncertainObject::with_single_observation(id, Observation::exact(0, 3, state).unwrap())
    }

    #[test]
    fn insert_and_query_objects() {
        let mut db = TrajectoryDatabase::new(chain3());
        db.insert(object(1, 0)).unwrap();
        db.insert(object(2, 1)).unwrap();
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.num_states(), 3);
        assert_eq!(db.object(0).unwrap().id(), 1);
        assert!(db.object(5).is_none());
        assert!(db.shared_model().is_some());
    }

    #[test]
    fn insert_validates_model_and_dimension() {
        let mut db = TrajectoryDatabase::new(chain3());
        let bad_model = object(3, 0).with_model(7);
        assert_eq!(db.insert(bad_model), Err(QueryError::UnknownModel { model: 7 }));
        let bad_dim =
            UncertainObject::with_single_observation(4, Observation::exact(0, 5, 0).unwrap());
        assert!(matches!(db.insert(bad_dim), Err(QueryError::ModelDimensionMismatch { .. })));
    }

    #[test]
    fn multi_model_grouping() {
        let mut db = TrajectoryDatabase::with_models(vec![chain3(), chain3()]).unwrap();
        db.insert_all([object(1, 0), object(2, 1).with_model(1), object(3, 2)]).unwrap();
        assert!(db.shared_model().is_none());
        let groups = db.objects_by_model();
        assert_eq!(groups, vec![vec![0, 2], vec![1]]);
        assert_eq!(db.model_of(db.object(1).unwrap()).num_states(), 3);
    }

    #[test]
    fn clones_are_snapshots_with_shared_models() {
        let mut db = TrajectoryDatabase::new(chain3());
        db.insert(object(1, 0)).unwrap();
        let snapshot = db.clone();
        // The clone shares the model allocation (cache keys stay valid)...
        assert!(Arc::ptr_eq(&db.models()[0], &snapshot.models()[0]));
        // ...and an insert through one handle never reaches the other.
        db.insert(object(2, 1)).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot.object(0).unwrap().id(), 1);
    }

    #[test]
    fn spatial_index_is_lazy_and_invalidated_on_write() {
        use ust_space::LineSpace;

        let mut db = TrajectoryDatabase::new(chain3());
        db.insert(object(1, 0)).unwrap();
        assert!(db.spatial_index().is_none(), "no index before a space is attached");

        db.attach_space(Arc::new(LineSpace::new(3))).unwrap();
        let first = db.spatial_index().expect("index builds lazily");
        assert_eq!(first.num_objects(), 1);
        // Repeated reads return the same build.
        assert!(Arc::ptr_eq(&first, &db.spatial_index().unwrap()));

        // A snapshot taken now shares the built index...
        let snapshot = db.clone();
        assert!(Arc::ptr_eq(&first, &snapshot.spatial_index().unwrap()));

        // ...while an insert invalidates the writer's copy but not the
        // snapshot's.
        db.insert(object(2, 1)).unwrap();
        let rebuilt = db.spatial_index().unwrap();
        assert!(!Arc::ptr_eq(&first, &rebuilt));
        assert_eq!(rebuilt.num_objects(), 2);
        assert_eq!(snapshot.spatial_index().unwrap().num_objects(), 1);
    }

    #[test]
    fn sole_owner_insert_still_invalidates_index() {
        use ust_space::LineSpace;

        let mut db = TrajectoryDatabase::new(chain3());
        db.attach_space(Arc::new(LineSpace::new(3))).unwrap();
        db.insert(object(1, 0)).unwrap();
        let before = db.spatial_index().unwrap();
        // No other handle exists: make_mut mutates in place, so the
        // explicit invalidation is what protects the index here.
        db.insert(object(2, 1)).unwrap();
        let after = db.spatial_index().unwrap();
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(after.num_objects(), 2);
    }

    #[test]
    fn ingest_keeps_the_latest_fix_and_ignores_stale_ones() {
        let mut db = TrajectoryDatabase::new(chain3());
        db.insert(object(1, 0)).unwrap();
        let snapshot = db.clone();

        // A newer fix replaces the stored one.
        assert_eq!(db.ingest(1, Observation::exact(4, 3, 2).unwrap()), Ok(IngestOutcome::Applied));
        assert_eq!(db.object(0).unwrap().anchor().time(), 4);
        // An equal-time fix also applies (replacement, e.g. a corrected
        // reading for the same instant).
        assert_eq!(db.ingest(1, Observation::exact(4, 3, 1).unwrap()), Ok(IngestOutcome::Applied));
        let support: Vec<usize> =
            db.object(0).unwrap().anchor().distribution().iter().map(|(s, _)| s).collect();
        assert_eq!(support, vec![1]);
        // An out-of-order fix is ignored without touching the store.
        assert_eq!(
            db.ingest(1, Observation::exact(2, 3, 0).unwrap()),
            Ok(IngestOutcome::IgnoredStale)
        );
        assert_eq!(db.object(0).unwrap().anchor().time(), 4);
        // The pre-ingest snapshot never observed any of it.
        assert_eq!(snapshot.object(0).unwrap().anchor().time(), 0);
    }

    #[test]
    fn ingest_validates_id_and_dimension() {
        let mut db = TrajectoryDatabase::new(chain3());
        db.insert(object(1, 0)).unwrap();
        assert_eq!(
            db.ingest(9, Observation::exact(1, 3, 0).unwrap()),
            Err(QueryError::UnknownObject { id: 9 })
        );
        assert!(matches!(
            db.ingest(1, Observation::exact(1, 5, 0).unwrap()),
            Err(QueryError::ModelDimensionMismatch { .. })
        ));
        assert_eq!(db.index_of(1), Some(0));
        assert_eq!(db.index_of(9), None);
    }

    #[test]
    fn ingest_updates_the_spatial_index_incrementally() {
        use ust_space::LineSpace;

        let mut db = TrajectoryDatabase::new(chain3());
        db.attach_space(Arc::new(LineSpace::new(3))).unwrap();
        db.insert(object(1, 0)).unwrap();
        db.insert(object(2, 1)).unwrap();
        let before = db.spatial_index().unwrap();
        assert_eq!(before.overlay_len(), 0);

        db.ingest(2, Observation::exact(3, 3, 2).unwrap()).unwrap();
        let after = db.spatial_index().unwrap();
        assert!(!Arc::ptr_eq(&before, &after));
        // Incremental: one overlay entry instead of a rebuild, and the
        // anchor max reflects the new fix.
        assert_eq!(after.overlay_len(), 1);
        assert_eq!(after.max_anchor_time(), 3);
        assert_eq!(before.max_anchor_time(), 0, "snapshot index untouched");
    }

    #[test]
    fn attach_space_validates_dimension() {
        use ust_space::LineSpace;

        let mut db = TrajectoryDatabase::new(chain3());
        assert!(matches!(
            db.attach_space(Arc::new(LineSpace::new(7))),
            Err(QueryError::ModelDimensionMismatch { .. })
        ));
        assert!(db.space().is_none());
        db.attach_space(Arc::new(LineSpace::new(3))).unwrap();
        assert_eq!(db.space().unwrap().num_states(), 3);
    }

    #[test]
    fn with_models_validates() {
        assert!(TrajectoryDatabase::with_models(vec![]).is_err());
        let two = MarkovChain::from_csr(CsrMatrix::identity(2)).unwrap();
        assert!(TrajectoryDatabase::with_models(vec![chain3(), two]).is_err());
    }
}
