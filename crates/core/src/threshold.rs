//! Probabilistic threshold queries with early termination.
//!
//! Applications usually ask for the objects whose query probability exceeds
//! a threshold `τ` (e.g. "icebergs with ≥ 5% chance of entering the
//! shipping lane") rather than the exact probabilities. During the
//! object-based forward pass the ⊤ mass is a monotonically growing **lower
//! bound** and `⊤ + remaining` a shrinking **upper bound** on `P∃`, so the
//! propagation can stop as soon as either bound decides `τ` — the paper's
//! remark that "computation can be stopped as soon as the probability of
//! state ⊤ becomes sufficiently large", made symmetric for rejection.

use std::ops::ControlFlow;

use ust_markov::{MarkovChain, PropagationVector, StateMask};

use crate::database::TrajectoryDatabase;
use crate::engine::object_based::{self, validate};
use crate::engine::pipeline::{BatchPhase, ForwardEvent, ObjectBatch, Propagator};
use crate::engine::{group_batchable, EngineConfig};
use crate::error::{QueryError, Result};
use crate::object::UncertainObject;
use crate::query::QueryWindow;
use crate::stats::EvalStats;

/// Time-indexed backward reachability of the query window.
///
/// `mask(t)` is the set of states from which the *remaining* window
/// (`T▫ ∩ (t, t_end]`) is reachable along the chain's non-zero transitions.
/// Mass outside `mask(t)` can never contribute to ⊤ anymore, so the upper
/// bound tightens from `hit + alive` to `hit + alive∩mask(t)` — this is the
/// structural pruning the paper folds into the `M+` matrices, hoisted out
/// as a per-query precomputation shared by all objects.
#[derive(Debug, Clone)]
pub struct ReachabilityPruner {
    t0: u32,
    masks: Vec<StateMask>,
}

impl ReachabilityPruner {
    /// Builds the masks for times `t0..=t_end` (one backward sweep over the
    /// transposed chain).
    pub fn build(chain: &MarkovChain, window: &QueryWindow, t0: u32) -> Result<ReachabilityPruner> {
        let n = chain.num_states();
        let t_end = window.t_end();
        let steps = (t_end - t0.min(t_end)) as usize;
        let transposed = chain.transposed();
        let mut masks: Vec<StateMask> = Vec::with_capacity(steps + 1);
        // At t_end nothing of the window remains ahead.
        masks.push(StateMask::new(n));
        let mut current = StateMask::new(n);
        let mut t = t_end;
        while t > t0.min(t_end) {
            // Target of a transition out of time t-1: remaining-window
            // reachable states at t, plus the window itself when t ∈ T▫.
            let target = if window.time_in_window(t) {
                current.union(window.states())?
            } else {
                current.clone()
            };
            let mut prev = StateMask::new(n);
            if target.count() == n {
                prev = StateMask::full(n);
            } else {
                for s in target.iter() {
                    let (preds, _) = transposed.row(s);
                    for &p in preds {
                        let _ = prev.insert(p as usize);
                    }
                }
            }
            masks.push(prev.clone());
            current = prev;
            t -= 1;
        }
        masks.reverse();
        Ok(ReachabilityPruner { t0: t0.min(t_end), masks })
    }

    /// The reachability mask at time `t` (None when `t` is out of range).
    pub fn mask_at(&self, t: u32) -> Option<&StateMask> {
        self.masks.get((t.checked_sub(self.t0)?) as usize)
    }
}

/// Outcome of a thresholded PST∃Q on one object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdOutcome {
    /// True when `P∃ ≥ τ`.
    pub qualifies: bool,
    /// Lower bound on `P∃` at the decision point.
    pub lower: f64,
    /// Upper bound on `P∃` at the decision point.
    pub upper: f64,
    /// True when the decision was reached before `t_end`.
    pub early: bool,
}

/// Thresholded PST∃Q for one object (object-based with bound-based early
/// termination).
pub fn exists_threshold(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    tau: f64,
    config: &EngineConfig,
) -> Result<ThresholdOutcome> {
    exists_threshold_with_stats(chain, object, window, tau, config, &mut EvalStats::new())
}

/// As [`exists_threshold`], accumulating counters.
pub fn exists_threshold_with_stats(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    tau: f64,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<ThresholdOutcome> {
    threshold_driver(&mut Propagator::new(config, stats), chain, object, window, tau, None)
}

/// As [`exists_threshold_with_stats`], additionally using a
/// [`ReachabilityPruner`] to tighten the upper bound: alive mass outside
/// the remaining window's backward-reachable set can never hit.
pub fn exists_threshold_pruned(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    tau: f64,
    config: &EngineConfig,
    pruner: &ReachabilityPruner,
    stats: &mut EvalStats,
) -> Result<ThresholdOutcome> {
    threshold_driver(&mut Propagator::new(config, stats), chain, object, window, tau, Some(pruner))
}

/// The thresholded-∃ driver on the shared pipeline: the accumulation rule
/// is the ⊤ redirect of the OB engine, and the decision rule compares the
/// monotone lower bound `⊤` / shrinking upper bound `⊤ + alive` against
/// `τ` after every timestamp, stopping the sweep at the first decision.
fn threshold_driver(
    pipeline: &mut Propagator<'_>,
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    tau: f64,
    pruner: Option<&ReachabilityPruner>,
) -> Result<ThresholdOutcome> {
    validate(chain, object, window)?;
    let anchor = object.anchor();
    let t0 = anchor.time();
    let t_end = window.t_end();

    let mut rows = [pipeline.seed(anchor.distribution().clone())];
    let mut hit = 0.0;
    let mut remaining_query_times = window.times().iter().filter(|&t| t > t0).count();
    let mut decision: Option<(bool, f64, f64)> = None;

    let alive = |rows: &[PropagationVector], t: u32| -> f64 {
        match pruner.and_then(|p| p.mask_at(t)) {
            Some(mask) => rows[0].masked_sum(mask),
            None => rows[0].sum(),
        }
    };

    let decided_at =
        pipeline.forward_until(chain.matrix(), &mut rows, t0, window, |event| match event {
            ForwardEvent::Window { rows, t } => {
                hit += rows[0].extract_masked(window.states());
                if t > t0 {
                    remaining_query_times -= 1;
                }
                Ok(ControlFlow::Continue(()))
            }
            ForwardEvent::StepEnd { rows, t } => {
                // With no query timestamps left, no more mass can reach ⊤.
                let upper =
                    if remaining_query_times == 0 { hit } else { (hit + alive(rows, t)).min(1.0) };
                if hit >= tau {
                    decision = Some((true, hit, upper));
                    Ok(ControlFlow::Break(()))
                } else if upper < tau {
                    decision = Some((false, hit, upper));
                    Ok(ControlFlow::Break(()))
                } else {
                    Ok(ControlFlow::Continue(()))
                }
            }
        })?;

    match decided_at {
        Some(t) => {
            let early = t < t_end;
            if early {
                pipeline.stats().early_terminations += 1;
            }
            pipeline.stats().objects_evaluated += 1;
            let (qualifies, lower, upper) =
                decision.ok_or(QueryError::internal("an early break always records a decision"))?;
            Ok(ThresholdOutcome { qualifies, lower, upper, early })
        }
        None => {
            // Ran to t_end undecided: the bounds have met at `hit`.
            Ok(ThresholdOutcome { qualifies: hit >= tau, lower: hit, upper: hit, early: false })
        }
    }
}

/// The batched thresholded-∃ driver over an explicit set of database object
/// indices (one `ShardedExecutor` worker's share). Returns one
/// [`ThresholdOutcome`] per index, in order.
///
/// Objects grouped by `(model, anchor time)` propagate together through the
/// batched kernel; after every timestamp each live object's bounds are
/// compared against `τ`, and decided objects drop out of the batch —
/// without stopping the sweep for the undecided rest. Decisions and bounds
/// are bit-for-bit identical to [`exists_threshold_pruned`].
pub(crate) fn threshold_batched(
    pipeline: &mut Propagator<'_>,
    db: &TrajectoryDatabase,
    indices: &[usize],
    window: &QueryWindow,
    tau: f64,
) -> Result<Vec<ThresholdOutcome>> {
    object_based::validate_indices(db, indices, window)?;
    let batch_size = pipeline.config().effective_batch_size();
    let t_end = window.t_end();
    let mut results: Vec<Option<ThresholdOutcome>> = vec![None; indices.len()];
    for ((model, t0), members) in group_batchable(db, indices)? {
        let chain = &db.models()[model];
        let pruner = ReachabilityPruner::build(chain, window, t0)?;
        for chunk in members.chunks(batch_size) {
            let mut rows = object_based::seed_anchor_rows(pipeline, db, indices, chunk)?;
            let mut batch = ObjectBatch::new(&mut rows, 1)?;
            let mut hits = vec![0.0f64; chunk.len()];
            let mut outcomes: Vec<Option<ThresholdOutcome>> = vec![None; chunk.len()];
            // The remaining-window count is shared: every member anchors at
            // the same t0.
            let mut remaining_query_times = window.times().iter().filter(|&t| t > t0).count();
            pipeline.forward_batch(chain.matrix(), &mut batch, t0, window, |phase, batch, t| {
                match phase {
                    BatchPhase::Window => {
                        object_based::accumulate_exists_hits(batch, &mut hits, window);
                        if t > t0 {
                            remaining_query_times -= 1;
                        }
                    }
                    BatchPhase::StepEnd => {
                        for (g, outcome) in outcomes.iter_mut().enumerate() {
                            if !batch.is_active(g) {
                                continue;
                            }
                            let hit = hits[g];
                            // With no query timestamps left, no more
                            // mass can reach ⊤.
                            let upper = if remaining_query_times == 0 {
                                hit
                            } else {
                                let alive = match pruner.mask_at(t) {
                                    Some(mask) => batch.group(g)[0].masked_sum(mask),
                                    None => batch.group(g)[0].sum(),
                                };
                                (hit + alive).min(1.0)
                            };
                            let decision = if hit >= tau {
                                Some(true)
                            } else if upper < tau {
                                Some(false)
                            } else {
                                None
                            };
                            if let Some(qualifies) = decision {
                                let early = t < t_end;
                                *outcome =
                                    Some(ThresholdOutcome { qualifies, lower: hit, upper, early });
                                batch.deactivate(g);
                            }
                        }
                    }
                }
                Ok(ControlFlow::Continue(()))
            })?;
            for (g, &pos) in chunk.iter().enumerate() {
                results[pos] = Some(match outcomes[g].take() {
                    Some(outcome) => {
                        // The decision is the driver's outcome: account it
                        // the way the single-object driver does.
                        if outcome.early {
                            pipeline.stats().early_terminations += 1;
                        }
                        pipeline.stats().objects_evaluated += 1;
                        outcome
                    }
                    // Ran to t_end undecided (or its mass ran out): the
                    // bounds have met at `hit`; the pipeline already counted
                    // the evaluation.
                    None => ThresholdOutcome {
                        qualifies: hits[g] >= tau,
                        lower: hits[g],
                        upper: hits[g],
                        early: false,
                    },
                });
            }
        }
    }
    results
        .into_iter()
        .map(|r| r.ok_or(QueryError::internal("the batch loop covers every position")))
        .collect()
}

/// Ids of all database objects with `P∃ ≥ τ`, answered from cached
/// query-based backward fields: one dot product per object against the
/// `(model, window)` field served by `cache`, so a repeated or overlapping
/// window pays no backward sweep at all. Exact (the dot product yields the
/// full probability), and shares its cache entries with
/// [`crate::ranking::topk_query_based_with_cache`] and
/// [`crate::engine::query_based::evaluate_with_cache`].
pub fn threshold_query_cached(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    tau: f64,
    config: &EngineConfig,
    cache: &mut crate::engine::cache::BackwardFieldCache,
    stats: &mut EvalStats,
) -> Result<Vec<u64>> {
    let all = crate::engine::query_based::evaluate_with_cache(db, window, config, cache, stats)?;
    Ok(all.into_iter().filter(|r| r.probability >= tau).map(|r| r.object_id).collect())
}

/// Ids of all database objects with `P∃ ≥ τ`. Builds one
/// [`ReachabilityPruner`] per (model, anchor time) and evaluates
/// [`EngineConfig::batch_size`] objects per shared propagation batch, with
/// tight bound-based early termination per object; shards across
/// [`EngineConfig::num_threads`] workers.
pub fn threshold_query(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    tau: f64,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<u64>> {
    crate::parallel::threshold_query_parallel(db, window, tau, config, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::object_based;
    use crate::observation::Observation;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn object_at_s2() -> UncertainObject {
        UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap())
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn decisions_match_exact_probability_for_all_taus() {
        let chain = paper_chain();
        let o = object_at_s2();
        let w = paper_window();
        let config = EngineConfig::default();
        let exact = object_based::exists_probability(&chain, &o, &w, &config).unwrap();
        for tau in [0.01, 0.1, 0.3, 0.5, 0.8, 0.863, 0.865, 0.99] {
            let outcome = exists_threshold(&chain, &o, &w, tau, &config).unwrap();
            assert_eq!(
                outcome.qualifies,
                exact >= tau,
                "τ = {tau}: exact {exact}, outcome {outcome:?}"
            );
            assert!(outcome.lower <= exact + 1e-12);
            assert!(outcome.upper >= exact - 1e-12);
        }
    }

    #[test]
    fn low_threshold_accepts_early() {
        // After the first window timestamp the ⊤ mass is already 0.32,
        // so τ = 0.3 must accept without propagating to t=3.
        let mut stats = EvalStats::new();
        let outcome = exists_threshold_with_stats(
            &paper_chain(),
            &object_at_s2(),
            &paper_window(),
            0.3,
            &EngineConfig::default(),
            &mut stats,
        )
        .unwrap();
        assert!(outcome.qualifies);
        assert!(outcome.early);
        assert_eq!(stats.transitions, 2);
        assert_eq!(stats.early_terminations, 1);
    }

    #[test]
    fn unreachable_window_rejects_early() {
        // Query on a state that s1-anchored worlds cannot reach in 1 step
        // with τ above the total reachable mass: from s1 all mass goes to
        // s3, so window {s2}×{1} has probability 0 → upper bound drops to 0
        // at t=1 < t_end=1 edge; use τ > 0 with a longer horizon instead.
        let o = UncertainObject::with_single_observation(2, Observation::exact(0, 3, 0).unwrap());
        let w = QueryWindow::from_states(3, [1usize], TimeSet::at(1)).unwrap();
        let outcome =
            exists_threshold(&paper_chain(), &o, &w, 0.5, &EngineConfig::default()).unwrap();
        assert!(!outcome.qualifies);
        assert_eq!(outcome.upper, 0.0);
    }

    #[test]
    fn anchor_in_window_can_decide_before_any_transition() {
        let o = UncertainObject::with_single_observation(3, Observation::exact(2, 3, 0).unwrap());
        let mut stats = EvalStats::new();
        let outcome = exists_threshold_with_stats(
            &paper_chain(),
            &o,
            &paper_window(),
            0.9,
            &EngineConfig::default(),
            &mut stats,
        )
        .unwrap();
        assert!(outcome.qualifies);
        assert!(outcome.early);
        assert_eq!(stats.transitions, 0);
    }

    #[test]
    fn reachability_pruner_masks_shrink_near_t_end() {
        let chain = paper_chain();
        let window = paper_window();
        let pruner = ReachabilityPruner::build(&chain, &window, 0).unwrap();
        // At t_end nothing remains ahead.
        assert_eq!(pruner.mask_at(3).unwrap().count(), 0);
        // At t=2: states that can enter {s1, s2} at t=3 → predecessors of
        // the window: s2 (→s1) and s3 (→s2).
        assert_eq!(pruner.mask_at(2).unwrap().to_indices(), vec![1, 2]);
        // Earlier masks can only grow (window reachable from everywhere).
        assert_eq!(pruner.mask_at(0).unwrap().count(), 3);
        assert!(pruner.mask_at(4).is_none());
    }

    #[test]
    fn pruned_threshold_matches_unpruned_decisions() {
        let chain = paper_chain();
        let o = object_at_s2();
        let w = paper_window();
        let config = EngineConfig::default();
        let pruner = ReachabilityPruner::build(&chain, &w, 0).unwrap();
        for tau in [0.05, 0.3, 0.5, 0.8, 0.9] {
            let plain = exists_threshold(&chain, &o, &w, tau, &config).unwrap();
            let pruned = exists_threshold_pruned(
                &chain,
                &o,
                &w,
                tau,
                &config,
                &pruner,
                &mut EvalStats::new(),
            )
            .unwrap();
            assert_eq!(plain.qualifies, pruned.qualifies, "τ = {tau}");
            assert!(pruned.upper <= plain.upper + 1e-12, "pruned bound must be tighter");
        }
    }

    #[test]
    fn pruner_rejects_unreachable_objects_immediately() {
        // A 5-state "conveyor belt" moving right: an object at state 4
        // (the absorbing end) can never come back to state 0.
        let chain = MarkovChain::from_csr(
            CsrMatrix::from_dense(&[
                vec![0.0, 1.0, 0.0, 0.0, 0.0],
                vec![0.0, 0.0, 1.0, 0.0, 0.0],
                vec![0.0, 0.0, 0.0, 1.0, 0.0],
                vec![0.0, 0.0, 0.0, 0.0, 1.0],
                vec![0.0, 0.0, 0.0, 0.0, 1.0],
            ])
            .unwrap(),
        )
        .unwrap();
        let o = UncertainObject::with_single_observation(1, Observation::exact(0, 5, 4).unwrap());
        let w = QueryWindow::from_states(5, [0usize], TimeSet::interval(3, 8)).unwrap();
        let pruner = ReachabilityPruner::build(&chain, &w, 0).unwrap();
        let mut stats = EvalStats::new();
        let outcome = exists_threshold_pruned(
            &chain,
            &o,
            &w,
            0.01,
            &EngineConfig::default(),
            &pruner,
            &mut stats,
        )
        .unwrap();
        assert!(!outcome.qualifies);
        assert!(outcome.early);
        assert_eq!(stats.transitions, 0, "decided before any propagation");
    }

    #[test]
    fn batch_threshold_query() {
        let mut db = TrajectoryDatabase::new(paper_chain());
        for (i, s) in [0usize, 1, 2].into_iter().enumerate() {
            db.insert(UncertainObject::with_single_observation(
                i as u64,
                Observation::exact(0, 3, s).unwrap(),
            ))
            .unwrap();
        }
        // Exact probabilities are (0.96, 0.864, 0.928).
        let accepted = threshold_query(
            &db,
            &paper_window(),
            0.9,
            &EngineConfig::default(),
            &mut EvalStats::new(),
        )
        .unwrap();
        assert_eq!(accepted, vec![0, 2]);
    }
}
