//! Object observations.
//!
//! An observation fixes (exactly or with uncertainty) the location of an
//! object at one timestamp — a GPS fix, an iceberg sighting, a sensor
//! reading. Per the paper, "an observation at a specific time may be precise
//! or uncertain": we store a normalized sparse distribution over states.

use ust_markov::{SparseVector, StateMask};

use crate::error::{QueryError, Result};

/// A (possibly uncertain) location observation at a discrete timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    time: u32,
    distribution: SparseVector,
}

impl Observation {
    /// An exact observation: the object is at `state` with certainty.
    pub fn exact(time: u32, num_states: usize, state: usize) -> Result<Self> {
        let distribution = SparseVector::unit(num_states, state)?;
        Ok(Observation { time, distribution })
    }

    /// An uncertain observation from a (not necessarily normalized)
    /// non-negative weight vector; normalized on construction.
    pub fn uncertain(time: u32, mut distribution: SparseVector) -> Result<Self> {
        for (_, v) in distribution.iter() {
            if v < 0.0 || !v.is_finite() {
                return Err(QueryError::Markov(ust_markov::MarkovError::InvalidProbability {
                    value: v,
                }));
            }
        }
        distribution.normalize().map_err(QueryError::from)?;
        Ok(Observation { time, distribution })
    }

    /// A uniform observation over a set of candidate states (e.g. "somewhere
    /// within this sighting ellipse").
    pub fn uniform_over(time: u32, num_states: usize, states: &StateMask) -> Result<Self> {
        if states.is_empty() {
            return Err(QueryError::Markov(ust_markov::MarkovError::Empty {
                what: "observation support",
            }));
        }
        let p = 1.0 / states.count() as f64;
        let distribution = SparseVector::from_pairs(num_states, states.iter().map(|s| (s, p)))?;
        Ok(Observation { time, distribution })
    }

    /// The observation timestamp.
    pub fn time(&self) -> u32 {
        self.time
    }

    /// The normalized location distribution.
    pub fn distribution(&self) -> &SparseVector {
        &self.distribution
    }

    /// Number of states the observation considers possible.
    pub fn support_size(&self) -> usize {
        self.distribution.nnz()
    }

    /// Dimension of the underlying state space.
    pub fn num_states(&self) -> usize {
        self.distribution.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_observation_is_one_hot() {
        let o = Observation::exact(5, 10, 3).unwrap();
        assert_eq!(o.time(), 5);
        assert_eq!(o.support_size(), 1);
        assert_eq!(o.distribution().get(3), 1.0);
        assert!(Observation::exact(5, 10, 10).is_err());
    }

    #[test]
    fn uncertain_observation_normalizes() {
        let raw = SparseVector::from_pairs(6, [(1, 2.0), (4, 6.0)]).unwrap();
        let o = Observation::uncertain(0, raw).unwrap();
        assert!((o.distribution().get(1) - 0.25).abs() < 1e-12);
        assert!((o.distribution().get(4) - 0.75).abs() < 1e-12);
        assert_eq!(o.num_states(), 6);
    }

    #[test]
    fn uncertain_rejects_negative_and_zero_mass() {
        let neg = SparseVector::from_pairs(3, [(0, -1.0), (1, 2.0)]).unwrap();
        assert!(Observation::uncertain(0, neg).is_err());
        assert!(Observation::uncertain(0, SparseVector::zeros(3)).is_err());
    }

    #[test]
    fn uniform_over_mask() {
        let mask = StateMask::from_indices(8, [2usize, 5, 6]).unwrap();
        let o = Observation::uniform_over(3, 8, &mask).unwrap();
        assert_eq!(o.support_size(), 3);
        assert!((o.distribution().get(5) - 1.0 / 3.0).abs() < 1e-12);
        assert!(Observation::uniform_over(3, 8, &StateMask::new(8)).is_err());
    }
}
