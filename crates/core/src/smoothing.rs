//! Forward–backward location inference.
//!
//! Section VI of the paper interpolates between observations to answer
//! window queries; the same machinery answers the more basic question
//! "where was the object at time `t`, given *all* its observations?" —
//! the classic smoothing problem of hidden Markov models. This module
//! implements it on the sparse substrate:
//!
//! * forward message `α_t(s) ∝ P(o(t) = s, obs at times ≤ t)`,
//! * backward message `β_t(s) = P(obs at times > t | o(t) = s)`,
//! * posterior `P(o(t) = s | all obs) ∝ α_t(s) · β_t(s)`.
//!
//! For `t` past the last observation this degrades gracefully to prediction
//! (`β ≡ 1`), matching Corollary 2 extrapolation.
//!
//! The α-recursion runs on the shared propagation pipeline: its schedule is
//! **observation-driven** rather than window-driven, so it uses
//! [`Propagator::forward_steps`] — the window-free sweep that fires only
//! [`ForwardEvent::StepEnd`] — and fuses each observation's likelihood when
//! the sweep reaches its timestamp. The β-recursion deliberately stays a
//! plain backward `M·β` product with evidence fusion: the pipeline's
//! backward sweep ([`Propagator::backward_from`]) is shaped by a query
//! window — its masking schedule and snapshot times have no analogue here —
//! and β propagates a *likelihood*, not probability mass, so none of the
//! window machinery applies. Smoothing also always runs the exact
//! configuration (ε-pruning would distort the posterior's normalization).

use std::ops::ControlFlow;

use ust_markov::{DenseVector, MarkovChain};

use crate::engine::pipeline::{ForwardEvent, Propagator};
use crate::engine::EngineConfig;
use crate::error::{QueryError, Result};
use crate::object::UncertainObject;
use crate::stats::EvalStats;

/// Posterior location distribution `P(o(t) = s | observations)` of
/// `object` at time `t`. Requires `t ≥` the anchor observation time.
pub fn smoothed_distribution(
    chain: &MarkovChain,
    object: &UncertainObject,
    t: u32,
) -> Result<DenseVector> {
    smoothed_distribution_with_stats(chain, object, t, &mut EvalStats::new())
}

/// As [`smoothed_distribution`], accumulating the forward pass's transition
/// counters into `stats`.
pub fn smoothed_distribution_with_stats(
    chain: &MarkovChain,
    object: &UncertainObject,
    t: u32,
    stats: &mut EvalStats,
) -> Result<DenseVector> {
    let anchor = object.anchor();
    if chain.num_states() != object.num_states() {
        return Err(QueryError::ModelDimensionMismatch {
            model_states: chain.num_states(),
            object_states: object.num_states(),
        });
    }
    if t < anchor.time() {
        return Err(QueryError::WindowBeforeObservation {
            window_start: t,
            observation: anchor.time(),
        });
    }

    // Forward pass: anchor → t on the pipeline's observation-driven
    // schedule, fusing the likelihood of every observation at times ≤ t.
    // Smoothing must stay exact (pruned mass would distort the posterior's
    // normalization), so the pipeline runs the exact configuration.
    let mut pipeline = Propagator::new(&EngineConfig::exact(), stats);
    let mut rows = [pipeline.seed(anchor.distribution().clone())];
    let mut impossible = false;
    pipeline.forward_steps(chain.matrix(), &mut rows, anchor.time(), t, |event| {
        let ForwardEvent::StepEnd { rows, t } = event else {
            // lint: allow(panicking-call-in-lib) — `forward_steps` is the
            // schedule-free propagation entry point: it emits only `StepEnd`
            // events, never the windowed variants.
            unreachable!("forward_steps has no window schedule");
        };
        if let Some(obs) = object.observation_at(t) {
            // The anchor's own observation is already the start state.
            if t > anchor.time() {
                rows[0].hadamard_sparse(obs.distribution())?;
                let total = rows[0].sum();
                if total <= 0.0 {
                    impossible = true;
                    return Ok(ControlFlow::Break(()));
                }
                rows[0].scale(1.0 / total);
            }
        }
        Ok(ControlFlow::Continue(()))
    })?;
    if impossible {
        return Err(QueryError::ImpossibleEvidence);
    }
    let [alpha] = rows;

    // Backward pass: last observation → t (β ≡ 1 when t is at/after it).
    let horizon = object.last_observation().time();
    let n = chain.num_states();
    let mut beta = DenseVector::from_vec(vec![1.0; n]);
    let mut bt = horizon.max(t);
    while bt > t {
        // Fuse the observation at time `bt` (likelihood of the evidence at
        // bt and beyond, given the state at bt).
        if let Some(obs) = object.observation_at(bt) {
            let slice = beta.as_mut_slice();
            let mut masked = vec![0.0; n];
            for (s, l) in obs.distribution().iter() {
                masked[s] = l * slice[s];
            }
            beta = DenseVector::from_vec(masked);
        }
        beta = chain.matrix().matvec_dense(&beta)?;
        bt -= 1;
    }

    // Posterior ∝ α ⊙ β.
    let mut posterior = alpha.to_dense().hadamard(&beta)?;
    posterior.normalize().map_err(|_| QueryError::ImpossibleEvidence)?;
    Ok(posterior)
}

/// Posterior distributions for a whole range of times (shares the passes'
/// cost across queries; convenience for trajectory reconstruction).
pub fn smoothed_trajectory(
    chain: &MarkovChain,
    object: &UncertainObject,
    times: std::ops::RangeInclusive<u32>,
) -> Result<Vec<(u32, DenseVector)>> {
    times.map(|t| smoothed_distribution(chain, object, t).map(|d| (t, d))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::exhaustive;
    use crate::observation::Observation;
    use crate::query::QueryWindow;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn without_future_observations_equals_forward_prediction() {
        let chain = paper_chain();
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap());
        let smoothed = smoothed_distribution(&chain, &object, 2).unwrap();
        let predicted =
            chain.propagate_dense(&DenseVector::from_vec(vec![0.0, 1.0, 0.0]), 2).unwrap();
        assert!(smoothed.approx_eq(&predicted, 1e-12));
    }

    #[test]
    fn interpolation_matches_exhaustive_marginals() {
        // P(o(t) = s | obs) equals the exists-probability of the degenerate
        // window {s} × {t} under full conditioning — use the enumeration
        // oracle to verify every state at every intermediate time.
        let chain = paper_chain();
        let object = UncertainObject::new(
            2,
            vec![
                Observation::exact(0, 3, 1).unwrap(),
                Observation::uncertain(
                    4,
                    ust_markov::SparseVector::from_pairs(3, [(1, 0.5), (2, 0.5)]).unwrap(),
                )
                .unwrap(),
            ],
        )
        .unwrap();
        for t in 1..=3u32 {
            let smoothed = smoothed_distribution(&chain, &object, t).unwrap();
            for s in 0..3usize {
                let window = QueryWindow::from_states(3, [s], TimeSet::at(t)).unwrap();
                let oracle = exhaustive::enumerate(&chain, &object, &window, 1 << 22).unwrap();
                assert!(
                    (smoothed.get(s) - oracle.exists()).abs() < 1e-12,
                    "t={t}, s={s}: smoothed {} vs oracle {}",
                    smoothed.get(s),
                    oracle.exists()
                );
            }
        }
    }

    #[test]
    fn exact_observation_pins_the_posterior() {
        let chain = paper_chain();
        let object = UncertainObject::new(
            3,
            vec![Observation::exact(0, 3, 1).unwrap(), Observation::exact(3, 3, 0).unwrap()],
        )
        .unwrap();
        let at_obs = smoothed_distribution(&chain, &object, 3).unwrap();
        assert!((at_obs.get(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn impossible_evidence_detected() {
        let chain = paper_chain();
        let object = UncertainObject::new(
            4,
            vec![Observation::exact(0, 3, 1).unwrap(), Observation::exact(1, 3, 1).unwrap()],
        )
        .unwrap();
        assert!(matches!(
            smoothed_distribution(&chain, &object, 1),
            Err(QueryError::ImpossibleEvidence)
        ));
    }

    #[test]
    fn time_before_anchor_rejected() {
        let chain = paper_chain();
        let object =
            UncertainObject::with_single_observation(5, Observation::exact(3, 3, 1).unwrap());
        assert!(matches!(
            smoothed_distribution(&chain, &object, 2),
            Err(QueryError::WindowBeforeObservation { .. })
        ));
    }

    #[test]
    fn forward_pass_counts_pipeline_transitions() {
        // The α-recursion rides the shared pipeline, so its transitions are
        // observable like any engine's.
        let chain = paper_chain();
        let object = UncertainObject::new(
            7,
            vec![Observation::exact(0, 3, 1).unwrap(), Observation::exact(3, 3, 0).unwrap()],
        )
        .unwrap();
        let mut stats = EvalStats::new();
        let posterior = smoothed_distribution_with_stats(&chain, &object, 3, &mut stats).unwrap();
        assert!((posterior.get(0) - 1.0).abs() < 1e-12);
        assert_eq!(stats.transitions, 3, "anchor → t forward steps");
        assert_eq!(stats.objects_evaluated, 1);
    }

    #[test]
    fn trajectory_reconstruction_is_normalized() {
        let chain = paper_chain();
        let object = UncertainObject::new(
            6,
            vec![Observation::exact(0, 3, 1).unwrap(), Observation::exact(5, 3, 2).unwrap()],
        )
        .unwrap();
        let trajectory = smoothed_trajectory(&chain, &object, 0..=5).unwrap();
        assert_eq!(trajectory.len(), 6);
        for (t, dist) in &trajectory {
            assert!(
                (dist.sum() - 1.0).abs() < 1e-9,
                "posterior at t={t} not normalized: {}",
                dist.sum()
            );
        }
        // Endpoints honour the exact observations.
        assert!((trajectory[0].1.get(1) - 1.0).abs() < 1e-12);
        assert!((trajectory[5].1.get(2) - 1.0).abs() < 1e-12);
    }
}
