//! Standing queries over streams of observations.
//!
//! The paper's motivating deployment is *monitoring*: the Ice Patrol keeps
//! a fixed danger region under watch while sightings trickle in. The
//! query-based machinery fits this perfectly — the backward satisfaction
//! field of a window depends only on the chain and the window, so it can be
//! computed **once** and then every incoming observation is scored with a
//! single sparse dot product, regardless of how many fixes arrive.
//!
//! [`StandingQuery`] precomputes the field for every possible anchor time;
//! [`StreamingMonitor`] maintains the latest probability per object as
//! observations arrive (latest-fix semantics: each new fix supersedes the
//! previous one, which is the standard dashboard behaviour; full Bayesian
//! fusion of *all* fixes is [`crate::multi_obs`]).

use std::collections::HashMap;
use std::sync::Arc;

use ust_markov::MarkovChain;

use crate::engine::query_based::BackwardField;
use crate::error::{QueryError, Result};
use crate::object::UncertainObject;
use crate::observation::Observation;
use crate::query::QueryWindow;
use crate::stats::EvalStats;

/// A precomputed PST∃Q whose backward field covers every anchor time in
/// `[0, t_end]`, ready to score arbitrary observations.
#[derive(Debug, Clone)]
pub struct StandingQuery {
    chain: Arc<MarkovChain>,
    window: QueryWindow,
    field: BackwardField,
}

impl StandingQuery {
    /// Builds the standing query (one backward sweep over `t_end` steps).
    pub fn new(chain: Arc<MarkovChain>, window: QueryWindow) -> Result<StandingQuery> {
        let anchor_times: Vec<u32> = (0..=window.t_end()).collect();
        let field = BackwardField::compute(&chain, &window, &anchor_times, &mut EvalStats::new())?;
        Ok(StandingQuery { chain, window, field })
    }

    /// The monitored window.
    pub fn window(&self) -> &QueryWindow {
        &self.window
    }

    /// Scores a single observation: the probability that an object whose
    /// latest fix is `obs` intersects the window at some **remaining**
    /// query time (`T▫ ∩ [obs.time(), t_end]`). Query times already in the
    /// past of the fix are unknowable from the fix alone and count as
    /// misses — the natural monitoring semantics (the batch engines instead
    /// reject such anchors with [`QueryError::WindowBeforeObservation`]).
    /// Observations after `t_end` score the trailing window membership only
    /// (0 unless the fix itself is inside an active cell).
    pub fn score(&self, obs: &Observation) -> Result<f64> {
        if obs.num_states() != self.chain.num_states() {
            return Err(QueryError::ModelDimensionMismatch {
                model_states: self.chain.num_states(),
                object_states: obs.num_states(),
            });
        }
        if obs.time() > self.window.t_end() {
            // The window lies entirely in the past of this fix.
            return Ok(if self.window.time_in_window(obs.time()) {
                obs.distribution().masked_sum(self.window.states())
            } else {
                0.0
            });
        }
        let object = UncertainObject::with_single_observation(u64::MAX, obs.clone());
        self.field.object_probability(&object, &self.window).ok_or(
            QueryError::WindowBeforeObservation {
                window_start: self.window.t_start(),
                observation: obs.time(),
            },
        )
    }
}

/// Per-object latest-fix probabilities for a standing query.
#[derive(Debug, Clone)]
pub struct StreamingMonitor {
    query: StandingQuery,
    latest: HashMap<u64, (u32, f64)>,
}

impl StreamingMonitor {
    /// Creates a monitor for the given standing query.
    pub fn new(query: StandingQuery) -> StreamingMonitor {
        StreamingMonitor { query, latest: HashMap::new() }
    }

    /// The underlying standing query.
    pub fn query(&self) -> &StandingQuery {
        &self.query
    }

    /// Ingests an observation for `object_id`, returning the object's new
    /// probability. Out-of-order fixes (older than the stored one) are
    /// ignored and return the current probability.
    pub fn observe(&mut self, object_id: u64, obs: &Observation) -> Result<f64> {
        if let Some(&(t, p)) = self.latest.get(&object_id) {
            if obs.time() < t {
                return Ok(p);
            }
        }
        let p = self.query.score(obs)?;
        self.latest.insert(object_id, (obs.time(), p));
        Ok(p)
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// True when no object has reported yet.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }

    /// The current probability of an object, if it ever reported.
    pub fn probability(&self, object_id: u64) -> Option<f64> {
        self.latest.get(&object_id).map(|&(_, p)| p)
    }

    /// All objects currently at or above `tau`, sorted by descending
    /// probability.
    pub fn above(&self, tau: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .latest
            .iter()
            .filter(|(_, &(_, p))| p >= tau)
            .map(|(&id, &(_, p))| (id, p))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{object_based, EngineConfig};
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> Arc<MarkovChain> {
        Arc::new(
            MarkovChain::from_csr(
                CsrMatrix::from_dense(&[
                    vec![0.0, 0.0, 1.0],
                    vec![0.6, 0.0, 0.4],
                    vec![0.0, 0.8, 0.2],
                ])
                .unwrap(),
            )
            .unwrap(),
        )
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn scores_match_object_based_engine_at_every_anchor_time() {
        // Fixes at or before the window start agree with the batch engine.
        let chain = paper_chain();
        let query = StandingQuery::new(chain.clone(), paper_window()).unwrap();
        for t in 0..=2u32 {
            for s in 0..3usize {
                let obs = Observation::exact(t, 3, s).unwrap();
                let streamed = query.score(&obs).unwrap();
                let object = UncertainObject::with_single_observation(1, obs);
                let direct = object_based::exists_probability(
                    &chain,
                    &object,
                    &paper_window(),
                    &EngineConfig::default(),
                )
                .unwrap();
                assert!((streamed - direct).abs() < 1e-12, "t={t}, s={s}: {streamed} vs {direct}");
            }
        }
        // A fix inside the window (t = 3 > t_start) scores the *remaining*
        // window: membership at t=3 only (no future query times remain).
        for (s, expected) in [(0usize, 1.0), (1, 1.0), (2, 0.0)] {
            let obs = Observation::exact(3, 3, s).unwrap();
            assert_eq!(query.score(&obs).unwrap(), expected, "state {s}");
        }
    }

    #[test]
    fn observation_after_window_scores_zero_or_membership() {
        let query = StandingQuery::new(paper_chain(), paper_window()).unwrap();
        let late_outside = Observation::exact(7, 3, 2).unwrap();
        assert_eq!(query.score(&late_outside).unwrap(), 0.0);
        // A fix exactly at t_end inside the window scores its mass.
        let at_end = Observation::exact(3, 3, 0).unwrap();
        assert_eq!(query.score(&at_end).unwrap(), 1.0);
    }

    #[test]
    fn monitor_tracks_latest_fix() {
        let query = StandingQuery::new(paper_chain(), paper_window()).unwrap();
        let mut monitor = StreamingMonitor::new(query);
        assert!(monitor.is_empty());
        // First fix at s2, t=0 → 0.864.
        let p0 = monitor.observe(9, &Observation::exact(0, 3, 1).unwrap()).unwrap();
        assert!((p0 - 0.864).abs() < 1e-12);
        // Newer fix at s3, t=1 → h_1(s3) = 0.96.
        let p1 = monitor.observe(9, &Observation::exact(1, 3, 2).unwrap()).unwrap();
        assert!((p1 - 0.96).abs() < 1e-12);
        // An out-of-order stale fix is ignored.
        let p2 = monitor.observe(9, &Observation::exact(0, 3, 0).unwrap()).unwrap();
        assert!((p2 - 0.96).abs() < 1e-12);
        assert_eq!(monitor.len(), 1);
        assert_eq!(monitor.probability(9), Some(p1));
        assert_eq!(monitor.probability(404), None);
    }

    #[test]
    fn above_sorts_descending() {
        let query = StandingQuery::new(paper_chain(), paper_window()).unwrap();
        let mut monitor = StreamingMonitor::new(query);
        // Probabilities at t=0: s1 → 0.96, s2 → 0.864, s3 → 0.928.
        for (id, s) in [(1u64, 0usize), (2, 1), (3, 2)] {
            monitor.observe(id, &Observation::exact(0, 3, s).unwrap()).unwrap();
        }
        let hot = monitor.above(0.9);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, 1);
        assert_eq!(hot[1].0, 3);
        assert_eq!(monitor.above(0.99).len(), 0);
        assert_eq!(monitor.above(0.0).len(), 3);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let query = StandingQuery::new(paper_chain(), paper_window()).unwrap();
        let bad = Observation::exact(0, 5, 0).unwrap();
        assert!(matches!(query.score(&bad), Err(QueryError::ModelDimensionMismatch { .. })));
    }
}
