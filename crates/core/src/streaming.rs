//! Standing queries over streams of observations.
//!
//! The paper's motivating deployment is *monitoring*: the Ice Patrol keeps
//! a fixed danger region under watch while sightings trickle in. The
//! query-based machinery fits this perfectly — the backward satisfaction
//! field of a window depends only on the chain and the window, so it can be
//! computed **once** and then every incoming observation is scored with a
//! single sparse dot product, regardless of how many fixes arrive.
//!
//! [`StandingQuery`] precomputes the field for every possible anchor time;
//! [`StreamingMonitor`] maintains the latest probability per object as
//! observations arrive (latest-fix semantics: each new fix supersedes the
//! previous one, which is the standard dashboard behaviour; full Bayesian
//! fusion of *all* fixes is [`crate::multi_obs`]).
//!
//! Both are self-contained, single-chain tools. The engine-integrated
//! layer lives on [`crate::engine::QueryProcessor`]: `watch` registers a
//! full [`QuerySpec`] as a [`Subscription`], `ingest` applies latest-fix
//! observations to the processor's database, and every applied arrival
//! re-evaluates exactly the affected object of each registered
//! subscription through the planner (prefilter, batching, caches and
//! serving metrics all apply). The subscription's decorated answer is
//! *derived* from its maintained per-object state through the same
//! `engine::plan` helpers the batch dispatcher uses, so incremental and
//! from-scratch answers are bit-for-bit identical — the property
//! `tests/streaming.rs` pins.

// lint: allow-file(unordered-iteration-on-answer-path) — `latest` is keyed
// by object id and read by point lookup; the one iterating reader,
// `StreamingMonitor::above`, re-sorts by (probability desc, id asc) with a
// total tiebreak before returning, so map order never reaches an answer.
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use ust_markov::MarkovChain;

use crate::engine::plan;
use crate::engine::query_based::BackwardField;
use crate::error::{QueryError, Result};
use crate::object::UncertainObject;
use crate::observation::Observation;
use crate::query::{
    Decorator, ObjectKDistribution, ObjectProbability, Predicate, Query, QueryAnswer, QuerySpec,
    QueryWindow,
};
use crate::stats::EvalStats;

/// A precomputed PST∃Q whose backward field covers every anchor time in
/// `[0, t_end]`, ready to score arbitrary observations.
#[derive(Debug, Clone)]
pub struct StandingQuery {
    chain: Arc<MarkovChain>,
    window: QueryWindow,
    field: BackwardField,
}

impl StandingQuery {
    /// Builds the standing query (one backward sweep over `t_end` steps).
    pub fn new(chain: Arc<MarkovChain>, window: QueryWindow) -> Result<StandingQuery> {
        let anchor_times: Vec<u32> = (0..=window.t_end()).collect();
        let field = BackwardField::compute(&chain, &window, &anchor_times, &mut EvalStats::new())?;
        Ok(StandingQuery { chain, window, field })
    }

    /// The monitored window.
    pub fn window(&self) -> &QueryWindow {
        &self.window
    }

    /// Scores a single observation: the probability that an object whose
    /// latest fix is `obs` intersects the window at some **remaining**
    /// query time (`T▫ ∩ [obs.time(), t_end]`). Query times already in the
    /// past of the fix are unknowable from the fix alone and count as
    /// misses — the natural monitoring semantics (the batch engines instead
    /// reject such anchors with [`QueryError::WindowBeforeObservation`]).
    /// Observations after `t_end` score the trailing window membership only
    /// (0 unless the fix itself is inside an active cell).
    pub fn score(&self, obs: &Observation) -> Result<f64> {
        if obs.num_states() != self.chain.num_states() {
            return Err(QueryError::ModelDimensionMismatch {
                model_states: self.chain.num_states(),
                object_states: obs.num_states(),
            });
        }
        if obs.time() > self.window.t_end() {
            // The window lies entirely in the past of this fix.
            return Ok(if self.window.time_in_window(obs.time()) {
                obs.distribution().masked_sum(self.window.states())
            } else {
                0.0
            });
        }
        let object = UncertainObject::with_single_observation(u64::MAX, obs.clone());
        self.field.object_probability(&object, &self.window).ok_or(
            QueryError::WindowBeforeObservation {
                window_start: self.window.t_start(),
                observation: obs.time(),
            },
        )
    }
}

/// Per-object latest-fix probabilities for a standing query.
#[derive(Debug, Clone)]
pub struct StreamingMonitor {
    query: StandingQuery,
    latest: HashMap<u64, (u32, f64)>,
}

impl StreamingMonitor {
    /// Creates a monitor for the given standing query.
    pub fn new(query: StandingQuery) -> StreamingMonitor {
        StreamingMonitor { query, latest: HashMap::new() }
    }

    /// The underlying standing query.
    pub fn query(&self) -> &StandingQuery {
        &self.query
    }

    /// Ingests an observation for `object_id`, returning the object's new
    /// probability. Out-of-order fixes (older than the stored one) are
    /// ignored and return the current probability.
    pub fn observe(&mut self, object_id: u64, obs: &Observation) -> Result<f64> {
        if let Some(&(t, p)) = self.latest.get(&object_id) {
            if obs.time() < t {
                return Ok(p);
            }
        }
        let p = self.query.score(obs)?;
        self.latest.insert(object_id, (obs.time(), p));
        Ok(p)
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// True when no object has reported yet.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }

    /// The current probability of an object, if it ever reported.
    pub fn probability(&self, object_id: u64) -> Option<f64> {
        self.latest.get(&object_id).map(|&(_, p)| p)
    }

    /// All objects currently at or above `tau`, sorted by descending
    /// probability.
    pub fn above(&self, tau: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .latest
            .iter()
            .filter(|(_, &(_, p))| p >= tau)
            .map(|(&id, &(_, p))| (id, p))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// The undecorated per-object state a [`Subscription`] maintains between
/// arrivals: exact probabilities for ∃/∀ specs, visit-count distributions
/// for PSTkQ specs, in the order a full probe execution lists them
/// (database order for whole-database subscriptions). Decorated answers
/// (threshold ids, top-k rankings) are derived from this state through
/// the same `engine::plan` helpers the batch dispatcher uses, so a
/// derived answer cannot drift from what a from-scratch execution
/// returns.
#[derive(Debug, Clone)]
pub(crate) enum RawAnswer {
    /// ∃/∀ per-object probabilities.
    Probs(Vec<ObjectProbability>),
    /// PSTkQ per-object visit-count distributions.
    Dists(Vec<ObjectKDistribution>),
}

impl RawAnswer {
    /// Converts an executed probabilities-probe answer into maintained
    /// state.
    pub(crate) fn from_answer(answer: QueryAnswer) -> RawAnswer {
        match answer {
            QueryAnswer::Probabilities(v) => RawAnswer::Probs(v),
            QueryAnswer::Distributions(v) => RawAnswer::Dists(v),
            // lint: allow(panicking-call-in-lib) — `probe_spec` pins the
            // decorator to Probabilities (or Distributions for PSTkQ); no other
            // answer shape can come back from the engine.
            _ => unreachable!("the probe spec always uses the probabilities decorator"),
        }
    }

    /// Splices a single-object probe result into the maintained state:
    /// replaces the entry with the same object id, or appends one that was
    /// not listed before (a freshly inserted object lands at the end of
    /// the database, which is exactly where a full re-evaluation would
    /// list it).
    pub(crate) fn splice(&mut self, update: RawAnswer) {
        fn merge<T>(into: &mut Vec<T>, from: Vec<T>, id: impl Fn(&T) -> u64) {
            for entry in from {
                match into.iter_mut().find(|e| id(e) == id(&entry)) {
                    Some(slot) => *slot = entry,
                    None => into.push(entry),
                }
            }
        }
        match (self, update) {
            (RawAnswer::Probs(v), RawAnswer::Probs(u)) => merge(v, u, |e| e.object_id),
            (RawAnswer::Dists(v), RawAnswer::Dists(u)) => merge(v, u, |e| e.object_id),
            // lint: allow(panicking-call-in-lib) — both operands come from the
            // same subscription's probe spec, which is immutable after install.
            _ => unreachable!("a subscription's probe shape never changes"),
        }
    }
}

/// The mutable half of a subscription, behind its lock.
#[derive(Debug)]
pub(crate) struct SubscriptionInner {
    /// The maintained undecorated state — or the error the equivalent
    /// batch execution returns. Error states are maintained with the same
    /// fidelity as answers: the equivalence harness compares both.
    pub(crate) raw: Result<RawAnswer>,
    /// Set when a re-evaluation was shed (admission bound or deadline):
    /// the maintained state no longer reflects the database, and the next
    /// admitted refresh resynchronizes with a full re-evaluation.
    pub(crate) stale: bool,
    /// The most recent shed error, for dashboards.
    pub(crate) last_shed: Option<QueryError>,
    /// Committed refreshes since `watch` (incremental or full).
    pub(crate) notifications: u64,
}

/// Shared state behind a [`Subscription`] handle; the registering
/// [`crate::engine::QueryProcessor`] holds the other `Arc`.
#[derive(Debug)]
pub(crate) struct SubscriptionState {
    /// Processor-unique subscription id.
    pub(crate) id: u64,
    /// The pinned spec: [`crate::query::Strategy::Auto`] is resolved once
    /// at `watch` time — re-planning on every arrival could flip the
    /// strategy between two refreshes, and the exact strategies agree
    /// only to rounding, so a pinned strategy is what keeps the
    /// maintained bits stable.
    pub(crate) spec: QuerySpec,
    pub(crate) inner: Mutex<SubscriptionInner>,
    /// Set by [`Subscription::cancel`] (and its `Drop`); the processor
    /// skips and prunes cancelled entries.
    pub(crate) cancelled: AtomicBool,
}

impl SubscriptionState {
    pub(crate) fn new(id: u64, spec: QuerySpec, raw: Result<RawAnswer>) -> SubscriptionState {
        SubscriptionState {
            id,
            spec,
            inner: Mutex::new(SubscriptionInner {
                raw,
                stale: false,
                last_shed: None,
                notifications: 0,
            }),
            cancelled: AtomicBool::new(false),
        }
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, SubscriptionInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Derives the decorated answer from maintained state — through the
    /// same helpers `engine::plan`'s dispatcher applies to freshly
    /// computed probabilities.
    pub(crate) fn derive(&self, raw: &RawAnswer) -> QueryAnswer {
        match raw {
            RawAnswer::Probs(v) => plan::decorate(v.clone(), self.spec.decorator()),
            RawAnswer::Dists(v) => match (self.spec.predicate(), self.spec.decorator()) {
                (_, Decorator::Probabilities) => QueryAnswer::Distributions(v.clone()),
                (Predicate::KTimes(k), decorator) => {
                    plan::decorate(plan::at_least(v.clone(), k), decorator)
                }
                // lint: allow(panicking-call-in-lib) — the Dists arm is only
                // populated by PSTkQ probes, whose predicate is KTimes.
                _ => unreachable!("distributions are maintained only for PSTkQ specs"),
            },
        }
    }
}

/// Rebuilds `spec` with an explicit strategy — how `watch` pins a
/// [`crate::query::Strategy::Auto`] spec to the planner's choice once,
/// instead of re-planning (and possibly flipping bits) on every arrival.
pub(crate) fn pin_strategy(
    spec: &QuerySpec,
    strategy: crate::query::Strategy,
) -> Result<QuerySpec> {
    let builder = match spec.predicate() {
        Predicate::Exists => Query::exists(),
        Predicate::ForAll => Query::forall(),
        Predicate::KTimes(k) => Query::ktimes(k),
    };
    let builder =
        builder.window(spec.window().clone()).strategy(strategy).sampling(spec.sampling());
    let builder = match spec.decorator() {
        Decorator::Probabilities => builder.probabilities(),
        Decorator::Threshold(tau) => builder.threshold(tau),
        Decorator::TopK(k) => builder.top_k(k),
    };
    let builder = match spec.objects() {
        Some(ids) => builder.objects(ids.iter().copied()),
        None => builder,
    };
    builder.build()
}

/// The probabilities-decorated probe of `spec` the maintained state is
/// computed with — same predicate, window, strategy, sampling and subset,
/// optionally narrowed to a single object for incremental refreshes.
pub(crate) fn probe_spec(spec: &QuerySpec, object: Option<u64>) -> Result<QuerySpec> {
    let builder = match spec.predicate() {
        Predicate::Exists => Query::exists(),
        Predicate::ForAll => Query::forall(),
        Predicate::KTimes(k) => Query::ktimes(k),
    };
    let builder = builder
        .window(spec.window().clone())
        .probabilities()
        .strategy(spec.strategy())
        .sampling(spec.sampling());
    let builder = match (object, spec.objects()) {
        (Some(id), _) => builder.objects([id]),
        (None, Some(ids)) => builder.objects(ids.iter().copied()),
        (None, None) => builder,
    };
    builder.build()
}

/// A continuously maintained standing query, registered with
/// [`crate::engine::QueryProcessor::watch`] and refreshed by every
/// applied [`crate::engine::QueryProcessor::ingest`] /
/// [`crate::engine::QueryProcessor::insert`] that affects an object in
/// its scope.
///
/// The handle is read-only and lock-cheap: [`Subscription::answer`]
/// derives the decorated answer from the maintained per-object state
/// without touching the engines. Dropping (or [`Subscription::cancel`]ing)
/// the handle detaches it — never blocking, even mid-refresh — and the
/// processor prunes the registry entry on the next arrival.
#[derive(Debug)]
pub struct Subscription {
    state: Arc<SubscriptionState>,
}

impl Subscription {
    pub(crate) fn from_state(state: Arc<SubscriptionState>) -> Subscription {
        Subscription { state }
    }

    /// The processor-unique subscription id (also the key of the
    /// per-subscription serving counters in
    /// [`crate::serving::MetricsSnapshot::streams`]).
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// The pinned spec the subscription is maintained under (with
    /// [`crate::query::Strategy::Auto`] resolved at watch time).
    pub fn spec(&self) -> &QuerySpec {
        &self.state.spec
    }

    /// The current decorated answer — bit-for-bit what executing
    /// [`Subscription::spec`] from scratch against a database holding the
    /// same applied observations returns, including the error when that
    /// execution fails.
    pub fn answer(&self) -> Result<QueryAnswer> {
        let inner = self.state.lock();
        match &inner.raw {
            Ok(raw) => Ok(self.state.derive(raw)),
            Err(e) => Err(e.clone()),
        }
    }

    /// The maintained predicate probability of one object: `P∃` / `P∀`,
    /// or `P(visits ≥ k)` for PSTkQ specs. `None` when the object is not
    /// in scope or the subscription is in an error state.
    pub fn probability(&self, object_id: u64) -> Option<f64> {
        let inner = self.state.lock();
        match inner.raw.as_ref().ok()? {
            RawAnswer::Probs(v) => {
                v.iter().find(|e| e.object_id == object_id).map(|e| e.probability)
            }
            RawAnswer::Dists(v) => {
                let k = match self.state.spec.predicate() {
                    Predicate::KTimes(k) => k,
                    // lint: allow(panicking-call-in-lib) — same shape invariant:
                    // Dists state exists only under a KTimes predicate.
                    _ => unreachable!("distributions are maintained only for PSTkQ specs"),
                };
                v.iter().find(|e| e.object_id == object_id).map(|e| e.prob_at_least(k))
            }
        }
    }

    /// Committed refreshes since `watch` (incremental splices and full
    /// resynchronizations; shed refreshes do not count).
    pub fn notifications(&self) -> u64 {
        self.state.lock().notifications
    }

    /// True when a shed re-evaluation left the answer behind the
    /// database; the subscription resynchronizes (with a full
    /// re-evaluation) on its next admitted refresh.
    pub fn is_stale(&self) -> bool {
        self.state.lock().stale
    }

    /// The most recent shed error
    /// ([`QueryError::QueueFull`] / [`QueryError::DeadlineExceeded`]),
    /// if any refresh was ever shed.
    pub fn last_shed(&self) -> Option<QueryError> {
        self.state.lock().last_shed.clone()
    }

    /// Detaches the subscription: no further refreshes or notifications.
    /// Never blocks (a refresh in flight commits or sheds, then the
    /// registry entry is pruned on the next arrival).
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Release);
    }

    /// True once cancelled (or after the handle's `Drop` ran, which
    /// cancels implicitly).
    pub fn is_cancelled(&self) -> bool {
        self.state.is_cancelled()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{object_based, EngineConfig};
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> Arc<MarkovChain> {
        Arc::new(
            MarkovChain::from_csr(
                CsrMatrix::from_dense(&[
                    vec![0.0, 0.0, 1.0],
                    vec![0.6, 0.0, 0.4],
                    vec![0.0, 0.8, 0.2],
                ])
                .unwrap(),
            )
            .unwrap(),
        )
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn scores_match_object_based_engine_at_every_anchor_time() {
        // Fixes at or before the window start agree with the batch engine.
        let chain = paper_chain();
        let query = StandingQuery::new(chain.clone(), paper_window()).unwrap();
        for t in 0..=2u32 {
            for s in 0..3usize {
                let obs = Observation::exact(t, 3, s).unwrap();
                let streamed = query.score(&obs).unwrap();
                let object = UncertainObject::with_single_observation(1, obs);
                let direct = object_based::exists_probability(
                    &chain,
                    &object,
                    &paper_window(),
                    &EngineConfig::default(),
                )
                .unwrap();
                assert!((streamed - direct).abs() < 1e-12, "t={t}, s={s}: {streamed} vs {direct}");
            }
        }
        // A fix inside the window (t = 3 > t_start) scores the *remaining*
        // window: membership at t=3 only (no future query times remain).
        for (s, expected) in [(0usize, 1.0), (1, 1.0), (2, 0.0)] {
            let obs = Observation::exact(3, 3, s).unwrap();
            assert_eq!(query.score(&obs).unwrap(), expected, "state {s}");
        }
    }

    #[test]
    fn observation_after_window_scores_zero_or_membership() {
        let query = StandingQuery::new(paper_chain(), paper_window()).unwrap();
        let late_outside = Observation::exact(7, 3, 2).unwrap();
        assert_eq!(query.score(&late_outside).unwrap(), 0.0);
        // A fix exactly at t_end inside the window scores its mass.
        let at_end = Observation::exact(3, 3, 0).unwrap();
        assert_eq!(query.score(&at_end).unwrap(), 1.0);
    }

    #[test]
    fn monitor_tracks_latest_fix() {
        let query = StandingQuery::new(paper_chain(), paper_window()).unwrap();
        let mut monitor = StreamingMonitor::new(query);
        assert!(monitor.is_empty());
        // First fix at s2, t=0 → 0.864.
        let p0 = monitor.observe(9, &Observation::exact(0, 3, 1).unwrap()).unwrap();
        assert!((p0 - 0.864).abs() < 1e-12);
        // Newer fix at s3, t=1 → h_1(s3) = 0.96.
        let p1 = monitor.observe(9, &Observation::exact(1, 3, 2).unwrap()).unwrap();
        assert!((p1 - 0.96).abs() < 1e-12);
        // An out-of-order stale fix is ignored.
        let p2 = monitor.observe(9, &Observation::exact(0, 3, 0).unwrap()).unwrap();
        assert!((p2 - 0.96).abs() < 1e-12);
        assert_eq!(monitor.len(), 1);
        assert_eq!(monitor.probability(9), Some(p1));
        assert_eq!(monitor.probability(404), None);
    }

    #[test]
    fn above_sorts_descending() {
        let query = StandingQuery::new(paper_chain(), paper_window()).unwrap();
        let mut monitor = StreamingMonitor::new(query);
        // Probabilities at t=0: s1 → 0.96, s2 → 0.864, s3 → 0.928.
        for (id, s) in [(1u64, 0usize), (2, 1), (3, 2)] {
            monitor.observe(id, &Observation::exact(0, 3, s).unwrap()).unwrap();
        }
        let hot = monitor.above(0.9);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, 1);
        assert_eq!(hot[1].0, 3);
        assert_eq!(monitor.above(0.99).len(), 0);
        assert_eq!(monitor.above(0.0).len(), 3);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let query = StandingQuery::new(paper_chain(), paper_window()).unwrap();
        let bad = Observation::exact(0, 5, 0).unwrap();
        assert!(matches!(query.score(&bad), Err(QueryError::ModelDimensionMismatch { .. })));
    }

    #[test]
    fn splice_replaces_in_place_and_appends_new_objects() {
        let p = |id: u64, probability: f64| ObjectProbability { object_id: id, probability };
        let mut raw = RawAnswer::Probs(vec![p(3, 0.1), p(1, 0.2), p(7, 0.3)]);
        raw.splice(RawAnswer::Probs(vec![p(1, 0.9)]));
        raw.splice(RawAnswer::Probs(vec![p(9, 0.4)]));
        match &raw {
            RawAnswer::Probs(v) => {
                let ids: Vec<u64> = v.iter().map(|e| e.object_id).collect();
                assert_eq!(ids, vec![3, 1, 7, 9], "in-place replace keeps database order");
                assert_eq!(v[1].probability, 0.9);
                assert_eq!(v[3].probability, 0.4);
            }
            RawAnswer::Dists(_) => unreachable!(),
        }
    }

    #[test]
    fn derived_answers_ride_the_batch_decorators() {
        use crate::query::Strategy;
        let window = paper_window();
        let p = |id: u64, probability: f64| ObjectProbability { object_id: id, probability };
        let probs = vec![p(1, 0.9), p(2, 0.3), p(3, 0.7)];

        let threshold = Query::exists().window(window.clone()).threshold(0.5).build().unwrap();
        let state = SubscriptionState::new(0, threshold, Ok(RawAnswer::Probs(probs.clone())));
        assert_eq!(
            state.derive(&RawAnswer::Probs(probs.clone())),
            QueryAnswer::ObjectIds(vec![1, 3]),
            "threshold keeps database order"
        );

        let topk = Query::exists().window(window.clone()).top_k(2).build().unwrap();
        let state = SubscriptionState::new(1, topk, Ok(RawAnswer::Probs(probs.clone())));
        match state.derive(&RawAnswer::Probs(probs)) {
            QueryAnswer::Ranked(r) => {
                assert_eq!(r.len(), 2);
                assert_eq!((r[0].object_id, r[1].object_id), (1, 3));
            }
            other => panic!("top-k derives a ranking, got {other:?}"),
        }

        // PSTkQ distributions reduce through `P(visits ≥ k)`.
        let d =
            |id: u64, probabilities: Vec<f64>| ObjectKDistribution { object_id: id, probabilities };
        let dists = vec![d(1, vec![0.1, 0.3, 0.6]), d(2, vec![0.8, 0.15, 0.05])];
        let ktimes = Query::ktimes(2)
            .window(window)
            .threshold(0.5)
            .strategy(Strategy::QueryBased)
            .build()
            .unwrap();
        let state = SubscriptionState::new(2, ktimes, Ok(RawAnswer::Dists(dists.clone())));
        assert_eq!(state.derive(&RawAnswer::Dists(dists)), QueryAnswer::ObjectIds(vec![1]));
    }

    #[test]
    fn probe_spec_keeps_shape_and_narrows_scope() {
        use crate::query::Strategy;
        let spec = Query::ktimes(2)
            .window(paper_window())
            .top_k(3)
            .strategy(Strategy::QueryBased)
            .objects([5u64, 2])
            .build()
            .unwrap();
        let full = probe_spec(&spec, None).unwrap();
        assert_eq!(full.predicate(), spec.predicate());
        assert_eq!(full.decorator(), Decorator::Probabilities);
        assert_eq!(full.strategy(), Strategy::QueryBased);
        assert_eq!(full.objects(), Some(&[2u64, 5][..]));
        let narrowed = probe_spec(&spec, Some(5)).unwrap();
        assert_eq!(narrowed.objects(), Some(&[5u64][..]));
    }
}
