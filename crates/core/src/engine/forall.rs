//! PST∀Q evaluation by complement reduction — Section VII of the paper.
//!
//! The probability that an object stays inside `S▫` at *all* query
//! timestamps complements the probability that it is outside at *some*
//! timestamp:
//!
//! ```text
//! P∀(o, S▫, T▫) = 1 − P∃(o, S ∖ S▫, T▫)
//! ```
//!
//! The paper notes that despite `|S ∖ S▫| ≫ |S▫|` the complemented run is
//! "generally not larger" — and often faster, because `M+` of the
//! complement zeroes *more* columns, i.e. the forward pass absorbs worlds
//! sooner. Our tests confirm both engines agree with direct computation.

use ust_markov::MarkovChain;

use crate::database::TrajectoryDatabase;
use crate::engine::{object_based, query_based, EngineConfig};
use crate::error::Result;
use crate::object::UncertainObject;
use crate::query::{ObjectProbability, QueryWindow};
use crate::stats::EvalStats;

/// PST∀Q (Definition 3) for one object, object-based evaluation.
pub fn forall_probability_ob(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<f64> {
    let complement = window.complement_states()?;
    let p_escape = object_based::exists_probability(chain, object, &complement, config)?;
    Ok((1.0 - p_escape).max(0.0))
}

/// PST∀Q for one object, query-based evaluation.
pub fn forall_probability_qb(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<f64> {
    let complement = window.complement_states()?;
    let p_escape = query_based::exists_probability(chain, object, &complement, config)?;
    Ok((1.0 - p_escape).max(0.0))
}

/// The complement side of the Section VII reduction: turns the ∃
/// probabilities of the complemented window into ∀ probabilities, in
/// place. Shared by the sequential and sharded ∀ drivers so the clamp
/// stays identical everywhere.
pub(crate) fn complement_probabilities(results: &mut [ObjectProbability]) {
    for r in results {
        r.probability = (1.0 - r.probability).max(0.0);
    }
}

/// PST∀Q for the whole database, object-based.
pub fn evaluate_object_based(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let complement = window.complement_states()?;
    let mut results = object_based::evaluate(db, &complement, config, stats)?;
    complement_probabilities(&mut results);
    Ok(results)
}

/// PST∀Q for the whole database, query-based.
pub fn evaluate_query_based(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let complement = window.complement_states()?;
    let mut results = query_based::evaluate(db, &complement, config, stats)?;
    complement_probabilities(&mut results);
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn object_at(state: usize) -> UncertainObject {
        UncertainObject::with_single_observation(1, Observation::exact(0, 3, state).unwrap())
    }

    #[test]
    fn forall_s3_over_two_steps_by_hand() {
        // P(stay at s3 during t ∈ {1, 2} | start s2):
        // paths s2→s3→s3 with probability 0.4 · 0.2 = 0.08.
        let window = QueryWindow::from_states(3, [2usize], TimeSet::interval(1, 2)).unwrap();
        let ob =
            forall_probability_ob(&paper_chain(), &object_at(1), &window, &EngineConfig::default())
                .unwrap();
        let qb =
            forall_probability_qb(&paper_chain(), &object_at(1), &window, &EngineConfig::default())
                .unwrap();
        assert!((ob - 0.08).abs() < 1e-12, "ob = {ob}");
        assert!((qb - 0.08).abs() < 1e-12, "qb = {qb}");
    }

    #[test]
    fn single_timestamp_forall_equals_exists() {
        // For |T▫| = 1 the predicates coincide.
        let window = QueryWindow::from_states(3, [1usize, 2], TimeSet::at(2)).unwrap();
        let config = EngineConfig::default();
        let chain = paper_chain();
        let o = object_at(1);
        let forall = forall_probability_ob(&chain, &o, &window, &config).unwrap();
        let exists = object_based::exists_probability(&chain, &o, &window, &config).unwrap();
        assert!((forall - exists).abs() < 1e-12);
    }

    #[test]
    fn full_space_window_is_certain() {
        // Staying "somewhere in S" is certain, but the complement window
        // would be empty — the reduction must surface that as an error.
        let window = QueryWindow::from_states(3, [0usize, 1, 2], TimeSet::interval(1, 2)).unwrap();
        let r =
            forall_probability_ob(&paper_chain(), &object_at(0), &window, &EngineConfig::default());
        assert!(r.is_err(), "degenerate full-space ∀ query should error, got {r:?}");
    }

    #[test]
    fn batch_ob_and_qb_agree() {
        let mut db = TrajectoryDatabase::new(paper_chain());
        for s in 0..3usize {
            db.insert(UncertainObject::with_single_observation(
                s as u64,
                Observation::exact(0, 3, s).unwrap(),
            ))
            .unwrap();
        }
        let window = QueryWindow::from_states(3, [1usize, 2], TimeSet::interval(2, 3)).unwrap();
        let ob =
            evaluate_object_based(&db, &window, &EngineConfig::default(), &mut EvalStats::new())
                .unwrap();
        let qb =
            evaluate_query_based(&db, &window, &EngineConfig::default(), &mut EvalStats::new())
                .unwrap();
        for (a, b) in ob.iter().zip(&qb) {
            assert_eq!(a.object_id, b.object_id);
            assert!((a.probability - b.probability).abs() < 1e-12);
            assert!(a.probability >= 0.0 && a.probability <= 1.0);
        }
    }
}
