//! Object-based (OB) PST∃Q evaluation — Section V-A of the paper.
//!
//! For each object, the distribution vector is propagated forward from its
//! anchor observation through the augmented matrices `M−`/`M+`. We apply
//! those matrices *virtually*: a step is an ordinary `v · M` product, and
//! when the target timestamp lies in `T▫` the mass entering the query states
//! is removed from the vector and accumulated into the scalar ⊤ — exactly
//! the column surgery `M+` performs, without materializing an
//! `(|S|+1)²` matrix per query (cross-checked against the explicit
//! construction in `ust_markov::augmented` by the test suite).
//!
//! Worlds that reached the window are *excluded from further propagation*,
//! which is what makes the result correct under possible-worlds semantics —
//! each world is counted at most once (the flaw of the naive
//! "sum the per-timestamp probabilities" approach the paper opens with).

use std::ops::ControlFlow;

use ust_markov::{MarkovChain, PropagationVector};

use crate::database::TrajectoryDatabase;
use crate::engine::pipeline::{BatchPhase, ObjectBatch, Propagator};
use crate::engine::{group_batchable, EngineConfig};
use crate::error::{QueryError, Result};
use crate::object::UncertainObject;
use crate::query::{ObjectProbability, QueryWindow};
use crate::stats::EvalStats;

/// Probability that `object` intersects the query window at some query
/// timestamp (PST∃Q, Definition 2), evaluated forward from the object's
/// anchor observation.
pub fn exists_probability(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<f64> {
    exists_probability_with_stats(chain, object, window, config, &mut EvalStats::new())
}

/// As [`exists_probability`], accumulating operation counters into `stats`.
pub fn exists_probability_with_stats(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<f64> {
    exists_with(&mut Propagator::new(config, stats), chain, object, window)
}

/// The OB driver on an existing [`Propagator`] (the batch evaluator and the
/// parallel engine reuse one pipeline per worker so scratch space is
/// allocated once).
///
/// The driver's whole job is the ∃ accumulation rule: at every query
/// timestamp the mass inside `S▫` moves from the vector to the scalar ⊤ —
/// the virtual application of the `M+` column surgery (worlds that reached
/// the window are excluded from further propagation, so each world is
/// counted at most once). Step loop, pruning and accounting live in
/// [`Propagator::forward`].
pub(crate) fn exists_with(
    pipeline: &mut Propagator<'_>,
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
) -> Result<f64> {
    validate(chain, object, window)?;
    let anchor = object.anchor();
    let mut rows = [pipeline.seed(anchor.distribution().clone())];
    let mut hit = 0.0;
    pipeline.forward(chain.matrix(), &mut rows, anchor.time(), window, |rows, _| {
        hit += rows[0].extract_masked(window.states());
        Ok(())
    })?;
    Ok(hit.min(1.0))
}

/// Validates every object in a worker's share, in index order, so the
/// first error is deterministic regardless of batch or shard layout.
pub(crate) fn validate_indices(
    db: &TrajectoryDatabase,
    indices: &[usize],
    window: &QueryWindow,
) -> Result<()> {
    for &idx in indices {
        let object = db
            .object(idx)
            .ok_or(QueryError::internal("index validation received an unresolved object index"))?;
        validate(db.model_of(object), object, window)?;
    }
    Ok(())
}

/// Seeds one propagation row per chunk member from its anchor
/// distribution — the single-row-per-object batch layout shared by the
/// ∃, threshold and top-k drivers.
pub(crate) fn seed_anchor_rows(
    pipeline: &Propagator<'_>,
    db: &TrajectoryDatabase,
    indices: &[usize],
    chunk: &[usize],
) -> Result<Vec<PropagationVector>> {
    chunk
        .iter()
        .map(|&pos| {
            let object = db
                .object(indices[pos])
                .ok_or(QueryError::internal("batched position resolves to a database object"))?;
            Ok(pipeline.seed(object.anchor().distribution().clone()))
        })
        .collect()
}

/// The ∃ accumulation rule over a whole batch: for every live group, the
/// mass inside `S▫` moves from the group's row into `hits[g]` — the
/// virtual `M+` redirect to ⊤, applied per object. Shared verbatim by the
/// ∃, threshold and top-k drivers so the rule cannot diverge between them.
pub(crate) fn accumulate_exists_hits(
    batch: &mut ObjectBatch<'_>,
    hits: &mut [f64],
    window: &QueryWindow,
) {
    for (g, hit) in hits.iter_mut().enumerate() {
        if batch.is_active(g) {
            *hit += batch.group_mut(g)[0].extract_masked(window.states());
        }
    }
}

/// The batched OB driver over an explicit set of database object indices —
/// the unit of work one `ShardedExecutor` worker owns. Results come back in
/// the order of `indices`.
///
/// Objects are grouped by `(model, anchor time)` and propagated in
/// [`EngineConfig::batch_size`] batches of one row each; every batch shares
/// one matrix traversal per timestamp through the batched kernel. The ∃
/// accumulation rule is applied per live group, and groups whose worlds are
/// all decided drop out of the batch without stopping the sweep. Per
/// object, results are bit-for-bit identical to [`exists_with`].
pub(crate) fn exists_batched(
    pipeline: &mut Propagator<'_>,
    db: &TrajectoryDatabase,
    indices: &[usize],
    window: &QueryWindow,
) -> Result<Vec<ObjectProbability>> {
    validate_indices(db, indices, window)?;
    let batch_size = pipeline.config().effective_batch_size();
    let mut results: Vec<Option<ObjectProbability>> = vec![None; indices.len()];
    for ((model, anchor_time), members) in group_batchable(db, indices)? {
        let chain = &db.models()[model];
        for chunk in members.chunks(batch_size) {
            let mut rows = seed_anchor_rows(pipeline, db, indices, chunk)?;
            let mut batch = ObjectBatch::new(&mut rows, 1)?;
            let mut hits = vec![0.0f64; chunk.len()];
            pipeline.forward_batch(
                chain.matrix(),
                &mut batch,
                anchor_time,
                window,
                |phase, batch, _| {
                    if phase == BatchPhase::Window {
                        accumulate_exists_hits(batch, &mut hits, window);
                    }
                    Ok(ControlFlow::Continue(()))
                },
            )?;
            for (&pos, hit) in chunk.iter().zip(hits) {
                let object = db.object(indices[pos]).ok_or(QueryError::internal(
                    "batched position resolves to a database object",
                ))?;
                results[pos] =
                    Some(ObjectProbability { object_id: object.id(), probability: hit.min(1.0) });
            }
        }
    }
    results
        .into_iter()
        .map(|r| r.ok_or(QueryError::internal("the batch loop covers every position")))
        .collect()
}

/// Evaluates the PST∃Q for every object in the database through the batched
/// kernel ([`EngineConfig::batch_size`] objects per shared traversal).
pub fn evaluate(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let indices: Vec<usize> = (0..db.len()).collect();
    let mut pipeline = Propagator::new(config, stats);
    exists_batched(&mut pipeline, db, &indices, window)
}

/// Common validation: dimensions agree and the window starts no earlier
/// than the anchor observation.
pub(crate) fn validate(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
) -> Result<()> {
    if chain.num_states() != object.num_states() {
        return Err(QueryError::ModelDimensionMismatch {
            model_states: chain.num_states(),
            object_states: object.num_states(),
        });
    }
    if window.states().dim() != chain.num_states() {
        return Err(QueryError::ModelDimensionMismatch {
            model_states: chain.num_states(),
            object_states: window.states().dim(),
        });
    }
    let anchor_time = object.anchor().time();
    if window.t_start() < anchor_time {
        return Err(QueryError::WindowBeforeObservation {
            window_start: window.t_start(),
            observation: anchor_time,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn object_at_s2() -> UncertainObject {
        UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap())
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn worked_example_yields_0864() {
        let p = exists_probability(
            &paper_chain(),
            &object_at_s2(),
            &paper_window(),
            &EngineConfig::default(),
        )
        .unwrap();
        assert!((p - 0.864).abs() < 1e-12);
    }

    #[test]
    fn matches_explicit_augmented_matrices() {
        // The virtual operator must agree with the materialized M−/M+
        // propagation for an uncertain (multi-state) start distribution.
        let chain = paper_chain();
        let start = ust_markov::SparseVector::from_pairs(3, [(0, 0.25), (2, 0.75)]).unwrap();
        let object = UncertainObject::with_single_observation(
            1,
            Observation::uncertain(0, start.clone()).unwrap(),
        );
        let window = paper_window();
        let fast = exists_probability(&chain, &object, &window, &EngineConfig::default()).unwrap();

        // Reference: explicit augmented matrices.
        let minus = ust_markov::augmented::exists_minus(chain.matrix());
        let plus = ust_markov::augmented::exists_plus(chain.matrix(), window.states());
        let mut v = ust_markov::DenseVector::zeros(4);
        for (i, p) in start.iter() {
            v.set(i, p).unwrap();
        }
        for t in 0..3u32 {
            let m = if window.time_in_window(t + 1) { &plus } else { &minus };
            v = m.vecmat_dense(&v).unwrap();
        }
        assert!((fast - v.get(3)).abs() < 1e-12);
    }

    #[test]
    fn anchor_inside_window_counts_immediately() {
        // Anchor at t=2 which is in T▫ and at a window state: probability 1.
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(2, 3, 0).unwrap());
        let p =
            exists_probability(&paper_chain(), &object, &paper_window(), &EngineConfig::default())
                .unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_before_observation_is_rejected() {
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(5, 3, 0).unwrap());
        assert!(matches!(
            exists_probability(&paper_chain(), &object, &paper_window(), &EngineConfig::default()),
            Err(QueryError::WindowBeforeObservation { .. })
        ));
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(0, 5, 0).unwrap());
        assert!(matches!(
            exists_probability(&paper_chain(), &object, &paper_window(), &EngineConfig::default()),
            Err(QueryError::ModelDimensionMismatch { .. })
        ));
        let window = QueryWindow::from_states(4, [0usize], TimeSet::at(1)).unwrap();
        assert!(matches!(
            exists_probability(&paper_chain(), &object_at_s2(), &window, &EngineConfig::default()),
            Err(QueryError::ModelDimensionMismatch { .. })
        ));
    }

    #[test]
    fn early_termination_when_all_worlds_hit() {
        // Window covering the full space at t=1: every world hits at t=1,
        // so propagation to t=9 must stop early.
        let window = QueryWindow::from_states(3, [0usize, 1, 2], TimeSet::new([1, 9])).unwrap();
        let mut stats = EvalStats::new();
        let p = exists_probability_with_stats(
            &paper_chain(),
            &object_at_s2(),
            &window,
            &EngineConfig::default(),
            &mut stats,
        )
        .unwrap();
        assert!((p - 1.0).abs() < 1e-12);
        assert_eq!(stats.early_terminations, 1);
        assert!(stats.transitions < 9);
    }

    #[test]
    fn epsilon_pruning_reports_dropped_mass() {
        let config = EngineConfig::default().with_epsilon(0.05);
        let mut stats = EvalStats::new();
        let p = exists_probability_with_stats(
            &paper_chain(),
            &object_at_s2(),
            &paper_window(),
            &config,
            &mut stats,
        )
        .unwrap();
        // The pruned result may deviate by at most the dropped mass.
        assert!((p - 0.864).abs() <= stats.pruned_mass + 1e-12);
    }

    #[test]
    fn batch_evaluation_covers_all_objects() {
        let mut db = TrajectoryDatabase::new(paper_chain());
        for (i, s) in [0usize, 1, 2].into_iter().enumerate() {
            db.insert(UncertainObject::with_single_observation(
                i as u64,
                Observation::exact(0, 3, s).unwrap(),
            ))
            .unwrap();
        }
        let mut stats = EvalStats::new();
        let results = evaluate(&db, &paper_window(), &EngineConfig::default(), &mut stats).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(stats.objects_evaluated, 3);
        // From Example 2's backward vector: starting at s1 → 0.96,
        // s2 → 0.864, s3 → 0.928.
        assert!((results[0].probability - 0.96).abs() < 1e-12);
        assert!((results[1].probability - 0.864).abs() < 1e-12);
        assert!((results[2].probability - 0.928).abs() < 1e-12);
    }

    #[test]
    fn noncontiguous_window_times() {
        // T▫ = {1, 3} skips t=2 entirely.
        let window = QueryWindow::from_states(3, [0usize], TimeSet::new([1, 3])).unwrap();
        let p =
            exists_probability(&paper_chain(), &object_at_s2(), &window, &EngineConfig::default())
                .unwrap();
        // By hand: at t=1 mass at s1 = 0.6 (hit). Remaining (0, 0, 0.4):
        // t=2 → (0, 0.32, 0.08); t=3 → s1 gets 0.32·0.6 = 0.192 (hit).
        assert!((p - (0.6 + 0.192)).abs() < 1e-12);
    }
}
