//! Monte-Carlo path sampling — the paper's baseline competitor (MC).
//!
//! Samples complete trajectories ("possible worlds") of each object and
//! reports the fraction satisfying the query predicate. The paper uses this
//! as the state-of-the-art stand-in and shows it is orders of magnitude
//! slower than OB/QB while only approximating the answer: sampling is a
//! Bernoulli sequence, so the estimate carries a standard deviation of
//! `σ = √(p(1−p)/n)` — at the paper's 100 samples, up to 5 percentage
//! points.
//!
//! One sampled walk serves all three predicates (∃ / ∀ / k-times): we count
//! window visits along the walk and derive each predicate from the count.

use std::ops::ControlFlow;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust_markov::{MarkovChain, SparseVector};

use crate::database::TrajectoryDatabase;
use crate::engine::object_based::validate;
use crate::engine::pipeline::Propagator;
use crate::engine::EngineConfig;
use crate::error::Result;
use crate::object::UncertainObject;
use crate::query::{ObjectKDistribution, ObjectProbability, QueryWindow};
use crate::stats::EvalStats;

/// Monte-Carlo estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Trajectories sampled per object (the paper uses 100).
    pub samples: usize,
    /// RNG seed (estimates are deterministic per seed).
    pub seed: u64,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo { samples: 100, seed: 0xC0FFEE }
    }
}

impl MonteCarlo {
    /// Creates an estimator with the given sample count.
    pub fn new(samples: usize, seed: u64) -> Self {
        MonteCarlo { samples, seed }
    }

    /// The standard deviation of the estimate `p̂` at `n` samples:
    /// `σ = √(p(1−p)/n)` (the paper's accuracy argument against MC).
    pub fn standard_error(p: f64, n: usize) -> f64 {
        if n == 0 {
            return f64::INFINITY;
        }
        (p * (1.0 - p) / n as f64).sqrt()
    }

    /// Samples the visit-count distribution for one object; the basis of
    /// all three predicates.
    pub fn visit_counts(
        &self,
        chain: &MarkovChain,
        object: &UncertainObject,
        window: &QueryWindow,
    ) -> Result<Vec<f64>> {
        let mut stats = EvalStats::new();
        self.visit_counts_with(
            &mut Propagator::new(&EngineConfig::default(), &mut stats),
            chain,
            object,
            window,
        )
    }

    /// The sampling driver on an existing [`Propagator`]: each sampled
    /// world is one [`Propagator::walk`] through the masking schedule, with
    /// the per-step rule "draw the successor state" and the window rule
    /// "count a visit when the walker stands inside `S▫`".
    pub(crate) fn visit_counts_with(
        &self,
        pipeline: &mut Propagator<'_>,
        chain: &MarkovChain,
        object: &UncertainObject,
        window: &QueryWindow,
    ) -> Result<Vec<f64>> {
        validate(chain, object, window)?;
        let k_max = window.num_times();
        let mut counts = vec![0u64; k_max + 1];
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ object.id().wrapping_mul(0x9E3779B97F4A7C15));
        let anchor = object.anchor();
        let t_end = window.t_end();
        for _ in 0..self.samples {
            // Walker state: (current chain state, window visits so far).
            let mut walker = (sample_sparse(anchor.distribution(), &mut rng), 0usize);
            pipeline.walk(
                anchor.time(),
                t_end,
                window,
                &mut walker,
                |walker, _| {
                    walker.0 = sample_row(chain, walker.0, &mut rng);
                    Ok(ControlFlow::Continue(()))
                },
                |walker, _| {
                    if window.states().contains(walker.0) {
                        walker.1 += 1;
                    }
                    Ok(())
                },
            )?;
            counts[walker.1.min(k_max)] += 1;
        }
        Ok(counts.into_iter().map(|c| c as f64 / self.samples.max(1) as f64).collect())
    }

    /// PST∃Q estimate: fraction of sampled worlds with ≥ 1 window visit.
    pub fn exists_probability(
        &self,
        chain: &MarkovChain,
        object: &UncertainObject,
        window: &QueryWindow,
    ) -> Result<f64> {
        Ok(1.0 - self.visit_counts(chain, object, window)?[0])
    }

    /// PST∀Q estimate: fraction of worlds visiting at every query time.
    pub fn forall_probability(
        &self,
        chain: &MarkovChain,
        object: &UncertainObject,
        window: &QueryWindow,
    ) -> Result<f64> {
        let counts = self.visit_counts(chain, object, window)?;
        counts.last().copied().ok_or(crate::error::QueryError::internal(
            "the visit-count distribution has |T|+1 entries",
        ))
    }

    /// PSTkQ estimate.
    pub fn ktimes_distribution(
        &self,
        chain: &MarkovChain,
        object: &UncertainObject,
        window: &QueryWindow,
    ) -> Result<Vec<f64>> {
        self.visit_counts(chain, object, window)
    }

    /// PST∃Q estimates for the whole database.
    pub fn evaluate_exists(
        &self,
        db: &TrajectoryDatabase,
        window: &QueryWindow,
        stats: &mut EvalStats,
    ) -> Result<Vec<ObjectProbability>> {
        let mut pipeline = Propagator::new(&EngineConfig::default(), stats);
        let mut out = Vec::with_capacity(db.len());
        for object in db.objects() {
            let chain = db.model_of(object);
            let counts = self.visit_counts_with(&mut pipeline, chain, object, window)?;
            pipeline.stats().objects_evaluated += 1;
            out.push(ObjectProbability { object_id: object.id(), probability: 1.0 - counts[0] });
        }
        Ok(out)
    }

    /// PSTkQ estimates for the whole database.
    pub fn evaluate_ktimes(
        &self,
        db: &TrajectoryDatabase,
        window: &QueryWindow,
    ) -> Result<Vec<ObjectKDistribution>> {
        db.objects()
            .iter()
            .map(|object| {
                let chain = db.model_of(object);
                Ok(ObjectKDistribution {
                    object_id: object.id(),
                    probabilities: self.ktimes_distribution(chain, object, window)?,
                })
            })
            .collect()
    }

    /// Importance-sampled PST∃Q with multiple observations (Section VI):
    /// paths are sampled from the first observation and weighted by the
    /// likelihood of the remaining observations; the estimate is the
    /// weighted fraction of paths intersecting the window. Serves as the
    /// sampling cross-check for the exact doubled-state-space algorithm.
    pub fn exists_probability_multi(
        &self,
        chain: &MarkovChain,
        object: &UncertainObject,
        window: &QueryWindow,
    ) -> Result<f64> {
        validate(chain, object, window)?;
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ object.id().wrapping_mul(0x9E3779B97F4A7C15));
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let anchor = object.anchor();
        let horizon = window.t_end().max(object.last_observation().time());
        let mut weighted_hits = 0.0;
        let mut total_weight = 0.0;

        /// One importance-sampled world.
        struct Walker {
            state: usize,
            weight: f64,
            hit: bool,
        }
        for _ in 0..self.samples {
            let mut walker = Walker {
                state: sample_sparse(anchor.distribution(), &mut rng),
                weight: 1.0,
                hit: false,
            };
            pipeline.walk(
                anchor.time(),
                horizon,
                window,
                &mut walker,
                |walker, t| {
                    walker.state = sample_row(chain, walker.state, &mut rng);
                    // Weight by the likelihood of an observation at t; a
                    // zero-weight world contributes nothing — abandon it.
                    if let Some(obs) = object.observation_at(t) {
                        walker.weight *= obs.distribution().get(walker.state);
                        if walker.weight == 0.0 {
                            return Ok(ControlFlow::Break(()));
                        }
                    }
                    Ok(ControlFlow::Continue(()))
                },
                |walker, _| {
                    if window.states().contains(walker.state) {
                        walker.hit = true;
                    }
                    Ok(())
                },
            )?;
            if walker.weight > 0.0 {
                total_weight += walker.weight;
                if walker.hit {
                    weighted_hits += walker.weight;
                }
            }
        }
        if total_weight == 0.0 {
            return Err(crate::error::QueryError::ImpossibleEvidence);
        }
        Ok(weighted_hits / total_weight)
    }
}

/// Draws a state from a sparse distribution by inverse-CDF walking.
fn sample_sparse(dist: &SparseVector, rng: &mut StdRng) -> usize {
    let u: f64 = rng.random::<f64>() * dist.sum();
    let mut acc = 0.0;
    let mut last = 0;
    for (i, p) in dist.iter() {
        acc += p;
        last = i;
        if u < acc {
            return i;
        }
    }
    last // numeric tail: return the final support state
}

/// Draws the successor of `state` from the chain's transition row.
fn sample_row(chain: &MarkovChain, state: usize, rng: &mut StdRng) -> usize {
    let (cols, vals) = chain.matrix().row(state);
    debug_assert!(!cols.is_empty(), "stochastic rows are non-empty");
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (&c, &p) in cols.iter().zip(vals) {
        acc += p;
        if u < acc {
            return c as usize;
        }
    }
    cols[cols.len() - 1] as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::observation::Observation;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn object_at_s2() -> UncertainObject {
        UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap())
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn estimate_converges_to_0864() {
        let mc = MonteCarlo::new(40_000, 7);
        let p = mc.exists_probability(&paper_chain(), &object_at_s2(), &paper_window()).unwrap();
        // 4σ tolerance at n = 40,000: ≈ 0.0069.
        let tol = 4.0 * MonteCarlo::standard_error(0.864, 40_000);
        assert!((p - 0.864).abs() < tol, "estimate {p} off by more than {tol}");
    }

    #[test]
    fn k_distribution_converges_to_section_7_values() {
        let mc = MonteCarlo::new(40_000, 11);
        let dist =
            mc.ktimes_distribution(&paper_chain(), &object_at_s2(), &paper_window()).unwrap();
        for (k, expected) in [0.136, 0.672, 0.192].into_iter().enumerate() {
            let tol = 4.0 * MonteCarlo::standard_error(expected, 40_000);
            assert!((dist[k] - expected).abs() < tol, "k={k}: {dist:?}");
        }
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forall_equals_top_count_bucket() {
        let mc = MonteCarlo::new(5_000, 3);
        let counts = mc.visit_counts(&paper_chain(), &object_at_s2(), &paper_window()).unwrap();
        let forall =
            mc.forall_probability(&paper_chain(), &object_at_s2(), &paper_window()).unwrap();
        assert_eq!(counts[counts.len() - 1], forall);
    }

    #[test]
    fn deterministic_per_seed() {
        let mc = MonteCarlo::new(500, 42);
        let a = mc.exists_probability(&paper_chain(), &object_at_s2(), &paper_window()).unwrap();
        let b = mc.exists_probability(&paper_chain(), &object_at_s2(), &paper_window()).unwrap();
        assert_eq!(a, b);
        let c = MonteCarlo::new(500, 43)
            .exists_probability(&paper_chain(), &object_at_s2(), &paper_window())
            .unwrap();
        assert_ne!(a, c, "different seeds should (virtually always) differ");
    }

    #[test]
    fn standard_error_formula() {
        assert!((MonteCarlo::standard_error(0.5, 100) - 0.05).abs() < 1e-12);
        assert_eq!(MonteCarlo::standard_error(0.5, 0), f64::INFINITY);
        assert_eq!(MonteCarlo::standard_error(0.0, 100), 0.0);
    }

    #[test]
    fn batch_evaluation_counts_transitions() {
        let mut db = TrajectoryDatabase::new(paper_chain());
        db.insert(object_at_s2()).unwrap();
        let mc = MonteCarlo::new(100, 1);
        let mut stats = EvalStats::new();
        let results = mc.evaluate_exists(&db, &paper_window(), &mut stats).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(stats.transitions, 300); // 100 samples × 3 transitions
        let kresults = mc.evaluate_ktimes(&db, &paper_window()).unwrap();
        assert_eq!(kresults[0].probabilities.len(), 3);
    }

    #[test]
    fn multi_observation_importance_sampling() {
        // Section VI example: obs s1@t0 and s2@t3 force P∃ = 0 for the
        // window S▫ = {s2}, T▫ = {1, 2} under the modified chain.
        let chain = MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.5, 0.0, 0.5], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap();
        let object = UncertainObject::new(
            5,
            vec![Observation::exact(0, 3, 0).unwrap(), Observation::exact(3, 3, 1).unwrap()],
        )
        .unwrap();
        let window = QueryWindow::from_states(3, [1usize], TimeSet::interval(1, 2)).unwrap();
        let mc = MonteCarlo::new(20_000, 5);
        let p = mc.exists_probability_multi(&chain, &object, &window).unwrap();
        assert!(p.abs() < 1e-12, "only the non-hitting path is consistent, got {p}");
        let _ = EngineConfig::default();
    }

    #[test]
    fn impossible_evidence_is_reported() {
        // Second observation at an unreachable state.
        let chain = paper_chain();
        let object = UncertainObject::new(
            6,
            vec![
                Observation::exact(0, 3, 1).unwrap(),
                // From s2, reaching s2 again at t=1 is impossible.
                Observation::exact(1, 3, 1).unwrap(),
            ],
        )
        .unwrap();
        let window = QueryWindow::from_states(3, [0usize], TimeSet::at(1)).unwrap();
        let mc = MonteCarlo::new(1_000, 2);
        assert!(matches!(
            mc.exists_probability_multi(&chain, &object, &window),
            Err(crate::error::QueryError::ImpossibleEvidence)
        ));
    }
}
