//! Exact possible-worlds enumeration — the ground truth oracle.
//!
//! The paper observes that the number of possible worlds is `O(|S|^δt)`,
//! making enumeration infeasible in general — that blow-up is the whole
//! motivation for the matrix framework. On *tiny* instances, however,
//! enumeration is the perfect test oracle: this module walks every path of
//! non-zero probability, weights it (including multi-observation
//! likelihoods, Section VI semantics), and tallies each query predicate
//! directly from the definition. Every exact engine in this crate is
//! cross-checked against it.

use ust_markov::MarkovChain;

use crate::engine::object_based::validate;
use crate::error::{QueryError, Result};
use crate::object::UncertainObject;
use crate::query::QueryWindow;

/// Exact results of the enumeration: the full visit-count distribution and
/// the derived predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveResult {
    /// `P(k)` for `k ∈ {0..|T▫|}` under possible-worlds semantics.
    pub ktimes: Vec<f64>,
}

impl ExhaustiveResult {
    /// PST∃Q probability.
    pub fn exists(&self) -> f64 {
        1.0 - self.ktimes.first().copied().unwrap_or(1.0)
    }

    /// PST∀Q probability.
    pub fn forall(&self) -> f64 {
        self.ktimes.last().copied().unwrap_or(0.0)
    }
}

/// Enumerates all possible worlds of `object` between its first observation
/// and `max(t_end, last observation)`, conditioning on every observation
/// (Section VI) and tallying window visit counts.
///
/// `budget` caps the number of expanded path prefixes; exceeding it returns
/// [`QueryError::ExhaustiveBudgetExceeded`] instead of hanging the caller.
pub fn enumerate(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    budget: u64,
) -> Result<ExhaustiveResult> {
    validate(chain, object, window)?;
    let k_max = window.num_times();
    let anchor = object.anchor();
    let horizon = window.t_end().max(object.last_observation().time());

    let mut tally = vec![0.0f64; k_max + 1];
    let mut total = 0.0f64;
    let mut expansions = 0u64;

    // Depth-first over (time, state, weight, visits).
    struct Frame {
        t: u32,
        state: usize,
        weight: f64,
        visits: usize,
    }
    let mut stack: Vec<Frame> = Vec::new();
    for (s, p) in anchor.distribution().iter() {
        if p > 0.0 {
            let visits =
                usize::from(window.time_in_window(anchor.time()) && window.states().contains(s));
            stack.push(Frame { t: anchor.time(), state: s, weight: p, visits });
        }
    }

    while let Some(frame) = stack.pop() {
        expansions += 1;
        if expansions > budget {
            return Err(QueryError::ExhaustiveBudgetExceeded { budget });
        }
        if frame.t == horizon {
            tally[frame.visits.min(k_max)] += frame.weight;
            total += frame.weight;
            continue;
        }
        let (cols, vals) = chain.matrix().row(frame.state);
        let next_t = frame.t + 1;
        for (&c, &p) in cols.iter().zip(vals) {
            if p == 0.0 {
                continue;
            }
            let state = c as usize;
            let mut weight = frame.weight * p;
            // Condition on an observation at next_t, if any (Lemma 1).
            if let Some(obs) = object.observation_at(next_t) {
                weight *= obs.distribution().get(state);
                if weight == 0.0 {
                    continue;
                }
            }
            let visits = frame.visits
                + usize::from(window.time_in_window(next_t) && window.states().contains(state));
            stack.push(Frame { t: next_t, state, weight, visits });
        }
    }

    if total <= 0.0 {
        return Err(QueryError::ImpossibleEvidence);
    }
    // Possible-worlds semantics (Equation 1): normalize by the surviving
    // world mass (total = 1 when no conditioning removed worlds).
    Ok(ExhaustiveResult { ktimes: tally.into_iter().map(|w| w / total).collect() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn object_at_s2() -> UncertainObject {
        UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap())
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn reproduces_all_worked_examples() {
        let r = enumerate(&paper_chain(), &object_at_s2(), &paper_window(), 1 << 20).unwrap();
        assert!((r.exists() - 0.864).abs() < 1e-12);
        assert!((r.ktimes[0] - 0.136).abs() < 1e-12);
        assert!((r.ktimes[1] - 0.672).abs() < 1e-12);
        assert!((r.ktimes[2] - 0.192).abs() < 1e-12);
        assert!((r.forall() - 0.192).abs() < 1e-12);
        assert!((r.ktimes.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_is_enforced() {
        assert!(matches!(
            enumerate(&paper_chain(), &object_at_s2(), &paper_window(), 3),
            Err(QueryError::ExhaustiveBudgetExceeded { budget: 3 })
        ));
    }

    #[test]
    fn section_6_multi_observation_example() {
        // Chain of Section VI (row 2 = 0.5/0.5), obs s1@t0 and the paper's
        // uncertain observation (s2 or s5→ here states s2/s... the paper
        // uses obs = (0, 0.5, 0, 0, 0.5, 0) over the doubled space, i.e.
        // location s2 with the hit flag unknown). With a point observation
        // at s2@t3 and window S▫={s2}, T▫={1,2}: the only consistent path
        // is s1→s3→s3→s2, which avoids the window → P∃ = 0.
        let chain = MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.5, 0.0, 0.5], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap();
        let object = UncertainObject::new(
            2,
            vec![Observation::exact(0, 3, 0).unwrap(), Observation::exact(3, 3, 1).unwrap()],
        )
        .unwrap();
        let window = QueryWindow::from_states(3, [1usize], TimeSet::interval(1, 2)).unwrap();
        let r = enumerate(&chain, &object, &window, 1 << 20).unwrap();
        assert!(r.exists().abs() < 1e-12);
    }

    #[test]
    fn conditioning_renormalizes_worlds() {
        // Observation at t=1 fixes the state to s1 (reachable from s2 with
        // p=0.6). Conditioned on that, a window {s1}×{1} is hit surely.
        let object = UncertainObject::new(
            3,
            vec![Observation::exact(0, 3, 1).unwrap(), Observation::exact(1, 3, 0).unwrap()],
        )
        .unwrap();
        let window = QueryWindow::from_states(3, [0usize], TimeSet::at(1)).unwrap();
        let r = enumerate(&paper_chain(), &object, &window, 1 << 20).unwrap();
        assert!((r.exists() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn impossible_evidence_detected() {
        let object = UncertainObject::new(
            4,
            vec![
                Observation::exact(0, 3, 1).unwrap(),
                Observation::exact(1, 3, 1).unwrap(), // s2 → s2 impossible
            ],
        )
        .unwrap();
        let window = QueryWindow::from_states(3, [0usize], TimeSet::at(1)).unwrap();
        assert!(matches!(
            enumerate(&paper_chain(), &object, &window, 1 << 20),
            Err(QueryError::ImpossibleEvidence)
        ));
    }

    #[test]
    fn horizon_extends_to_late_observation() {
        // Observation after t_end still conditions the result.
        let object = UncertainObject::new(
            5,
            vec![Observation::exact(0, 3, 1).unwrap(), Observation::exact(4, 3, 1).unwrap()],
        )
        .unwrap();
        let window = QueryWindow::from_states(3, [0usize], TimeSet::at(1)).unwrap();
        let unconditioned = enumerate(&paper_chain(), &object_at_s2(), &window, 1 << 20).unwrap();
        let conditioned = enumerate(&paper_chain(), &object, &window, 1 << 20).unwrap();
        assert!((conditioned.exists() - unconditioned.exists()).abs() > 1e-6);
    }
}
