//! The query planner: from a declarative [`QuerySpec`] to an executed
//! [`QueryAnswer`].
//!
//! The paper's central observation is that the query model (predicate ×
//! decorator × window) and the evaluation technique (object-based forward
//! vs. query-based backward) are **orthogonal axes**: any predicate can be
//! answered by either strategy, with identical results and very different
//! costs. This module owns that choice. [`QueryPlan`] is the planner's
//! decision record: per-strategy cost estimates derived from database and
//! window statistics (object count, propagation horizon, matrix density,
//! backward-field cache residency), the chosen [`Strategy`], and a
//! human-readable rationale. [`crate::engine::QueryProcessor::explain`]
//! returns the plan without executing;
//! [`crate::engine::QueryProcessor::execute`] plans and then dispatches to
//! the same batched, sharded drivers the legacy per-predicate entry points
//! used — so planned answers are bit-for-bit identical to the
//! pre-planner API (pinned by `tests/query_planner.rs`).
//!
//! ## Cost model
//!
//! Costs are counted in *matrix-entry touches*, the unit of the paper's
//! complexity claims (`O(|D|·|S_reach|²·δt)` for OB vs
//! `O(|D| + |S_reach|²·δt)` for QB):
//!
//! * **Object-based**: every object propagates from its anchor to
//!   `t_end`, so the step work is `Σ_o (t_end − t_o) × L × nnz(M)`, where
//!   `L` is the number of rows per object (1 for ∃/∀, `|T▫|+1` count
//!   levels for PSTkQ). Threshold and top-k decorators terminate early on
//!   bound decisions, modelled as a constant discount.
//! * **Query-based**: one backward sweep per populated model —
//!   `(t_end − min_o t_o) × L × nnz(M)` — plus one sparse dot product per
//!   object. A sweep whose `(model, window)` field is **cache-resident**
//!   costs nothing; a field extendable downward pays only the missing
//!   suffix. This is what makes repeated dashboards and bursts plan to QB.
//! * **Monte Carlo**: never chosen by [`Strategy::Auto`] (it is
//!   approximate); its sampling cost is still estimated for `explain`.
//!
//! The estimates are deliberately coarse — they rank strategies, they do
//! not predict wall clock.
//!
//! ## Calibration
//!
//! Every execution reports its *observed* propagation-step count back to
//! the processor's [`crate::serving::Metrics`] registry, which keeps a
//! per-strategy EWMA of `observed / estimated` steps for bound-decorated
//! (threshold / top-k) queries. With
//! [`EngineConfig::calibrate_planner`] enabled, that learned ratio
//! replaces the flat `×0.5` early-termination prior — the
//! planner's discount then reflects how much early termination the
//! workload actually exhibits instead of assuming half. Calibration is
//! **off by default** because a learned discount can legitimately flip a
//! borderline plan between two executions of the same spec, and the two
//! exact strategies agree only to rounding, not to the bit; the default
//! keeps plans bit-stable across a session. The EWMA state is recorded
//! and rendered by [`crate::engine::QueryProcessor::explain`] either way.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cluster;
use crate::database::TrajectoryDatabase;
use crate::engine::cache::{BackwardFieldCache, KTimesFieldCache};
use crate::engine::query_based::{validated_model_groups_on, SharedFieldPlan};
use crate::engine::{forall, ktimes, object_based, EngineConfig, PrefilterMode};
use crate::error::{QueryError, Result};
use crate::index::{intersect_sorted, SpatioTemporalIndex};
use crate::parallel::ShardedExecutor;
use crate::query::{
    Decorator, ObjectKDistribution, ObjectProbability, Predicate, QueryAnswer, QuerySpec,
    QueryWindow, Strategy,
};
use crate::ranking::{self, RankedObject};
use crate::stats::EvalStats;
use crate::threshold;

/// Cold-start discount applied to the object-based step estimate when a
/// threshold or top-k decorator lets the forward sweep terminate on bound
/// decisions — superseded by the measured per-strategy EWMA once
/// [`EngineConfig::calibrate_planner`] is on and samples exist.
const OB_EARLY_TERMINATION_DISCOUNT: f64 = 0.5;

/// Under [`PrefilterMode::Auto`], candidate sets smaller than this skip the
/// index pass: the O(|D∩|) bookkeeping of a pruned dispatch is unlikely to
/// beat just evaluating everyone. [`PrefilterMode::On`] ignores the floor.
const PREFILTER_AUTO_MIN_OBJECTS: usize = 256;

/// A strategy's estimated evaluation cost, in matrix-entry touches.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEstimate {
    /// Propagation work: forward steps (OB), backward sweep steps (QB) or
    /// sampled walk transitions (MC), scaled by the matrix density.
    pub step_ops: f64,
    /// Per-object finishing work: result assembly (OB) or anchor dot
    /// products (QB).
    pub object_ops: f64,
}

impl CostEstimate {
    /// The total estimated cost.
    pub fn total(&self) -> f64 {
        self.step_ops + self.object_ops
    }
}

/// The planner's decision record for one [`QuerySpec`]: inputs, per-
/// strategy estimates, the chosen strategy and the rationale.
///
/// Obtained from [`crate::engine::QueryProcessor::explain`]; the
/// [`fmt::Display`] implementation renders a compact report.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The strategy the query will run under (never [`Strategy::Auto`]:
    /// an `Auto` spec is resolved, an explicit override is echoed).
    pub strategy: Strategy,
    /// Estimated cost of object-based evaluation.
    pub object_based: CostEstimate,
    /// Estimated cost of query-based evaluation (cache-aware).
    pub query_based: CostEstimate,
    /// Estimated cost of Monte-Carlo sampling (for comparison only; never
    /// chosen automatically).
    pub monte_carlo: CostEstimate,
    /// Objects the query touches (after any subset restriction).
    pub num_objects: usize,
    /// Populated transition models among those objects (= backward fields
    /// a query-based run needs).
    pub num_models: usize,
    /// Models whose backward field is fully cache-resident for this
    /// window and anchor population (a QB run would sweep nothing).
    pub cached_fields: usize,
    /// Models whose cached field covers a suffix and can be extended
    /// downward instead of recomputed.
    pub extendable_fields: usize,
    /// `|S▫|` of the window.
    pub window_states: usize,
    /// `|T▫|` of the window.
    pub window_times: usize,
    /// The propagation horizon `t_end = max(T▫)`.
    pub horizon: u32,
    /// The step discount applied to the object-based estimate: `1.0` for
    /// unbounded decorators, the flat prior or the learned EWMA under a
    /// threshold/top-k decorator.
    pub ob_discount: f64,
    /// True when [`QueryPlan::ob_discount`] is the EWMA-learned ratio
    /// rather than a prior (requires
    /// [`EngineConfig::calibrate_planner`] plus at least one observed
    /// bound-decorated object-based run).
    pub ob_discount_learned: bool,
    /// The step discount applied to the query-based estimate (learned;
    /// `1.0` cold — the backward sweep has no early termination, so this
    /// mostly absorbs estimator slack).
    pub qb_discount: f64,
    /// True when [`QueryPlan::qb_discount`] is EWMA-learned (see
    /// [`QueryPlan::ob_discount_learned`]).
    pub qb_discount_learned: bool,
    /// True when at least one discount is EWMA-learned — each discount's
    /// own `*_learned` flag says which; a strategy without samples still
    /// falls back to its prior.
    pub calibrated: bool,
    /// Observed object-based matrix-entry throughput (entries per second,
    /// see [`crate::serving::Metrics::entry_throughputs`]). Populated only
    /// under [`EngineConfig::calibrate_planner`]; when both strategies
    /// have a measured rate, [`Strategy::Auto`] ranks them by *predicted
    /// seconds* (`estimated entries / observed rate`) instead of raw entry
    /// counts.
    pub ob_entry_throughput: Option<f64>,
    /// Observed query-based matrix-entry throughput, ditto.
    pub qb_entry_throughput: Option<f64>,
    /// Candidate objects handed to the engines after the index prefilter —
    /// the `|D∩|` the cost estimates above were computed over. Equals
    /// [`QueryPlan::num_objects`] when no pruning ran.
    pub candidates_examined: usize,
    /// Candidate objects discarded by the spatio-temporal index before
    /// costing (provably `P∃ = 0`; zero when no pruning ran).
    pub candidates_pruned: usize,
    /// One-line human-readable rationale for the choice.
    pub reason: String,
    /// Undiscounted propagation-step estimates `(object-based,
    /// query-based)` in vector steps — the denominators of the
    /// calibration ratios fed back to [`crate::serving::Metrics`].
    pub(crate) raw_steps: (f64, f64),
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan: {:?} — {} (|D∩| = {}, models = {}, window {}×{} to t = {})",
            self.strategy,
            self.reason,
            self.num_objects,
            self.num_models,
            self.window_states,
            self.window_times,
            self.horizon,
        )?;
        writeln!(
            f,
            "  object-based : {:>12.0} step ops + {:>10.0} object ops = {:>12.0}",
            self.object_based.step_ops,
            self.object_based.object_ops,
            self.object_based.total()
        )?;
        writeln!(
            f,
            "  query-based  : {:>12.0} step ops + {:>10.0} object ops = {:>12.0} \
             ({} cached, {} extendable of {} fields)",
            self.query_based.step_ops,
            self.query_based.object_ops,
            self.query_based.total(),
            self.cached_fields,
            self.extendable_fields,
            self.num_models,
        )?;
        writeln!(
            f,
            "  monte-carlo  : {:>12.0} walk transitions (approximate; explicit override only)",
            self.monte_carlo.step_ops
        )?;
        write!(
            f,
            "  calibration  : ob ×{:.3} ({}), qb ×{:.3} ({})",
            self.ob_discount,
            if self.ob_discount_learned { "ewma" } else { "prior" },
            self.qb_discount,
            if self.qb_discount_learned { "ewma" } else { "prior" },
        )?;
        if self.ob_entry_throughput.is_some() || self.qb_entry_throughput.is_some() {
            write!(
                f,
                "\n  throughput   : ob {} entries/s, qb {} entries/s (ewma)",
                self.ob_entry_throughput.map_or("—".into(), |r| format!("{r:.0}")),
                self.qb_entry_throughput.map_or("—".into(), |r| format!("{r:.0}")),
            )?;
        }
        if self.candidates_pruned > 0 {
            write!(
                f,
                "\n  prefilter    : {} of {} candidate(s) examined, {} pruned by the \
                 spatio-temporal index",
                self.candidates_examined, self.num_objects, self.candidates_pruned,
            )?;
        }
        Ok(())
    }
}

/// Everything an execution needs besides the spec — borrowed from the
/// [`crate::engine::QueryProcessor`] for synchronous calls, owned (via
/// `Arc`s and a database snapshot) by asynchronous submissions.
pub(crate) struct ExecContext<'a> {
    /// The database (or an owned snapshot of it).
    pub db: &'a TrajectoryDatabase,
    /// Engine tuning knobs.
    pub config: &'a EngineConfig,
    /// The fan-out executor (inline or pooled).
    pub executor: ShardedExecutor,
    /// The PST∃Q backward-field cache shared across queries.
    pub cache: &'a Mutex<BackwardFieldCache>,
    /// The PSTkQ level-field cache shared across queries.
    pub ktimes_cache: &'a Mutex<KTimesFieldCache>,
    /// The processor's serving registry: every execution is recorded
    /// here, and the planner reads its calibration EWMAs.
    pub metrics: &'a crate::serving::Metrics,
}

/// Maps a spec's optional object-id subset to ascending database indices;
/// `None` means the whole database. Fails with
/// [`QueryError::UnknownObject`] when an id does not exist.
pub(crate) fn resolve_indices(db: &TrajectoryDatabase, spec: &QuerySpec) -> Result<Vec<usize>> {
    match spec.objects() {
        None => Ok((0..db.len()).collect()),
        Some(ids) => {
            let mut out = Vec::with_capacity(ids.len());
            let mut matched = vec![false; ids.len()];
            for (idx, object) in db.objects().iter().enumerate() {
                if let Ok(pos) = ids.binary_search(&object.id()) {
                    matched[pos] = true;
                    out.push(idx);
                }
            }
            if let Some(pos) = matched.iter().position(|m| !m) {
                return Err(QueryError::UnknownObject { id: ids[pos] });
            }
            Ok(out)
        }
    }
}

/// The outcome of an index prefilter pass: the candidates that survive and
/// the complement that was pruned, both as ascending database indices
/// partitioning the resolved set.
pub(crate) struct Prefiltered {
    /// Candidates the engines will actually evaluate.
    pub survivors: Vec<usize>,
    /// Candidates with provably `P∃ = 0`, answered without evaluation.
    pub pruned: Vec<usize>,
}

/// Runs the spatio-temporal index over the resolved candidate set, when
/// that is both enabled and *provably answer-preserving*. Returns `None`
/// whenever the unpruned path must run instead — which is the common case:
///
/// * [`PrefilterMode::Off`], or [`PrefilterMode::Auto`] on a database
///   below the size floor, or no index (no attached space);
/// * a predicate other than `∃`, or the top-k decorator: pruned objects
///   would have to be re-synthesized into the answer, and only the `∃`
///   probability/threshold shapes make that bit-exact (a pruned object's
///   `P∃` is `0.0` exactly in every engine, whereas `∀`/PSTkQ answers
///   carry float residue and OB top-k has its own pruner with a different
///   omission contract);
/// * a window whose mask dimension differs from the database's, or one
///   starting before the latest first observation over the candidates —
///   in both cases the exact drivers are entitled to fail validation, and
///   pruning must never mask that error.
fn prefilter_candidates(
    ctx: &ExecContext<'_>,
    spec: &QuerySpec,
    indices: &[usize],
) -> Option<Prefiltered> {
    match ctx.config.prefilter {
        PrefilterMode::Off => return None,
        PrefilterMode::Auto if indices.len() < PREFILTER_AUTO_MIN_OBJECTS => return None,
        PrefilterMode::Auto | PrefilterMode::On => {}
    }
    if spec.predicate() != Predicate::Exists || matches!(spec.decorator(), Decorator::TopK(_)) {
        return None;
    }
    let index = ctx.db.spatial_index()?;
    let window = spec.window();
    if window.states().dim() != ctx.db.num_states() {
        return None;
    }
    // Validation guard: answering for a pruned object without touching it
    // is only sound when per-object validation could not have rejected the
    // window. All dimensions already match, so the only per-object check
    // left is `t_start ≥ anchor time` — over the whole database that is
    // the index's O(1) max; over an explicit subset, an O(k) fold.
    let max_anchor = if indices.len() == ctx.db.len() {
        index.max_anchor_time()
    } else {
        indices
            .iter()
            .filter_map(|&idx| ctx.db.object(idx).map(|o| o.anchor().time()))
            .max()
            .unwrap_or(0)
    };
    if window.t_start() < max_anchor {
        return None;
    }
    let candidates = index.candidates(window);
    let survivors = if indices.len() == ctx.db.len() {
        candidates
    } else {
        intersect_sorted(indices, &candidates)
    };
    if survivors.len() == indices.len() {
        // Nothing pruned: the plain path avoids the merge bookkeeping.
        return None;
    }
    let mut pruned = Vec::with_capacity(indices.len() - survivors.len());
    let mut s = 0usize;
    for &idx in indices {
        if s < survivors.len() && survivors[s] == idx {
            s += 1;
        } else {
            pruned.push(idx);
        }
    }
    Some(Prefiltered { survivors, pruned })
}

/// The interval-envelope clusters to decide threshold candidates with, when
/// the clustered protocol applies: pruning enabled, an exact strategy, a
/// heterogeneous model population, and an index carrying non-trivial
/// clusters. Bounds-decided objects skip exact evaluation entirely;
/// undecided ones fall through to the same batched drivers the unclustered
/// path uses, so answers stay identical.
fn envelope_clusters(
    ctx: &ExecContext<'_>,
    strategy: Strategy,
) -> Option<Arc<SpatioTemporalIndex>> {
    if ctx.config.prefilter == PrefilterMode::Off
        || strategy == Strategy::MonteCarlo
        || ctx.db.models().len() < 2
    {
        return None;
    }
    let index = ctx.db.spatial_index()?;
    (!index.clusters().is_empty()).then_some(index)
}

/// Builds the [`QueryPlan`] for a spec: resolves the candidate set, runs
/// the index prefilter, estimates every strategy's cost from the surviving
/// candidates and cache residency, then resolves [`Strategy::Auto`] to the
/// cheaper exact strategy (explicit overrides are echoed with the same
/// estimates attached).
pub(crate) fn plan(ctx: &ExecContext<'_>, spec: &QuerySpec) -> Result<QueryPlan> {
    let indices = resolve_indices(ctx.db, spec)?;
    match prefilter_candidates(ctx, spec, &indices) {
        Some(pre) => plan_on(ctx, spec, &pre.survivors, pre.pruned.len()),
        None => plan_on(ctx, spec, &indices, 0),
    }
}

/// The planning body over already-prefiltered indices (`pruned` counts the
/// candidates the index discarded), so [`execute`] pays the subset
/// resolution and the index pass once, not per phase. The cost estimates
/// see only the surviving candidates — this is where pruning shrinks the
/// planner's `|D|`.
fn plan_on(
    ctx: &ExecContext<'_>,
    spec: &QuerySpec,
    indices: &[usize],
    pruned: usize,
) -> Result<QueryPlan> {
    let window = spec.window();
    let groups = validated_model_groups_on(ctx.db, indices, window)?;

    let levels = match spec.predicate() {
        Predicate::KTimes(_) => (window.num_times() + 1) as f64,
        _ => 1.0,
    };
    // The QB sweep (and its cache entries) run over the complement window
    // for PST∀Q — the Section VII reduction — so residency is probed there.
    let probe_window = match spec.predicate() {
        Predicate::ForAll => Some(window.complement_states()?),
        _ => None,
    };
    let probe_window = probe_window.as_ref().unwrap_or(window);
    let t_end = window.t_end();

    let mut ob = CostEstimate::default();
    let mut qb = CostEstimate::default();
    let mut mc = CostEstimate::default();
    let mut cached_fields = 0usize;
    let mut extendable_fields = 0usize;
    // Undiscounted vector-step totals (no nnz scaling) — the unit the
    // EvalStats counters report in, so observed/estimated ratios are
    // dimensionless.
    let mut ob_raw_steps = 0.0f64;
    let mut qb_raw_steps = 0.0f64;

    for group in &groups {
        let chain = &ctx.db.models()[group.model];
        let nnz = chain.matrix().nnz() as f64;
        let spans: f64 = group.anchors.iter().map(|&a| (t_end - a.min(t_end)) as f64).sum::<f64>();
        ob.step_ops += spans * levels * nnz;
        ob.object_ops += group.members.len() as f64;
        ob_raw_steps += spans * levels;

        let min_anchor = group.anchors.iter().copied().min().unwrap_or(t_end);
        let full_sweep = (t_end - min_anchor.min(t_end)) as f64;
        let residency = match spec.predicate() {
            Predicate::KTimes(_) => {
                let cache =
                    ctx.ktimes_cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                cache.residency(group.model, chain, probe_window, &group.anchors)
            }
            _ => {
                let cache = ctx.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                cache.residency(group.model, chain, probe_window, &group.anchors)
            }
        };
        let sweep = match residency {
            (true, _) => {
                cached_fields += 1;
                0.0
            }
            (false, Some(floor)) => {
                extendable_fields += 1;
                (floor.max(min_anchor) - min_anchor) as f64
            }
            (false, None) => full_sweep,
        };
        qb.step_ops += sweep * levels * nnz;
        qb_raw_steps += sweep * levels;
        qb.object_ops += group
            .members
            .iter()
            .map(|&idx| ctx.db.object(idx).map_or(0.0, |o| o.anchor().distribution().nnz() as f64))
            .sum::<f64>();

        mc.step_ops += spans * spec.sampling().samples as f64;
    }

    let bounded = matches!(spec.decorator(), Decorator::Threshold(_) | Decorator::TopK(_));
    let (learned_ob, learned_qb) = ctx.metrics.discounts();
    let calibrate = ctx.config.calibrate_planner;
    let ob_discount_learned = bounded && calibrate && learned_ob.is_some();
    let qb_discount_learned = bounded && calibrate && learned_qb.is_some();
    let calibrated = ob_discount_learned || qb_discount_learned;
    let (ob_discount, qb_discount) = if bounded {
        if calibrate {
            (learned_ob.unwrap_or(OB_EARLY_TERMINATION_DISCOUNT), learned_qb.unwrap_or(1.0))
        } else {
            (OB_EARLY_TERMINATION_DISCOUNT, 1.0)
        }
    } else {
        (1.0, 1.0)
    };
    ob.step_ops *= ob_discount;
    qb.step_ops *= qb_discount;

    // Throughput calibration: with measured matrix-entry rates for both
    // strategies, Auto ranks by predicted seconds instead of raw entry
    // counts — a QB sweep that streams entries 3× faster than the OB
    // kernels deserves a 3× handicap. Gated exactly like the discounts:
    // wall-clock-derived feedback is opt-in.
    let (ob_entry_throughput, qb_entry_throughput) =
        if calibrate { ctx.metrics.entry_throughputs() } else { (None, None) };
    let (ob_cost, qb_cost) = match (ob_entry_throughput, qb_entry_throughput) {
        (Some(ob_rate), Some(qb_rate)) if ob_rate > 0.0 && qb_rate > 0.0 => {
            (ob.total() / ob_rate, qb.total() / qb_rate)
        }
        _ => (ob.total(), qb.total()),
    };

    let (strategy, reason) = match spec.strategy() {
        Strategy::Auto => {
            let how = if calibrated { "auto (ewma-calibrated)" } else { "auto" };
            if qb_cost <= ob_cost {
                (
                    Strategy::QueryBased,
                    format!(
                        "{how}: backward sweep amortizes over {} object(s){}",
                        indices.len(),
                        if cached_fields > 0 {
                            format!(", {cached_fields} field(s) cache-resident")
                        } else {
                            String::new()
                        }
                    ),
                )
            } else {
                (
                    Strategy::ObjectBased,
                    format!(
                        "{how}: {} forward pass(es) estimated cheaper than the backward sweep",
                        indices.len()
                    ),
                )
            }
        }
        explicit => (explicit, "explicit strategy override".to_string()),
    };

    Ok(QueryPlan {
        strategy,
        object_based: ob,
        query_based: qb,
        monte_carlo: mc,
        num_objects: indices.len() + pruned,
        num_models: groups.len(),
        cached_fields,
        extendable_fields,
        window_states: window.states().count(),
        window_times: window.num_times(),
        horizon: t_end,
        ob_discount,
        ob_discount_learned,
        qb_discount,
        qb_discount_learned,
        calibrated,
        ob_entry_throughput,
        qb_entry_throughput,
        candidates_examined: indices.len(),
        candidates_pruned: pruned,
        reason,
        raw_steps: (ob_raw_steps, qb_raw_steps),
    })
}

/// Plans and executes a spec: the engine behind
/// [`crate::engine::QueryProcessor::execute`] and the body of every
/// asynchronously submitted query.
pub(crate) fn execute(
    ctx: &ExecContext<'_>,
    spec: &QuerySpec,
    stats: &mut EvalStats,
) -> Result<QueryAnswer> {
    execute_monitored(ctx, spec, stats, None, None)
}

/// [`execute`] with the serving hooks attached: `interrupt` is polled
/// once **between planning and execution** (how a submitted query's
/// cancellation flag or deadline sheds the expensive phase), and
/// `queue_wait` is the submission-to-start latency attributed to the
/// execution's metrics record. Every call — synchronous or asynchronous —
/// reports plan time, execute time and cache counters to
/// [`crate::serving::Metrics`]. The cost model itself runs when it has a
/// consumer: always for [`Strategy::Auto`] (it decides the strategy),
/// and for explicit strategies only under
/// [`EngineConfig::calibrate_planner`] (where its estimates feed the
/// EWMA) — an explicit strategy with calibration off skips the
/// cost-model and residency probes entirely, exactly like the pre-metrics
/// execute path, and records `estimated_steps = 0`.
/// An execution shed by `interrupt` is *not* recorded as an execution;
/// the async lifecycle counters account for it instead.
pub(crate) fn execute_monitored(
    ctx: &ExecContext<'_>,
    spec: &QuerySpec,
    stats: &mut EvalStats,
    interrupt: Option<&(dyn Fn() -> Option<QueryError> + '_)>,
    queue_wait: Option<Duration>,
) -> Result<QueryAnswer> {
    let bounded = matches!(spec.decorator(), Decorator::Threshold(_) | Decorator::TopK(_));
    let need_plan = spec.strategy() == Strategy::Auto || ctx.config.calibrate_planner;
    // lint: allow(wall-clock-in-deterministic-path) — metrics capture only:
    // plan_time is recorded into the serving EWMA after the fact and never
    // feeds this query's own strategy choice.
    let plan_start = Instant::now();
    let planned = resolve_indices(ctx.db, spec).and_then(|indices| {
        let (indices, pruned) = match prefilter_candidates(ctx, spec, &indices) {
            Some(pre) => (pre.survivors, pre.pruned),
            None => (indices, Vec::new()),
        };
        if need_plan {
            plan_on(ctx, spec, &indices, pruned.len()).map(|plan| (indices, pruned, Some(plan)))
        } else {
            Ok((indices, pruned, None))
        }
    });
    let (indices, pruned, plan) = match planned {
        Ok(v) => v,
        Err(e) => {
            ctx.metrics.record_execution(&crate::serving::ExecutionRecord {
                predicate: spec.predicate(),
                strategy: spec.strategy(),
                bounded,
                estimated_steps: 0.0,
                plan_time: plan_start.elapsed(),
                execute_time: Duration::ZERO,
                queue_wait,
                delta: EvalStats::new(),
                ok: false,
            });
            return Err(e);
        }
    };
    let plan_time = plan_start.elapsed();
    let strategy = plan.as_ref().map_or(spec.strategy(), |p| p.strategy);
    debug_assert!(strategy != Strategy::Auto, "Auto always plans");
    if let Some(check) = interrupt {
        if let Some(err) = check() {
            return Err(err);
        }
    }
    let before = stats.clone();
    // lint: allow(wall-clock-in-deterministic-path) — metrics capture only:
    // execute_time is an observability record; the dispatch below is
    // already committed to `strategy`.
    let exec_start = Instant::now();
    stats.candidates_examined += indices.len() as u64;
    stats.candidates_pruned += pruned.len() as u64;
    let result = dispatch(ctx, spec, strategy, &indices, &pruned, stats);
    ctx.metrics.record_execution(&crate::serving::ExecutionRecord {
        predicate: spec.predicate(),
        strategy,
        bounded,
        estimated_steps: plan.as_ref().map_or(0.0, |p| match strategy {
            Strategy::ObjectBased => p.raw_steps.0,
            Strategy::QueryBased => p.raw_steps.1,
            _ => 0.0,
        }),
        plan_time,
        execute_time: exec_start.elapsed(),
        queue_wait,
        delta: stats.delta_since(&before),
        ok: result.is_ok(),
    });
    result
}

/// Runs a spec under an already-resolved strategy — the strategy ×
/// predicate × decorator dispatch onto the batched, sharded drivers.
/// `pruned` holds the index-pruned complement of `indices` (empty when no
/// prefilter ran); pruned objects are answered as exact `P∃ = 0` without
/// being evaluated.
fn dispatch(
    ctx: &ExecContext<'_>,
    spec: &QuerySpec,
    strategy: Strategy,
    indices: &[usize],
    pruned: &[usize],
    stats: &mut EvalStats,
) -> Result<QueryAnswer> {
    let window = spec.window();

    let sampling = spec.sampling();
    match spec.predicate() {
        Predicate::Exists => match spec.decorator() {
            Decorator::Probabilities => {
                let probs = exists_probs(ctx, strategy, indices, window, sampling, stats)?;
                Ok(QueryAnswer::Probabilities(merge_pruned_zeros(ctx.db, indices, probs, pruned)?))
            }
            Decorator::Threshold(tau) => {
                let ids =
                    threshold_ids(ctx, strategy, indices, pruned, window, tau, sampling, stats)?;
                Ok(QueryAnswer::ObjectIds(ids))
            }
            Decorator::TopK(k) => {
                let ranked = if strategy == Strategy::ObjectBased {
                    // Reachability-pruned ranking, the legacy `topk` path.
                    if k == 0 {
                        Vec::new()
                    } else {
                        let candidates =
                            ctx.executor.run_on(indices, ctx.config, stats, |pipeline, idxs| {
                                ranking::topk_batched(pipeline, ctx.db, idxs, window, k)
                            })?;
                        let mut best: Vec<RankedObject> = Vec::with_capacity(k + 1);
                        for candidate in candidates {
                            ranking::insert_ranked(&mut best, candidate, k);
                        }
                        best
                    }
                } else {
                    ranking::select_topk(
                        exists_probs(ctx, strategy, indices, window, sampling, stats)?,
                        k,
                    )
                };
                Ok(QueryAnswer::Ranked(ranked))
            }
        },
        Predicate::ForAll => {
            let probs = forall_probs(ctx, strategy, indices, window, sampling, stats)?;
            Ok(decorate(probs, spec.decorator()))
        }
        Predicate::KTimes(k) => {
            let dists = ktimes_dists(ctx, strategy, indices, window, sampling, stats)?;
            match spec.decorator() {
                Decorator::Probabilities => Ok(QueryAnswer::Distributions(dists)),
                decorator => Ok(decorate(at_least(dists, k), decorator)),
            }
        }
    }
}

/// Applies a threshold/top-k decorator to computed probabilities (the
/// paths without a specialized bound-based driver). Also reused by the
/// streaming layer to derive a subscription's decorated answer from its
/// maintained per-object probabilities through the *same* code path, so
/// incremental and batch answers cannot drift.
pub(crate) fn decorate(probs: Vec<ObjectProbability>, decorator: Decorator) -> QueryAnswer {
    match decorator {
        Decorator::Probabilities => QueryAnswer::Probabilities(probs),
        Decorator::Threshold(tau) => QueryAnswer::ObjectIds(accepted_ids(probs, tau)),
        Decorator::TopK(k) => QueryAnswer::Ranked(ranking::select_topk(probs, k)),
    }
}

pub(crate) fn accepted_ids(probs: Vec<ObjectProbability>, tau: f64) -> Vec<u64> {
    probs.into_iter().filter(|r| r.probability >= tau).map(|r| r.object_id).collect()
}

/// Re-interleaves index-pruned candidates into a probability answer as
/// exact `0.0` entries, restoring database-index order — the order the
/// unpruned path produces. Both inputs are ascending and disjoint, so the
/// merge is a linear zip.
fn merge_pruned_zeros(
    db: &TrajectoryDatabase,
    survivors: &[usize],
    probs: Vec<ObjectProbability>,
    pruned: &[usize],
) -> Result<Vec<ObjectProbability>> {
    if pruned.is_empty() {
        return Ok(probs);
    }
    debug_assert_eq!(survivors.len(), probs.len());
    let mut out = Vec::with_capacity(survivors.len() + pruned.len());
    let mut probs = probs.into_iter();
    let (mut i, mut j) = (0usize, 0usize);
    while i < survivors.len() || j < pruned.len() {
        let take_survivor = j >= pruned.len() || (i < survivors.len() && survivors[i] < pruned[j]);
        if take_survivor {
            let p = probs
                .next()
                .ok_or(QueryError::internal("the survivor list carries one probability each"))?;
            out.push(p);
            i += 1;
        } else {
            let id = db
                .object(pruned[j])
                .ok_or(QueryError::internal("pruned indices resolve to database objects"))?
                .id();
            out.push(ObjectProbability { object_id: id, probability: 0.0 });
            j += 1;
        }
    }
    Ok(out)
}

/// Thresholded-`∃` accepted ids over a prefiltered candidate set: cluster
/// envelope bounds decide what they can (heterogeneous models only), the
/// exact drivers evaluate the rest, and — only at `τ = 0`, where `P∃ = 0`
/// still qualifies — the index-pruned complement is merged back in
/// database-index order.
#[allow(clippy::too_many_arguments)]
fn threshold_ids(
    ctx: &ExecContext<'_>,
    strategy: Strategy,
    indices: &[usize],
    pruned: &[usize],
    window: &QueryWindow,
    tau: f64,
    sampling: crate::engine::monte_carlo::MonteCarlo,
    stats: &mut EvalStats,
) -> Result<Vec<u64>> {
    let mut decisions: Vec<Option<bool>> = match envelope_clusters(ctx, strategy) {
        Some(index) => {
            cluster::decide_by_bounds(ctx.db, indices, window, tau, index.clusters(), stats)?
        }
        None => vec![None; indices.len()],
    };
    let undecided: Vec<usize> =
        indices.iter().zip(&decisions).filter(|(_, d)| d.is_none()).map(|(&idx, _)| idx).collect();
    if !undecided.is_empty() {
        let qualifies =
            threshold_qualifies(ctx, strategy, &undecided, window, tau, sampling, stats)?;
        let mut q = qualifies.into_iter();
        for d in decisions.iter_mut().filter(|d| d.is_none()) {
            let outcome = q
                .next()
                .ok_or(QueryError::internal("the driver yields one outcome per candidate"))?;
            *d = Some(outcome);
        }
    }
    let id_of = |idx: usize| {
        ctx.db
            .object(idx)
            .map(|o| o.id())
            .ok_or(QueryError::internal("threshold candidates resolve to database objects"))
    };
    if pruned.is_empty() || tau > 0.0 {
        // Pruned objects have P∃ = 0 < τ: they cannot qualify.
        return indices
            .iter()
            .zip(&decisions)
            .filter(|(_, d)| **d == Some(true))
            .map(|(&idx, _)| id_of(idx))
            .collect();
    }
    // τ = 0 accepts everything, including the pruned complement; restore
    // database-index order (every survivor qualifies here too: P∃ ≥ 0).
    let mut out = Vec::with_capacity(indices.len() + pruned.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < indices.len() || j < pruned.len() {
        let take_survivor = j >= pruned.len() || (i < indices.len() && indices[i] < pruned[j]);
        if take_survivor {
            if decisions[i] == Some(true) {
                out.push(id_of(indices[i])?);
            }
            i += 1;
        } else {
            out.push(id_of(pruned[j])?);
            j += 1;
        }
    }
    Ok(out)
}

/// Per-candidate threshold outcomes (`P∃ ≥ τ`), aligned with `indices`,
/// via the strategy's own driver: the early-terminating bound-based OB
/// driver, or probabilities compared against `τ` for QB / Monte Carlo —
/// exactly the pre-prefilter dispatch paths.
fn threshold_qualifies(
    ctx: &ExecContext<'_>,
    strategy: Strategy,
    indices: &[usize],
    window: &QueryWindow,
    tau: f64,
    sampling: crate::engine::monte_carlo::MonteCarlo,
    stats: &mut EvalStats,
) -> Result<Vec<bool>> {
    if strategy == Strategy::ObjectBased {
        // The bound-based driver: early termination per object, exactly
        // the legacy `threshold_query` path.
        let outcomes = ctx.executor.run_on(indices, ctx.config, stats, |pipeline, idxs| {
            threshold::threshold_batched(pipeline, ctx.db, idxs, window, tau)
        })?;
        Ok(outcomes.into_iter().map(|o| o.qualifies).collect())
    } else {
        Ok(exists_probs(ctx, strategy, indices, window, sampling, stats)?
            .into_iter()
            .map(|r| r.probability >= tau)
            .collect())
    }
}

/// Reduces visit-count distributions to `P(visits ≥ k)` probabilities.
/// Shared with the streaming layer (see [`decorate`]).
pub(crate) fn at_least(dists: Vec<ObjectKDistribution>, k: usize) -> Vec<ObjectProbability> {
    dists
        .into_iter()
        .map(|d| ObjectProbability { object_id: d.object_id, probability: d.prob_at_least(k) })
        .collect()
}

/// PST∃Q probabilities over `indices` under the resolved strategy.
fn exists_probs(
    ctx: &ExecContext<'_>,
    strategy: Strategy,
    indices: &[usize],
    window: &QueryWindow,
    sampling: crate::engine::monte_carlo::MonteCarlo,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    match strategy {
        Strategy::ObjectBased => {
            ctx.executor.run_on(indices, ctx.config, stats, |pipeline, idxs| {
                object_based::exists_batched(pipeline, ctx.db, idxs, window)
            })
        }
        Strategy::QueryBased => {
            let plan = SharedFieldPlan::prepare_with_cache_on(
                ctx.db, indices, window, ctx.config, ctx.cache, stats,
            )?;
            stats.fields_shared += plan.num_fields() as u64;
            crate::parallel::answer_exists_plan_on(
                &ctx.executor,
                ctx.db,
                indices,
                window,
                ctx.config,
                stats,
                &plan,
            )
        }
        Strategy::MonteCarlo => Ok(at_least(mc_counts(ctx, sampling, indices, window, stats)?, 1)),
        Strategy::Auto => Err(QueryError::internal("execute resolves Auto before dispatch")),
    }
}

/// PST∀Q probabilities over `indices`: the Section VII complement
/// reduction for the exact strategies, the direct all-visits tail for the
/// sampling baseline.
fn forall_probs(
    ctx: &ExecContext<'_>,
    strategy: Strategy,
    indices: &[usize],
    window: &QueryWindow,
    sampling: crate::engine::monte_carlo::MonteCarlo,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    if strategy == Strategy::MonteCarlo {
        let k_max = window.num_times();
        return Ok(at_least(mc_counts(ctx, sampling, indices, window, stats)?, k_max));
    }
    let complement = window.complement_states()?;
    let mut results = exists_probs(ctx, strategy, indices, &complement, sampling, stats)?;
    forall::complement_probabilities(&mut results);
    Ok(results)
}

/// PSTkQ visit-count distributions over `indices` under the resolved
/// strategy.
fn ktimes_dists(
    ctx: &ExecContext<'_>,
    strategy: Strategy,
    indices: &[usize],
    window: &QueryWindow,
    sampling: crate::engine::monte_carlo::MonteCarlo,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectKDistribution>> {
    match strategy {
        Strategy::ObjectBased => {
            ctx.executor.run_on(indices, ctx.config, stats, |pipeline, idxs| {
                ktimes::ktimes_batched(pipeline, ctx.db, idxs, window)
            })
        }
        Strategy::QueryBased => {
            let plan = ktimes::KTimesFieldPlan::prepare_with_cache_on(
                ctx.db,
                indices,
                window,
                ctx.config,
                ctx.ktimes_cache,
                stats,
            )?;
            stats.fields_shared += plan.num_fields() as u64;
            crate::parallel::answer_ktimes_plan_on(
                &ctx.executor,
                ctx.db,
                indices,
                window,
                ctx.config,
                stats,
                &plan,
            )
        }
        Strategy::MonteCarlo => mc_counts(ctx, sampling, indices, window, stats),
        Strategy::Auto => Err(QueryError::internal("execute resolves Auto before dispatch")),
    }
}

/// The sampling baseline over `indices`: one visit-count distribution per
/// object, sharded (per-object RNG streams are seeded by object id, so the
/// estimates are independent of the shard layout).
fn mc_counts(
    ctx: &ExecContext<'_>,
    sampling: crate::engine::monte_carlo::MonteCarlo,
    indices: &[usize],
    window: &QueryWindow,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectKDistribution>> {
    ctx.executor.run_on(indices, ctx.config, stats, move |pipeline, idxs| {
        let mut out = Vec::with_capacity(idxs.len());
        for &idx in idxs {
            let object = ctx
                .db
                .object(idx)
                .ok_or(QueryError::internal("the executor shards validated indices"))?;
            let chain = ctx.db.model_of(object);
            let probabilities = sampling.visit_counts_with(pipeline, chain, object, window)?;
            pipeline.stats().objects_evaluated += 1;
            out.push(ObjectKDistribution { object_id: object.id(), probabilities });
        }
        Ok(out)
    })
}
