//! PSTkQ evaluation — Section VII of the paper.
//!
//! Computes, for each object, the full distribution over the number of
//! query timestamps `k ∈ {0..|T▫|}` at which the object is inside `S▫`.
//!
//! Three implementations:
//!
//! * [`ktimes_distribution_ob`] — the paper's memory-efficient algorithm:
//!   a `(|T▫|+1) × |S|` matrix `C(t)` whose row `i` holds the probability
//!   mass currently at each state *having visited the window exactly `i`
//!   times*; a transition steps every row through `M`, and each query
//!   timestamp "shifts down" the columns of `S▫` by one row.
//! * [`ktimes_distribution_qb`] — a query-based counterpart (the paper
//!   reports its runtime in Fig. 10(b) without spelling out the algorithm):
//!   backward level vectors `f_t(s, j)` = probability of exactly `j`
//!   further window visits in `(t, t_end]` given state `s` at `t`,
//!   propagated with one `M·w` product per level and step — hence the
//!   "scales rather linearly with k" behaviour the paper observes.
//! * [`ktimes_distribution_blowup`] — the explicit `S × {0..|T▫|}`
//!   blown-up-matrix construction, kept as the executable specification
//!   (exercised by tests on small instances).

use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::sync::Arc;

use ust_markov::augmented;
use ust_markov::{DenseVector, MarkovChain, PropagationVector, SparseVector};

use crate::database::TrajectoryDatabase;
use crate::engine::object_based::validate;
use crate::engine::pipeline::{BatchPhase, ObjectBatch, Propagator};
use crate::engine::{group_batchable, EngineConfig};
use crate::error::{QueryError, Result};
use crate::object::UncertainObject;
use crate::query::{ObjectKDistribution, QueryWindow};
use crate::stats::EvalStats;

/// The paper's memory-efficient `C(t)` algorithm (object-based).
///
/// Returns `P(k)` for `k ∈ {0..|T▫|}` (length `|T▫| + 1`).
pub fn ktimes_distribution_ob(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<Vec<f64>> {
    ktimes_distribution_ob_with_stats(chain, object, window, config, &mut EvalStats::new())
}

/// As [`ktimes_distribution_ob`], accumulating counters into `stats`.
pub fn ktimes_distribution_ob_with_stats(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<f64>> {
    ktimes_with(&mut Propagator::new(config, stats), chain, object, window)
}

/// The `C(t)` driver on an existing [`Propagator`]: the propagated state is
/// the family of count-level vectors, and the accumulation rule applied at
/// every query timestamp (including an anchor inside `T▫`, footnote 3) is
/// the [`shift_down`] column shift.
pub(crate) fn ktimes_with(
    pipeline: &mut Propagator<'_>,
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
) -> Result<Vec<f64>> {
    validate(chain, object, window)?;
    let k_max = window.num_times();
    let anchor = object.anchor();

    // rows[i] = mass at each state having visited the window exactly i times.
    let mut rows: Vec<PropagationVector> = Vec::with_capacity(k_max + 1);
    rows.push(pipeline.seed(anchor.distribution().clone()));
    for _ in 0..k_max {
        rows.push(pipeline.seed(SparseVector::zeros(chain.num_states())));
    }

    pipeline.forward(chain.matrix(), &mut rows, anchor.time(), window, |rows, _| {
        shift_down(rows, window)
    })?;
    Ok(rows.iter().map(|r| r.sum()).collect())
}

/// The column shift of the `C(t)` algorithm: for every state `s ∈ S▫`, the
/// mass at count level `i` moves to level `i + 1` (processed top-down so
/// each unit of mass moves exactly once).
fn shift_down(rows: &mut [PropagationVector], window: &QueryWindow) -> Result<()> {
    let k_max = rows.len() - 1;
    for i in (0..k_max).rev() {
        let moved = rows[i].split_masked(window.states());
        if moved.nnz() > 0 {
            rows[i + 1].add_sparse(&moved)?;
        }
    }
    Ok(())
}

/// Backward level field for query-based PSTkQ: snapshots (per anchor time)
/// of the level vectors `f_t(·, j)`, `j ∈ {0..|T▫|}`.
#[derive(Debug, Clone)]
pub struct KTimesBackwardField {
    snapshots: BTreeMap<u32, Vec<DenseVector>>,
}

impl KTimesBackwardField {
    /// Computes the field down to the earliest requested anchor time.
    pub fn compute(
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        stats: &mut EvalStats,
    ) -> Result<KTimesBackwardField> {
        let n = chain.num_states();
        let k_max = window.num_times();

        // Boundary at t_end: zero further visits with certainty.
        let mut levels: Vec<DenseVector> = Vec::with_capacity(k_max + 1);
        levels.push(DenseVector::from_vec(vec![1.0; n]));
        for _ in 0..k_max {
            levels.push(DenseVector::zeros(n));
        }

        let mut field = KTimesBackwardField { snapshots: BTreeMap::new() };
        field.sweep_down(chain, window, levels, window.t_end(), anchor_times, stats)?;
        Ok(field)
    }

    /// Extends an already-computed field downward to earlier anchor times,
    /// resuming the level sweep from its earliest snapshot instead of
    /// recomputing the `(min, t_end]` suffix. Every time in `anchor_times`
    /// must lie at or below [`Self::min_time`]; times already snapshotted
    /// are free. Resumed sweeps are bit-for-bit identical to a
    /// from-scratch sweep — the level family at the resume snapshot is the
    /// complete sweep state.
    ///
    /// This is the suffix sharing behind
    /// [`crate::engine::cache::KTimesFieldCache`].
    pub fn extend_down(
        &mut self,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        stats: &mut EvalStats,
    ) -> Result<()> {
        let Some(resume) = self.min_time() else {
            return Ok(());
        };
        let wanted: Vec<u32> = anchor_times.iter().copied().filter(|&t| t < resume).collect();
        if wanted.is_empty() {
            return Ok(());
        }
        let levels = self
            .snapshots
            .get(&resume)
            .ok_or(QueryError::internal("a level field's floor is always snapshotted"))?
            .clone();
        self.sweep_down(chain, window, levels, resume, &wanted, stats)
    }

    /// The shared backward level sweep: from `levels` = the family at
    /// `resume` down to the earliest requested time, recording snapshots
    /// along the way.
    fn sweep_down(
        &mut self,
        chain: &MarkovChain,
        window: &QueryWindow,
        mut levels: Vec<DenseVector>,
        resume: u32,
        anchor_times: &[u32],
        stats: &mut EvalStats,
    ) -> Result<()> {
        let k_max = levels.len() - 1;
        let mut pipeline = Propagator::new(&EngineConfig::default(), stats);
        let snapshots = &mut self.snapshots;
        pipeline.backward_from(
            &mut levels,
            resume,
            window,
            anchor_times,
            // Entering a window state consumes one visit level: processed
            // top-down so each lower level is still unmodified when the
            // level above reads it.
            |levels| {
                for j in (0..=k_max).rev() {
                    if j == 0 {
                        let slice = levels[0].as_mut_slice();
                        for s in window.states().iter() {
                            slice[s] = 0.0;
                        }
                    } else {
                        let (lower, upper) = levels.split_at_mut(j);
                        let lower = lower[j - 1].as_slice();
                        let slice = upper[0].as_mut_slice();
                        for s in window.states().iter() {
                            slice[s] = lower[s];
                        }
                    }
                }
                Ok(())
            },
            |levels, _| {
                for level in levels.iter_mut() {
                    *level = chain.matrix().matvec_dense(level)?;
                }
                Ok(levels.len() as u64)
            },
            |levels, t| {
                snapshots.insert(t, levels.clone());
            },
        )
    }

    /// The level-vector family snapshotted at anchor time `t`, if it was
    /// requested (`levels[j]` = probability of exactly `j` further window
    /// visits in `(t, t_end]`, per state).
    pub fn at(&self, t: u32) -> Option<&Vec<DenseVector>> {
        self.snapshots.get(&t)
    }

    /// The earliest snapshotted time — how far down the sweep has run.
    pub fn min_time(&self) -> Option<u32> {
        self.snapshots.keys().next().copied()
    }

    /// Iterates the snapshotted anchor times in ascending order.
    pub fn times(&self) -> impl Iterator<Item = u32> + '_ {
        self.snapshots.keys().copied()
    }

    /// True when every time in `anchor_times` has a snapshot.
    pub fn covers(&self, anchor_times: &[u32]) -> bool {
        anchor_times.iter().all(|t| self.snapshots.contains_key(t))
    }

    /// Answers one object from the field.
    pub fn object_distribution(
        &self,
        object: &UncertainObject,
        window: &QueryWindow,
    ) -> Option<Vec<f64>> {
        let anchor = object.anchor();
        let levels = self.snapshots.get(&anchor.time())?;
        let k_max = levels.len() - 1;
        let anchor_in = window.time_in_window(anchor.time());
        let mut out = vec![0.0; k_max + 1];
        for (s, mass) in anchor.distribution().iter() {
            let counts_now = anchor_in && window.states().contains(s);
            for (k, slot) in out.iter_mut().enumerate() {
                let f = if counts_now {
                    if k == 0 {
                        0.0
                    } else {
                        levels[k - 1].get(s)
                    }
                } else {
                    levels[k].get(s)
                };
                *slot += mass * f;
            }
        }
        Some(out)
    }
}

/// Query-based PSTkQ for a single object.
pub fn ktimes_distribution_qb(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<Vec<f64>> {
    let _ = config;
    validate(chain, object, window)?;
    let field = KTimesBackwardField::compute(
        chain,
        window,
        &[object.anchor().time()],
        &mut EvalStats::new(),
    )?;
    field
        .object_distribution(object, window)
        .ok_or(QueryError::internal("anchor snapshot was requested from the level field"))
}

/// Reference implementation over the explicit blown-up matrices of
/// Section VII (`S′ = S × {0..|T▫|}`). Exponential memory in nothing, but
/// `(|T▫|+1)·|S|`-dimensional — use for validation on small instances only.
pub fn ktimes_distribution_blowup(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
) -> Result<Vec<f64>> {
    validate(chain, object, window)?;
    let n = chain.num_states();
    let k_max = window.num_times();
    let levels = k_max + 1;
    let minus = augmented::ktimes_minus(chain.matrix(), levels);
    let plus = augmented::ktimes_plus(chain.matrix(), window.states(), levels);

    let anchor = object.anchor();
    let mut v = DenseVector::zeros(levels * n);
    for (s, p) in anchor.distribution().iter() {
        // Footnote 3: anchor mass inside the window starts at level 1.
        let level =
            if window.time_in_window(anchor.time()) && window.states().contains(s) { 1 } else { 0 };
        v.set(level * n + s, p).map_err(crate::error::QueryError::from)?;
    }
    for t in anchor.time()..window.t_end() {
        let m = if window.time_in_window(t + 1) { &plus } else { &minus };
        v = m.vecmat_dense(&v)?;
    }
    Ok((0..levels).map(|k| (0..n).map(|s| v.get(k * n + s)).sum()).collect())
}

/// The batched `C(t)` driver over an explicit set of database object
/// indices (one `ShardedExecutor` worker's share). Results come back in the
/// order of `indices`.
///
/// Each object contributes `|T▫| + 1` count-level rows to the batch, so a
/// batch of `B` objects steps `B · (|T▫|+1)` rows through one shared matrix
/// traversal per timestamp. The level shift is applied per live group; per
/// object, results are bit-for-bit identical to [`ktimes_with`].
pub(crate) fn ktimes_batched(
    pipeline: &mut Propagator<'_>,
    db: &TrajectoryDatabase,
    indices: &[usize],
    window: &QueryWindow,
) -> Result<Vec<ObjectKDistribution>> {
    crate::engine::object_based::validate_indices(db, indices, window)?;
    let k_max = window.num_times();
    let group_size = k_max + 1;
    let batch_size = pipeline.config().effective_batch_size();
    let mut results: Vec<Option<ObjectKDistribution>> = vec![None; indices.len()];
    for ((model, anchor_time), members) in group_batchable(db, indices)? {
        let chain = &db.models()[model];
        let n = chain.num_states();
        for chunk in members.chunks(batch_size) {
            let mut rows: Vec<PropagationVector> = Vec::with_capacity(chunk.len() * group_size);
            for &pos in chunk {
                let object = db.object(indices[pos]).ok_or(QueryError::internal(
                    "batched position resolves to a database object",
                ))?;
                rows.push(pipeline.seed(object.anchor().distribution().clone()));
                for _ in 0..k_max {
                    rows.push(pipeline.seed(SparseVector::zeros(n)));
                }
            }
            let mut batch = ObjectBatch::new(&mut rows, group_size)?;
            pipeline.forward_batch(
                chain.matrix(),
                &mut batch,
                anchor_time,
                window,
                |phase, batch, _| {
                    if phase == BatchPhase::Window {
                        for g in 0..batch.num_groups() {
                            if batch.is_active(g) {
                                shift_down(batch.group_mut(g), window)?;
                            }
                        }
                    }
                    Ok(ControlFlow::Continue(()))
                },
            )?;
            for (g, &pos) in chunk.iter().enumerate() {
                let object = db.object(indices[pos]).ok_or(QueryError::internal(
                    "batched position resolves to a database object",
                ))?;
                results[pos] = Some(ObjectKDistribution {
                    object_id: object.id(),
                    probabilities: batch.group(g).iter().map(|r| r.sum()).collect(),
                });
            }
        }
    }
    results
        .into_iter()
        .map(|r| r.ok_or(QueryError::internal("the batch loop covers every position")))
        .collect()
}

/// PSTkQ for the whole database, object-based `C(t)` algorithm, through the
/// batched kernel.
pub fn evaluate_object_based(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectKDistribution>> {
    let indices: Vec<usize> = (0..db.len()).collect();
    let mut pipeline = Propagator::new(config, stats);
    ktimes_batched(&mut pipeline, db, &indices, window)
}

/// A PSTkQ query's backward level fields, swept exactly once per
/// `(model, window)` and shared read-only across the evaluation fan-out —
/// the k-times analogue of
/// [`crate::engine::query_based::SharedFieldPlan`].
///
/// The plan-staged parallel driver counts each field it hands to the
/// fan-out toward [`EvalStats::fields_shared`]. Like the ∃ plan, the
/// fields can be served through a lock-guarded
/// [`crate::engine::cache::KTimesFieldCache`]
/// ([`KTimesFieldPlan::prepare_with_cache_on`]), so repeated PSTkQ windows
/// stop paying their `(|T▫|+1)` level sweeps.
#[derive(Debug, Clone)]
pub struct KTimesFieldPlan {
    fields: Vec<Option<Arc<KTimesBackwardField>>>,
}

impl KTimesFieldPlan {
    /// Validates every object and sweeps one backward level field per
    /// populated model (over all of that model's object anchors). `None`
    /// entries are models without objects.
    pub fn prepare(
        db: &TrajectoryDatabase,
        window: &QueryWindow,
        stats: &mut EvalStats,
    ) -> Result<KTimesFieldPlan> {
        let indices: Vec<usize> = (0..db.len()).collect();
        KTimesFieldPlan::prepare_on(db, &indices, window, stats)
    }

    /// As [`KTimesFieldPlan::prepare`], restricted to an explicit subset
    /// of database object indices.
    pub fn prepare_on(
        db: &TrajectoryDatabase,
        indices: &[usize],
        window: &QueryWindow,
        stats: &mut EvalStats,
    ) -> Result<KTimesFieldPlan> {
        let mut fields: Vec<Option<Arc<KTimesBackwardField>>> =
            (0..db.models().len()).map(|_| None).collect();
        for group in crate::engine::query_based::validated_model_groups_on(db, indices, window)? {
            let chain = &db.models()[group.model];
            fields[group.model] =
                Some(Arc::new(KTimesBackwardField::compute(chain, window, &group.anchors, stats)?));
        }
        Ok(KTimesFieldPlan { fields })
    }

    /// As [`KTimesFieldPlan::prepare_on`], serving each level field
    /// through a lock-guarded [`crate::engine::cache::KTimesFieldCache`]:
    /// hits and suffix extensions pay no (or less) backward level work,
    /// fresh windows sweep once and stay cached for the next query. The
    /// lock is held only for the prepare stage — the fan-out works on the
    /// returned `Arc` views, so workers never contend on the cache.
    /// Bit-for-bit identical to the uncached plan.
    pub fn prepare_with_cache_on(
        db: &TrajectoryDatabase,
        indices: &[usize],
        window: &QueryWindow,
        config: &crate::engine::EngineConfig,
        cache: &std::sync::Mutex<crate::engine::cache::KTimesFieldCache>,
        stats: &mut EvalStats,
    ) -> Result<KTimesFieldPlan> {
        let mut fields: Vec<Option<Arc<KTimesBackwardField>>> =
            (0..db.models().len()).map(|_| None).collect();
        for group in crate::engine::query_based::validated_model_groups_on(db, indices, window)? {
            let chain = &db.models()[group.model];
            fields[group.model] =
                Some(crate::engine::cache::KTimesFieldCache::get_or_compute_shared_concurrent(
                    cache,
                    group.model,
                    chain,
                    window,
                    &group.anchors,
                    config,
                    stats,
                )?);
        }
        Ok(KTimesFieldPlan { fields })
    }

    /// The shared level field of `model`, if the model has objects.
    pub fn field(&self, model: usize) -> Option<&Arc<KTimesBackwardField>> {
        self.fields.get(model).and_then(|f| f.as_ref())
    }

    /// Number of populated models (fields the plan shares).
    pub fn num_fields(&self) -> usize {
        self.fields.iter().filter(|f| f.is_some()).count()
    }
}

/// PSTkQ for the whole database, query-based: one backward level sweep per
/// model (the [`KTimesFieldPlan`] stage), one `(|T▫|+1)`-way dot product
/// per object.
pub fn evaluate_query_based(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectKDistribution>> {
    let _ = config;
    let plan = KTimesFieldPlan::prepare(db, window, stats)?;
    let mut results = Vec::with_capacity(db.len());
    for object in db.objects() {
        let field = plan
            .field(object.model())
            .ok_or(QueryError::internal("the shared plan holds one field per populated model"))?;
        let probabilities = field
            .object_distribution(object, window)
            .ok_or(QueryError::internal("anchor snapshot was requested from the level field"))?;
        stats.objects_evaluated += 1;
        results.push(ObjectKDistribution { object_id: object.id(), probabilities });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn object_at_s2() -> UncertainObject {
        UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap())
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn section_7_worked_example() {
        // The paper derives P(k = 0, 1, 2) = (0.136, 0.672, 0.192).
        let dist = ktimes_distribution_ob(
            &paper_chain(),
            &object_at_s2(),
            &paper_window(),
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(dist.len(), 3);
        assert!((dist[0] - 0.136).abs() < 1e-12, "{dist:?}");
        assert!((dist[1] - 0.672).abs() < 1e-12, "{dist:?}");
        assert!((dist[2] - 0.192).abs() < 1e-12, "{dist:?}");
    }

    #[test]
    fn qb_and_blowup_match_worked_example() {
        let qb = ktimes_distribution_qb(
            &paper_chain(),
            &object_at_s2(),
            &paper_window(),
            &EngineConfig::default(),
        )
        .unwrap();
        let blow =
            ktimes_distribution_blowup(&paper_chain(), &object_at_s2(), &paper_window()).unwrap();
        for (k, expected) in [0.136, 0.672, 0.192].into_iter().enumerate() {
            assert!((qb[k] - expected).abs() < 1e-12, "qb = {qb:?}");
            assert!((blow[k] - expected).abs() < 1e-12, "blowup = {blow:?}");
        }
    }

    #[test]
    fn distribution_sums_to_one_and_ties_to_exists_forall() {
        let config = EngineConfig::default();
        let chain = paper_chain();
        let o = object_at_s2();
        let w = paper_window();
        let dist = ktimes_distribution_ob(&chain, &o, &w, &config).unwrap();
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        let exists =
            crate::engine::object_based::exists_probability(&chain, &o, &w, &config).unwrap();
        assert!((1.0 - dist[0] - exists).abs() < 1e-12);
        let forall = crate::engine::forall::forall_probability_ob(&chain, &o, &w, &config).unwrap();
        assert!((dist[dist.len() - 1] - forall).abs() < 1e-12);
    }

    #[test]
    fn anchor_inside_window_starts_at_level_one() {
        // Anchor at t=2 (∈ T▫) on state s1 (∈ S▫): already one visit.
        let o = UncertainObject::with_single_observation(1, Observation::exact(2, 3, 0).unwrap());
        for dist in [
            ktimes_distribution_ob(&paper_chain(), &o, &paper_window(), &EngineConfig::default())
                .unwrap(),
            ktimes_distribution_qb(&paper_chain(), &o, &paper_window(), &EngineConfig::default())
                .unwrap(),
            ktimes_distribution_blowup(&paper_chain(), &o, &paper_window()).unwrap(),
        ] {
            assert!(dist[0].abs() < 1e-12, "{dist:?}");
            // From s1 at t=2, the object moves to s3 ∉ S▫ at t=3: k = 1
            // with certainty.
            assert!((dist[1] - 1.0).abs() < 1e-12, "{dist:?}");
            assert!(dist[2].abs() < 1e-12, "{dist:?}");
        }
    }

    #[test]
    fn three_engines_agree_on_uncertain_anchor() {
        let chain = paper_chain();
        let start =
            ust_markov::SparseVector::from_pairs(3, [(0, 0.3), (1, 0.3), (2, 0.4)]).unwrap();
        let o =
            UncertainObject::with_single_observation(2, Observation::uncertain(0, start).unwrap());
        let w = QueryWindow::from_states(3, [1usize], TimeSet::new([1, 3, 4])).unwrap();
        let config = EngineConfig::default();
        let ob = ktimes_distribution_ob(&chain, &o, &w, &config).unwrap();
        let qb = ktimes_distribution_qb(&chain, &o, &w, &config).unwrap();
        let blow = ktimes_distribution_blowup(&chain, &o, &w).unwrap();
        assert_eq!(ob.len(), 4);
        for k in 0..4 {
            assert!((ob[k] - qb[k]).abs() < 1e-12, "k={k}: ob={ob:?} qb={qb:?}");
            assert!((ob[k] - blow[k]).abs() < 1e-12, "k={k}: ob={ob:?} blow={blow:?}");
        }
    }

    #[test]
    fn batch_evaluators_agree() {
        let mut db = TrajectoryDatabase::new(paper_chain());
        for s in 0..3usize {
            db.insert(UncertainObject::with_single_observation(
                s as u64,
                Observation::exact(0, 3, s).unwrap(),
            ))
            .unwrap();
        }
        let w = paper_window();
        let ob = evaluate_object_based(&db, &w, &EngineConfig::default(), &mut EvalStats::new())
            .unwrap();
        let qb =
            evaluate_query_based(&db, &w, &EngineConfig::default(), &mut EvalStats::new()).unwrap();
        for (a, b) in ob.iter().zip(&qb) {
            assert_eq!(a.object_id, b.object_id);
            for (x, y) in a.probabilities.iter().zip(&b.probabilities) {
                assert!((x - y).abs() < 1e-12);
            }
            assert!((a.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_visits_matches_marginal_sum() {
        // E[visits] = Σ_{t∈T▫} P(o(t) ∈ S▫) — linearity of expectation
        // (holds even though the joint distribution is correlated).
        let chain = paper_chain();
        let o = object_at_s2();
        let w = paper_window();
        let dist = ktimes_distribution_ob(&chain, &o, &w, &EngineConfig::default()).unwrap();
        let expected: f64 = dist.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        let mut marginal_sum = 0.0;
        let mut v = o.anchor().distribution().to_dense();
        for t in 0..=w.t_end() {
            if t > 0 {
                v = chain.step_dense(&v).unwrap();
            }
            if w.time_in_window(t) {
                marginal_sum += v.masked_sum(w.states());
            }
        }
        assert!((expected - marginal_sum).abs() < 1e-12);
    }
}
