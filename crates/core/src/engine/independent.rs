//! The temporal-independence model — what prior work computes, and why it
//! is wrong (Figures 1 and 9(d) of the paper).
//!
//! Approaches that treat a trajectory as an independent uncertain region
//! per timestamp (references \[8], \[9], \[16], \[17], \[19], \[20] in the paper) compute the
//! *correct marginal* distribution `P(o(t) ∈ S▫)` for each `t`, but combine
//! them as if they were independent events:
//!
//! ```text
//! P∃_indep = 1 − Π_{t∈T▫} (1 − P(o(t) ∈ S▫))
//! ```
//!
//! Because consecutive positions are in fact strongly dependent, this
//! overestimates PST∃Q — the paper shows the bias grows with the window
//! length. We implement all three predicates under the independence
//! assumption (the k-times case via the Poisson-binomial recurrence) to
//! regenerate the accuracy experiment of Fig. 9(d).

use ust_markov::MarkovChain;

use crate::database::TrajectoryDatabase;
use crate::engine::object_based::validate;
use crate::engine::pipeline::Propagator;
use crate::engine::EngineConfig;
use crate::error::Result;
use crate::object::UncertainObject;
use crate::query::{ObjectProbability, QueryWindow};
use crate::stats::EvalStats;

/// The per-timestamp marginal window probabilities
/// `m_t = P(o(t) ∈ S▫)` for `t ∈ T▫` (these are exact; only their
/// combination below assumes independence).
pub fn window_marginals(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<Vec<f64>> {
    let mut stats = EvalStats::new();
    marginals_with(&mut Propagator::new(config, &mut stats), chain, object, window)
}

/// The independence driver on an existing [`Propagator`]: its accumulation
/// rule *records* the window mass at each query timestamp without removing
/// it — precisely the per-timestamp marginal that ignores the temporal
/// correlation the exact engines preserve.
pub(crate) fn marginals_with(
    pipeline: &mut Propagator<'_>,
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
) -> Result<Vec<f64>> {
    validate(chain, object, window)?;
    let anchor = object.anchor();
    let mut rows = [pipeline.seed(anchor.distribution().clone())];
    let mut marginals = Vec::with_capacity(window.num_times());
    pipeline.forward(chain.matrix(), &mut rows, anchor.time(), window, |rows, _| {
        marginals.push(rows[0].masked_sum(window.states()));
        Ok(())
    })?;
    // Under ε-pruning the pipeline may stop once the vector runs empty; the
    // remaining query timestamps then carry marginal 0, and the contract
    // stays "one entry per t ∈ T▫".
    marginals.resize(window.num_times(), 0.0);
    Ok(marginals)
}

/// The independence combination rule `1 − Π (1 − m_t)` (shared by the
/// single-object and database evaluators).
fn exists_from_marginals(marginals: &[f64]) -> f64 {
    1.0 - marginals.iter().map(|m| 1.0 - m).product::<f64>()
}

/// PST∃Q under the (incorrect) temporal-independence assumption.
pub fn exists_probability_independent(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<f64> {
    let marginals = window_marginals(chain, object, window, config)?;
    Ok(exists_from_marginals(&marginals))
}

/// PST∀Q under the independence assumption: `Π m_t`.
pub fn forall_probability_independent(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<f64> {
    let marginals = window_marginals(chain, object, window, config)?;
    Ok(marginals.iter().product())
}

/// PSTkQ under the independence assumption: the Poisson-binomial
/// distribution of the marginals.
pub fn ktimes_distribution_independent(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<Vec<f64>> {
    let marginals = window_marginals(chain, object, window, config)?;
    let mut dp = vec![0.0; marginals.len() + 1];
    dp[0] = 1.0;
    for (i, &m) in marginals.iter().enumerate() {
        for k in (0..=i).rev() {
            dp[k + 1] += dp[k] * m;
            dp[k] *= 1.0 - m;
        }
    }
    Ok(dp)
}

/// Database-level PST∃Q under independence (for the Fig. 9(d) comparison).
pub fn evaluate_exists_independent(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let mut pipeline = Propagator::new(config, stats);
    let mut out = Vec::with_capacity(db.len());
    for object in db.objects() {
        let chain = db.model_of(object);
        let marginals = marginals_with(&mut pipeline, chain, object, window)?;
        let probability = exists_from_marginals(&marginals);
        out.push(ObjectProbability { object_id: object.id(), probability });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::object_based;
    use crate::observation::Observation;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn object_at_s2() -> UncertainObject {
        UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap())
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn marginals_match_hand_computation() {
        // P(o,2) = (0, 0.32, 0.68) → m_2 = 0.32;
        // P(o,3) = (0, 0.544+..) → m_3 = P(s1)+P(s2) at t=3.
        let m = window_marginals(
            &paper_chain(),
            &object_at_s2(),
            &paper_window(),
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        assert!((m[0] - 0.32).abs() < 1e-12);
        // P(o,3) = (0,0.32,0.68)·M = (0.192, 0.544, 0.264): m_3 = 0.736.
        assert!((m[1] - 0.736).abs() < 1e-12);
    }

    #[test]
    fn independence_overestimates_exists() {
        let config = EngineConfig::default();
        let chain = paper_chain();
        let o = object_at_s2();
        let w = paper_window();
        let correct = object_based::exists_probability(&chain, &o, &w, &config).unwrap();
        let indep = exists_probability_independent(&chain, &o, &w, &config).unwrap();
        // 1 − (1−0.32)(1−0.736) = 1 − 0.68·0.264 = 0.82048 < 0.864 here —
        // the bias direction depends on the correlation sign; what must
        // hold is *disagreement* with the exact result.
        assert!((indep - (1.0 - 0.68 * 0.264)).abs() < 1e-12);
        assert!((indep - correct).abs() > 1e-3, "independence must bias the result");
    }

    #[test]
    fn poisson_binomial_sums_to_one() {
        let dist = ktimes_distribution_independent(
            &paper_chain(),
            &object_at_s2(),
            &paper_window(),
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(dist.len(), 3);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Consistency with the closed forms.
        let exists = exists_probability_independent(
            &paper_chain(),
            &object_at_s2(),
            &paper_window(),
            &EngineConfig::default(),
        )
        .unwrap();
        assert!((1.0 - dist[0] - exists).abs() < 1e-12);
        let forall = forall_probability_independent(
            &paper_chain(),
            &object_at_s2(),
            &paper_window(),
            &EngineConfig::default(),
        )
        .unwrap();
        assert!((dist[2] - forall).abs() < 1e-12);
    }

    #[test]
    fn single_timestamp_windows_are_unbiased() {
        // With |T▫| = 1 there is nothing to correlate: both models agree.
        let w = QueryWindow::from_states(3, [0usize, 1], TimeSet::at(2)).unwrap();
        let config = EngineConfig::default();
        let correct =
            object_based::exists_probability(&paper_chain(), &object_at_s2(), &w, &config).unwrap();
        let indep =
            exists_probability_independent(&paper_chain(), &object_at_s2(), &w, &config).unwrap();
        assert!((correct - indep).abs() < 1e-12);
    }

    #[test]
    fn batch_evaluation() {
        let mut db = TrajectoryDatabase::new(paper_chain());
        db.insert(object_at_s2()).unwrap();
        let results = evaluate_exists_independent(
            &db,
            &paper_window(),
            &EngineConfig::default(),
            &mut EvalStats::new(),
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].probability > 0.0 && results[0].probability <= 1.0);
    }
}
