//! Query evaluation engines.
//!
//! Implements the paper's two exact strategies — the **object-based (OB)**
//! forward approach (Section V-A) and the **query-based (QB)** backward
//! approach (Section V-B) — for all three predicates (∃, ∀, k-times), plus
//! the comparison baselines of the evaluation:
//!
//! * [`object_based`] / [`query_based`] — exact possible-worlds evaluation
//!   using the virtual `M−`/`M+` operators;
//! * [`forall`] — PST∀Q by complement reduction (Section VII);
//! * [`ktimes`] — the memory-efficient `C(t)` algorithm (Section VII), a
//!   QB counterpart, and the blown-up-matrix reference;
//! * [`monte_carlo`] — the sampling competitor (MC in Fig. 8);
//! * [`independent`] — the temporal-independence model prior work uses
//!   (the strawman of Fig. 1 / accuracy experiment Fig. 9d);
//! * [`exhaustive`] — exact possible-world enumeration for tiny instances,
//!   the ground truth of the test suite.
//!
//! All of them drive the shared propagation core in [`pipeline`]: the
//! engines supply direction, start state and the accumulation rule applied
//! at query timestamps, while the step loop, ε-pruning, sparse↔dense
//! switching and statistics accounting exist exactly once.

pub mod cache;
pub mod exhaustive;
pub mod forall;
pub mod independent;
pub mod ktimes;
pub mod monte_carlo;
pub mod object_based;
pub mod pipeline;
pub mod plan;
pub mod query_based;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use crate::database::{IngestOutcome, TrajectoryDatabase};
use crate::error::{QueryError, Result};
use crate::object::UncertainObject;
use crate::observation::Observation;
use crate::query::{
    Decorator, ObjectKDistribution, ObjectProbability, Predicate, Query, QueryAnswer, QuerySpec,
    QueryWindow, Strategy,
};
use crate::stats::EvalStats;
use crate::streaming::{self, RawAnswer, Subscription, SubscriptionState};

pub use plan::{CostEstimate, QueryPlan};
pub use ust_markov::KernelMode;

/// When the planner consults the [`crate::index::SpatioTemporalIndex`] to
/// prune candidate objects before costing and execution.
///
/// Pruning applies only where the pruned answer is provably bit-identical
/// to the unpruned one: `∃` queries with the probability or threshold
/// decorator (a geometrically unreachable object has `P∃ = 0` exactly, in
/// both exact engines). Other predicates, top-k ranking, and databases
/// without an attached space always take the unpruned path, whatever the
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefilterMode {
    /// Prune when an index is available and the database is large enough
    /// for the candidate pass to pay for itself (the default).
    #[default]
    Auto,
    /// Prune whenever an index is available, regardless of database size.
    On,
    /// Never prune: plans and answers are bit-for-bit those of a build
    /// without the index layer.
    Off,
}

/// Groups a worker's object indices by `(model, anchor time)` — the two
/// properties every member of an [`pipeline::ObjectBatch`] must share (one
/// transition matrix, one sweep start). Returns, per key, the *positions*
/// into `indices` in their original order, so drivers can stitch results
/// back deterministically.
pub(crate) fn group_batchable(
    db: &TrajectoryDatabase,
    indices: &[usize],
) -> Result<std::collections::BTreeMap<(usize, u32), Vec<usize>>> {
    let mut groups: std::collections::BTreeMap<(usize, u32), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (pos, &idx) in indices.iter().enumerate() {
        let object = db
            .object(idx)
            .ok_or(QueryError::internal("batch grouping received an unresolved object index"))?;
        groups.entry((object.model(), object.anchor().time())).or_default().push(pos);
    }
    Ok(groups)
}

/// Default number of objects propagated per [`pipeline::ObjectBatch`].
pub const DEFAULT_BATCH_SIZE: usize = 32;

/// Tuning knobs shared by the exact engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// ε-pruning threshold: probability entries `≤ epsilon` are dropped
    /// during propagation (`0.0` = exact). The dropped mass is reported in
    /// [`EvalStats::pruned_mass`] and bounds the absolute result error.
    pub epsilon: f64,
    /// Density at which propagation vectors switch from sparse to dense
    /// (see `ust_markov::hybrid`); `≥ 1.0` forces always-sparse, `0.0`
    /// always-dense.
    pub densify_threshold: f64,
    /// Objects propagated together per batch by the object-based drivers
    /// (clamped to at least 1). Batched and per-object evaluation are
    /// bit-for-bit identical; larger batches amortize matrix-row traversals
    /// across densified vectors.
    pub batch_size: usize,
    /// Worker threads the [`crate::parallel::ShardedExecutor`] shards
    /// object batches across (clamped to at least 1; `1` runs inline). A
    /// [`QueryProcessor`] built with `num_threads > 1` owns a long-lived
    /// [`crate::parallel::WorkerPool`] of this size; the free `*_parallel`
    /// functions borrow the process-wide shared pool instead.
    pub num_threads: usize,
    /// `(model, window)` entries retained by the [`QueryProcessor`]'s
    /// backward-field cache (clamped to at least 1). Each entry holds one
    /// dense snapshot per distinct anchor time, so memory scales with
    /// `capacity × anchors × |S|`; repeated or overlapping windows served
    /// from the cache skip their backward sweeps entirely.
    pub cache_capacity: usize,
    /// Admission bound on **pending asynchronous submissions** per
    /// processor (`0` = unbounded, the default). Once this many
    /// [`QueryProcessor::submit`] tickets are queued or running,
    /// further submissions return
    /// [`crate::error::QueryError::QueueFull`] immediately instead of
    /// growing the backlog; the bound is also installed as the per-shard
    /// depth limit of the processor's own worker pool.
    pub max_queue_depth: usize,
    /// Deadline applied to every submitted query (`None` = no deadline,
    /// the default): a job whose queue wait already exceeds it is shed
    /// with [`crate::error::QueryError::DeadlineExceeded`] instead of
    /// executing — stale work a bursty caller has likely abandoned. The
    /// deadline is checked when the job starts and again between planning
    /// and execution, never mid-propagation.
    pub default_deadline: Option<std::time::Duration>,
    /// Lets the planner consult the serving EWMAs (observed/estimated
    /// step ratios per strategy, see [`crate::serving::Metrics`]) in
    /// place of its flat ×0.5 early-termination discount. Off by default:
    /// calibration can legitimately flip a borderline plan between two
    /// executions of the same spec, and the exact strategies agree only
    /// to rounding — the default keeps a session's plans bit-stable.
    pub calibrate_planner: bool,
    /// Kernel selection policy for batched forward propagation (see
    /// [`ust_markov::KernelMode`]). [`KernelMode::Auto`], the default,
    /// chooses per batch between the shared-union sparse kernel, the
    /// per-object kernels and the dense panel kernel from the members'
    /// support overlap; the explicit modes pin the choice for
    /// benchmarking. Every mode yields bit-identical results — only
    /// traversal order and memory traffic differ.
    pub batching: KernelMode,
    /// Index-accelerated candidate pruning policy (see [`PrefilterMode`]).
    /// [`PrefilterMode::Auto`], the default, prunes eligible queries
    /// through [`crate::database::TrajectoryDatabase::spatial_index`] once
    /// the database is large enough; [`PrefilterMode::Off`] preserves the
    /// pre-index plans bit-for-bit.
    pub prefilter: PrefilterMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            epsilon: 0.0,
            densify_threshold: 0.25,
            batch_size: DEFAULT_BATCH_SIZE,
            num_threads: 1,
            cache_capacity: cache::DEFAULT_CACHE_CAPACITY,
            max_queue_depth: 0,
            default_deadline: None,
            calibrate_planner: false,
            batching: KernelMode::Auto,
            prefilter: PrefilterMode::Auto,
        }
    }
}

impl EngineConfig {
    /// The exact configuration (no pruning, adaptive representation).
    pub fn exact() -> Self {
        EngineConfig::default()
    }

    /// Sets the ε-pruning threshold.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the sparse→dense switching threshold.
    pub fn with_densify_threshold(mut self, threshold: f64) -> Self {
        self.densify_threshold = threshold;
        self
    }

    /// Sets the number of objects propagated per batch.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the number of sharding worker threads.
    pub fn with_num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Sets the backward-field cache capacity (entries).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Sets the pending-submission admission bound (`0` = unbounded).
    pub fn with_max_queue_depth(mut self, max_queue_depth: usize) -> Self {
        self.max_queue_depth = max_queue_depth;
        self
    }

    /// Sets the deadline submitted queries are shed at.
    pub fn with_default_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Enables (or disables) EWMA calibration of the planner's cost
    /// model.
    pub fn with_planner_calibration(mut self, calibrate: bool) -> Self {
        self.calibrate_planner = calibrate;
        self
    }

    /// Sets the batched-propagation kernel selection policy.
    pub fn with_batching(mut self, mode: KernelMode) -> Self {
        self.batching = mode;
        self
    }

    /// Sets the index-accelerated candidate pruning policy.
    pub fn with_prefilter(mut self, mode: PrefilterMode) -> Self {
        self.prefilter = mode;
        self
    }

    /// The effective batch size (at least 1).
    pub fn effective_batch_size(&self) -> usize {
        self.batch_size.max(1)
    }

    /// The effective worker count (at least 1).
    pub fn effective_num_threads(&self) -> usize {
        self.num_threads.max(1)
    }

    /// The effective cache capacity (at least 1).
    pub fn effective_cache_capacity(&self) -> usize {
        self.cache_capacity.max(1)
    }
}

/// A pending asynchronously submitted query: the completion latch behind
/// [`QueryProcessor::submit`].
///
/// The ticket is a cheap handle to shared completion state. The submitting
/// thread is never blocked by `submit` itself; it blocks only when (and
/// if) it calls [`QueryTicket::wait`] or [`QueryTicket::wait_timeout`].
/// Dropping a ticket without awaiting it is safe — the query still runs to
/// completion on its worker (it owns a snapshot of everything it touches)
/// and the answer is discarded. The ticket can never block forever: a job
/// that is discarded without running (its pool shut down mid-burst)
/// completes the ticket with [`QueryError::AsyncQueryDropped`] from the
/// job's drop guard.
#[derive(Debug)]
pub struct QueryTicket {
    state: Arc<TicketState>,
    /// The pool the job was queued on, for best-effort dequeue on
    /// [`QueryTicket::cancel`]. Weak: a ticket must not keep a shut-down
    /// pool's threads alive.
    pool: std::sync::Weak<crate::parallel::WorkerPool>,
    handle: crate::parallel::JobHandle,
}

#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<Result<QueryAnswer>>>,
    done: Condvar,
    /// Set by the completion path that wins the first-completion race,
    /// *before* any bookkeeping — the gate that makes the serving
    /// accounting run exactly once per ticket.
    claimed: std::sync::atomic::AtomicBool,
    /// Cheap completion flag so `is_done` never touches the mutex. Set
    /// strictly after the winner's bookkeeping, so a caller that observes
    /// the outcome also observes consistent metrics.
    finished: std::sync::atomic::AtomicBool,
    /// Cooperative cancellation flag the job checks at start and between
    /// planning and execution.
    cancelled: std::sync::atomic::AtomicBool,
}

impl TicketState {
    fn new() -> TicketState {
        TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
            claimed: std::sync::atomic::AtomicBool::new(false),
            finished: std::sync::atomic::AtomicBool::new(false),
            cancelled: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Installs the outcome and wakes the waiters. Only the completion
    /// winner (see [`TicketState::claimed`]) may call this.
    fn complete(&self, outcome: Result<QueryAnswer>) {
        let mut slot = self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        debug_assert!(slot.is_none(), "complete is gated by `claimed`");
        *slot = Some(outcome);
        self.finished.store(true, Ordering::Release);
        drop(slot);
        self.done.notify_all();
    }

    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

impl QueryTicket {
    /// True once the outcome is available ([`QueryTicket::wait`] would
    /// return without blocking). A cheap atomic load — poll freely.
    pub fn is_done(&self) -> bool {
        self.state.finished.load(Ordering::Acquire)
    }

    /// Alias of [`QueryTicket::is_done`], kept from the PR 4 surface.
    pub fn is_ready(&self) -> bool {
        self.is_done()
    }

    /// Blocks until the submitted query has finished and returns its
    /// answer — or its error: a query that panicked on its worker yields
    /// [`QueryError::AsyncQueryPanicked`], a cancelled one
    /// [`QueryError::Cancelled`], one shed at its deadline
    /// [`QueryError::DeadlineExceeded`], and one whose job was discarded
    /// without running [`QueryError::AsyncQueryDropped`].
    pub fn wait(self) -> Result<QueryAnswer> {
        let mut slot = self.state.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.state.done.wait(slot).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// As [`QueryTicket::wait`], but gives up after `timeout`: `None`
    /// means the query is still pending and the ticket remains usable —
    /// retry, [`QueryTicket::cancel`] it, or fall back to
    /// [`QueryTicket::wait`]. The outcome is left in place (cloned out),
    /// so expiry and completion can race freely: whichever wins, a later
    /// wait sees the same answer.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Option<Result<QueryAnswer>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.state.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, timed_out) = self
                .state
                .done
                .wait_timeout(slot, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot = guard;
            if timed_out.timed_out() && slot.is_none() {
                return None;
            }
        }
    }

    /// Requests best-effort cancellation: if the job is still queued it is
    /// dequeued and never runs; if it is already running, the flag is
    /// checked between planning and execution; a query deep in its
    /// propagation runs to completion (the answer is then discarded in
    /// favour of the earlier [`QueryError::Cancelled`] outcome only if the
    /// cancellation completed the ticket first — first completion wins).
    /// Returns `false` when the ticket had already finished, `true` when
    /// the request was registered in time (the definitive outcome is
    /// whatever [`QueryTicket::wait`] returns).
    pub fn cancel(&self) -> bool {
        if self.is_done() {
            return false;
        }
        self.state.cancelled.store(true, Ordering::Release);
        if let Some(pool) = self.pool.upgrade() {
            // Dequeue if not started: dropping the removed job box fires
            // its guard, which observes the flag and completes the ticket
            // with `Cancelled`.
            pool.cancel_queued(self.handle);
        }
        true
    }
}

/// Completes a submitted query's ticket on **every** exit path and
/// performs the serving bookkeeping exactly once. Owned by the job
/// closure: if the job runs, the body completes the ticket explicitly;
/// if the job box is dropped without running — pool shut down mid-burst,
/// cancellation dequeue, or an unwind discarding the queue — the guard's
/// `Drop` completes it with [`QueryError::Cancelled`] or
/// [`QueryError::AsyncQueryDropped`], so `wait` can never block forever.
struct TicketGuard {
    state: Arc<TicketState>,
    pending: Arc<AtomicUsize>,
    metrics: Arc<crate::serving::Metrics>,
}

impl TicketGuard {
    /// Completes the ticket (first completion wins), releasing the
    /// processor's admission slot and tallying the async outcome
    /// **before** the waiters are woken, so metrics observed after `wait`
    /// returns always include this query.
    fn finish(&self, outcome: Result<QueryAnswer>) {
        use crate::serving::AsyncOutcome;
        if self.state.claimed.swap(true, Ordering::AcqRel) {
            return;
        }
        let kind = match &outcome {
            Ok(_) => AsyncOutcome::Completed,
            Err(QueryError::Cancelled) => AsyncOutcome::Cancelled,
            Err(QueryError::AsyncQueryDropped) => AsyncOutcome::Dropped,
            Err(QueryError::DeadlineExceeded) => AsyncOutcome::DeadlineExpired,
            Err(QueryError::AsyncQueryPanicked) => AsyncOutcome::Panicked,
            Err(_) => AsyncOutcome::Failed,
        };
        self.pending.fetch_sub(1, Ordering::AcqRel);
        self.metrics.record_async_finished(kind);
        self.state.complete(outcome);
    }
}

impl Drop for TicketGuard {
    fn drop(&mut self) {
        if self.state.claimed.load(Ordering::Acquire) {
            return;
        }
        let error = if self.state.is_cancelled() {
            QueryError::Cancelled
        } else if std::thread::panicking() {
            QueryError::AsyncQueryPanicked
        } else {
            QueryError::AsyncQueryDropped
        };
        self.finish(Err(error));
    }
}

/// High-level façade tying a database to the engines — the long-lived
/// service object of the crate.
///
/// The query surface is **spec-driven**: build a [`QuerySpec`] with
/// [`Query`] (predicate × decorator × window × strategy × optional object
/// subset) and hand it to one entry point —
///
/// * [`QueryProcessor::execute`] evaluates synchronously and returns the
///   [`QueryAnswer`];
/// * [`QueryProcessor::explain`] returns the planner's [`QueryPlan`]
///   (chosen strategy + cost estimates) without evaluating;
/// * [`QueryProcessor::submit`] enqueues the query on the worker pool and
///   returns a [`QueryTicket`] immediately — the async front door for
///   bursts.
///
/// Every execution routes through the batched propagation kernel and the
/// [`crate::parallel::ShardedExecutor`]: with the default configuration
/// (`num_threads == 1`) the single shard runs inline on the caller's
/// thread; with [`EngineConfig::with_num_threads`] `> 1` the processor
/// **owns a [`crate::parallel::WorkerPool`]** — the worker threads are
/// spawned once at construction, reused by every query, and joined when
/// the processor is dropped. Query-based evaluations share a
/// [`cache::BackwardFieldCache`] and a [`cache::KTimesFieldCache`] (sized
/// by [`EngineConfig::cache_capacity`], behind locks), so repeated or
/// overlapping windows skip their backward sweeps. Results are bit-for-bit
/// independent of the strategy dispatch, the batch size, the worker count
/// and the caches.
///
/// The processor **owns its database state**: construction clones the
/// caller's [`TrajectoryDatabase`] handle (a cheap copy-on-write share),
/// and the streaming entry points mutate the owned copy —
/// [`QueryProcessor::ingest`] applies latest-fix observations,
/// [`QueryProcessor::insert`] adds objects, and every query evaluates
/// against an immutable snapshot taken at its start, so a concurrent
/// ingest can never tear an in-flight answer. Standing queries are
/// registered with [`QueryProcessor::watch`], which returns a
/// [`Subscription`] whose answer is incrementally maintained on every
/// applied arrival.
///
/// ```
/// use ust_core::prelude::*;
/// use ust_markov::{CsrMatrix, MarkovChain};
/// use ust_space::TimeSet;
///
/// // The running-example chain of the paper (Section V).
/// let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
///     vec![0.0, 0.0, 1.0],
///     vec![0.6, 0.0, 0.4],
///     vec![0.0, 0.8, 0.2],
/// ]).unwrap()).unwrap();
/// let mut db = TrajectoryDatabase::new(chain);
/// db.insert(UncertainObject::with_single_observation(
///     7, Observation::exact(0, 3, 1).unwrap(),
/// )).unwrap();
///
/// let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
/// let processor = QueryProcessor::new(&db);
///
/// // Planned execution: the planner picks the strategy...
/// let spec = Query::exists().window(window.clone()).build().unwrap();
/// let answer = processor.execute(&spec).unwrap();
/// assert!((answer.probabilities().unwrap()[0].probability - 0.864).abs() < 1e-12);
///
/// // ...and both explicit strategies agree with it.
/// for strategy in [Strategy::ObjectBased, Strategy::QueryBased] {
///     let forced = Query::exists().window(window.clone()).strategy(strategy).build().unwrap();
///     let p = processor.execute(&forced).unwrap();
///     assert!((p.probabilities().unwrap()[0].probability - 0.864).abs() < 1e-12);
/// }
/// ```
#[derive(Debug)]
pub struct QueryProcessor {
    /// The owned database state. Queries clone a snapshot out (cheap:
    /// copy-on-write inner) and evaluate against it; the streaming entry
    /// points take the write half briefly to apply an arrival, then
    /// evaluate refreshes against a fresh snapshot outside the lock.
    db: RwLock<TrajectoryDatabase>,
    config: EngineConfig,
    /// The processor's long-lived workers; `None` runs inline
    /// (`num_threads <= 1`).
    pool: Option<Arc<crate::parallel::WorkerPool>>,
    /// PST∃Q backward fields shared by the query-based evaluations (and
    /// by asynchronous submissions), reused across queries and windows.
    cache: Arc<Mutex<cache::BackwardFieldCache>>,
    /// PSTkQ backward level fields, ditto.
    ktimes_cache: Arc<Mutex<cache::KTimesFieldCache>>,
    /// Round-robin shard assignment for submitted queries.
    submit_seq: AtomicUsize,
    /// Serving registry: admission outcomes, per-plan latencies, the
    /// planner-calibration EWMAs. Shared with every submitted job.
    metrics: Arc<crate::serving::Metrics>,
    /// Asynchronous submissions accepted but not yet finished — the
    /// counter [`EngineConfig::max_queue_depth`] bounds. Standing-query
    /// refreshes hold a slot while they run, so re-evaluation load and
    /// submitted queries share one admission budget.
    pending: Arc<AtomicUsize>,
    /// Registered standing queries; cancelled entries are pruned on the
    /// next arrival.
    subscriptions: Mutex<Vec<Arc<SubscriptionState>>>,
    /// Serializes the snapshot-and-refresh phase of concurrent ingests so
    /// subscriptions observe arrivals in a single global order.
    notify_lock: Mutex<()>,
    /// Monotonic subscription ids.
    watch_seq: AtomicU64,
}

impl QueryProcessor {
    /// Creates a processor with the exact default configuration
    /// (sequential, inline). The database handle is cloned in (cheap
    /// copy-on-write share); later mutations of the *caller's* handle are
    /// not seen — feed the processor through
    /// [`QueryProcessor::ingest`] / [`QueryProcessor::insert`] instead.
    pub fn new(db: &TrajectoryDatabase) -> Self {
        QueryProcessor::with_config(db, EngineConfig::default())
    }

    /// Creates a processor with a custom configuration. With
    /// `config.num_threads > 1` this spawns the processor's worker pool —
    /// construct once and reuse, rather than per query.
    pub fn with_config(db: &TrajectoryDatabase, config: EngineConfig) -> Self {
        let threads = config.effective_num_threads();
        // The owned pool is a serving pool: per-shard queues bounded by
        // the admission depth, and a backlog that is shed (tickets
        // completed with `AsyncQueryDropped`) rather than drained if the
        // processor is dropped mid-burst.
        let pool = (threads > 1).then(|| {
            Arc::new(crate::parallel::WorkerPool::with_queue_depth(threads, config.max_queue_depth))
        });
        let capacity = config.effective_cache_capacity();
        QueryProcessor {
            db: RwLock::new(db.clone()),
            config,
            pool,
            cache: Arc::new(Mutex::new(cache::BackwardFieldCache::new(capacity))),
            ktimes_cache: Arc::new(Mutex::new(cache::KTimesFieldCache::new(capacity))),
            submit_seq: AtomicUsize::new(0),
            metrics: Arc::new(crate::serving::Metrics::new()),
            pending: Arc::new(AtomicUsize::new(0)),
            subscriptions: Mutex::new(Vec::new()),
            notify_lock: Mutex::new(()),
            watch_seq: AtomicU64::new(0),
        }
    }

    /// An owned, immutable snapshot of the processor's current database —
    /// a cheap copy-on-write clone sharing objects, models and the built
    /// spatial index. Every query and refresh evaluates against one
    /// snapshot end to end, so concurrent ingests never tear an answer.
    pub fn snapshot(&self) -> TrajectoryDatabase {
        self.db.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Number of objects currently in the processor's database.
    pub fn len(&self) -> usize {
        self.db.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when the processor's database holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The processor's worker pool (`None` when it evaluates inline).
    pub fn pool(&self) -> Option<&Arc<crate::parallel::WorkerPool>> {
        self.pool.as_ref()
    }

    /// An executor over the processor's own pool (or inline).
    fn executor(&self) -> crate::parallel::ShardedExecutor {
        match &self.pool {
            Some(pool) => crate::parallel::ShardedExecutor::on_pool(Arc::clone(pool)),
            None => crate::parallel::ShardedExecutor::sequential(),
        }
    }

    /// The execution context over a caller-held database snapshot.
    fn context_on<'s>(&'s self, db: &'s TrajectoryDatabase) -> plan::ExecContext<'s> {
        plan::ExecContext {
            db,
            config: &self.config,
            executor: self.executor(),
            cache: &self.cache,
            ktimes_cache: &self.ktimes_cache,
            metrics: &self.metrics,
        }
    }

    /// A snapshot of the processor's serving counters: submissions
    /// accepted / rejected / cancelled / dropped / shed, per-plan queue
    /// wait, plan and execute latencies, cache traffic and the
    /// planner-calibration EWMAs. Every [`QueryProcessor::submit`] and
    /// every execution (synchronous or asynchronous) is accounted here.
    pub fn metrics(&self) -> crate::serving::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Executes a declarative query spec — **the** synchronous entry
    /// point, covering every predicate × decorator × strategy combination
    /// (the legacy per-predicate methods are thin shims over it).
    ///
    /// [`Strategy::Auto`] specs are planned first (see
    /// [`QueryProcessor::explain`]); explicit strategies dispatch
    /// directly. Answers are bit-for-bit independent of worker count,
    /// batch size and cache state.
    pub fn execute(&self, spec: &QuerySpec) -> Result<QueryAnswer> {
        self.execute_with_stats(spec, &mut EvalStats::new())
    }

    /// As [`QueryProcessor::execute`], accumulating evaluation counters
    /// (cache hits, shared fields, propagation steps, …) into `stats`.
    pub fn execute_with_stats(
        &self,
        spec: &QuerySpec,
        stats: &mut EvalStats,
    ) -> Result<QueryAnswer> {
        let snapshot = self.snapshot();
        plan::execute(&self.context_on(&snapshot), spec, stats)
    }

    /// Returns the planner's decision for a spec without executing it:
    /// the resolved strategy, per-strategy cost estimates and cache
    /// residency. The subsequent [`QueryProcessor::execute`] of the same
    /// spec follows this plan (cache state permitting — a plan is a
    /// snapshot, not a reservation).
    pub fn explain(&self, spec: &QuerySpec) -> Result<QueryPlan> {
        let snapshot = self.snapshot();
        plan::plan(&self.context_on(&snapshot), spec)
    }

    /// Submits a query for asynchronous evaluation and returns a
    /// [`QueryTicket`] **immediately** — the async front door, now behind
    /// admission control.
    ///
    /// The query runs as one job on the processor's worker pool (or the
    /// process-wide shared pool — sized from the host's available
    /// parallelism — when the processor evaluates inline), capturing an
    /// owned snapshot of the database handle, the configuration and the
    /// shared field caches — so the ticket outlives the borrow rules:
    /// callers can submit a burst, keep inserting into their own database
    /// handle, and await the answers later. Within the job the evaluation
    /// is sequential (pool workers do not re-shard onto the pool); a
    /// burst of submissions parallelizes **across** queries instead,
    /// round-robin over the shard queues. Submitted queries share the
    /// processor's caches, so a burst over the same window sweeps its
    /// backward field once.
    ///
    /// With [`EngineConfig::max_queue_depth`] set, a submission beyond
    /// the pending bound is rejected with [`QueryError::QueueFull`]
    /// without blocking; with [`EngineConfig::default_deadline`] set,
    /// accepted jobs whose queue wait exceeds the deadline are shed with
    /// [`QueryError::DeadlineExceeded`]. Every outcome is tallied in
    /// [`QueryProcessor::metrics`].
    ///
    /// ```
    /// use ust_core::prelude::*;
    /// use ust_markov::{CsrMatrix, MarkovChain};
    /// use ust_space::TimeSet;
    ///
    /// let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
    ///     vec![0.0, 0.0, 1.0],
    ///     vec![0.6, 0.0, 0.4],
    ///     vec![0.0, 0.8, 0.2],
    /// ]).unwrap()).unwrap();
    /// let mut db = TrajectoryDatabase::new(chain);
    /// db.insert(UncertainObject::with_single_observation(
    ///     7, Observation::exact(0, 3, 1).unwrap(),
    /// )).unwrap();
    /// let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
    /// let spec = Query::exists().window(window).build().unwrap();
    ///
    /// // `submit` is fallible: a full queue rejects instead of blocking.
    /// let processor = QueryProcessor::with_config(
    ///     &db,
    ///     EngineConfig::default().with_num_threads(2).with_max_queue_depth(1),
    /// );
    /// let ticket = processor.submit(&spec)?; // admitted (bound is 1)
    /// match processor.submit(&spec) {
    ///     Ok(second) => { second.wait()?; }                 // first one already finished
    ///     Err(QueryError::QueueFull { limit }) => assert_eq!(limit, 1),
    ///     Err(e) => return Err(e),
    /// }
    /// assert!((ticket.wait()?.probabilities().unwrap()[0].probability - 0.864).abs() < 1e-12);
    /// # Ok::<(), ust_core::QueryError>(())
    /// ```
    pub fn submit(&self, spec: &QuerySpec) -> Result<QueryTicket> {
        let limit = self.config.max_queue_depth;
        if limit > 0 {
            // Reserve an admission slot, or reject without blocking.
            let mut current = self.pending.load(Ordering::Relaxed);
            loop {
                if current >= limit {
                    self.metrics.record_rejected(spec.predicate(), spec.strategy());
                    return Err(QueryError::QueueFull { limit });
                }
                match self.pending.compare_exchange_weak(
                    current,
                    current + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(observed) => current = observed,
                }
            }
        } else {
            self.pending.fetch_add(1, Ordering::AcqRel);
        }
        self.metrics.record_accepted();

        let state = Arc::new(TicketState::new());
        let guard = TicketGuard {
            state: Arc::clone(&state),
            pending: Arc::clone(&self.pending),
            metrics: Arc::clone(&self.metrics),
        };
        let db = self.snapshot();
        let config = self.config;
        let cache = Arc::clone(&self.cache);
        let ktimes_cache = Arc::clone(&self.ktimes_cache);
        let metrics = Arc::clone(&self.metrics);
        let spec = spec.clone();
        let pool = match &self.pool {
            Some(pool) => Arc::clone(pool),
            // Inline processors fall back to the process-wide pool, sized
            // from the host rather than a single funnel worker (a 1-wide
            // shared pool would serialize every inline submitter in the
            // process behind one queue).
            None => crate::parallel::shared_pool(
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            ),
        };
        let shard = self.submit_seq.fetch_add(1, Ordering::Relaxed);
        let submitted_at = std::time::Instant::now();
        let deadline = self.config.default_deadline;
        let job: Box<dyn FnOnce() + Send + 'static> = Box::new(move || {
            let queue_wait = submitted_at.elapsed();
            if guard.state.is_cancelled() {
                guard.finish(Err(QueryError::Cancelled));
                return;
            }
            if deadline.is_some_and(|d| queue_wait > d) {
                guard.finish(Err(QueryError::DeadlineExceeded));
                return;
            }
            let ticket_state = Arc::clone(&guard.state);
            let interrupt = move || {
                if ticket_state.is_cancelled() {
                    return Some(QueryError::Cancelled);
                }
                if deadline.is_some_and(|d| submitted_at.elapsed() > d) {
                    return Some(QueryError::DeadlineExceeded);
                }
                None
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let ctx = plan::ExecContext {
                    db: &db,
                    config: &config,
                    executor: crate::parallel::ShardedExecutor::sequential(),
                    cache: &cache,
                    ktimes_cache: &ktimes_cache,
                    metrics: &metrics,
                };
                plan::execute_monitored(
                    &ctx,
                    &spec,
                    &mut EvalStats::new(),
                    Some(&interrupt),
                    Some(queue_wait),
                )
            }));
            guard.finish(outcome.unwrap_or(Err(QueryError::AsyncQueryPanicked)));
        });
        // The pending counter above *is* the admission decision, so the
        // enqueue itself is unconditional: `try_spawn`'s per-shard bound
        // protects direct pool users, but a submission that already holds
        // an admission slot must never be refused for a reason the
        // caller would misread as `QueueFull` (e.g. a caller filling a
        // shard through the public `pool()` handle, or a pool shutting
        // down mid-burst — the latter completes the ticket with
        // `AsyncQueryDropped` through the job's drop guard either way).
        let handle = pool.spawn(shard, job);
        Ok(QueryTicket { state, pool: Arc::downgrade(&pool), handle })
    }

    /// Registers a standing query: evaluates `spec` once against the
    /// current database and returns a [`Subscription`] whose answer is
    /// then maintained incrementally — every applied
    /// [`QueryProcessor::ingest`] / [`QueryProcessor::insert`] re-evaluates
    /// exactly the affected object (through the planner, so prefilter,
    /// batching, caches and metrics all apply) and splices the result into
    /// the maintained state. [`Subscription::answer`] is bit-for-bit what
    /// a from-scratch [`QueryProcessor::execute`] of
    /// [`Subscription::spec`] returns on a database holding the same
    /// applied observations — including errors, which are maintained with
    /// the same fidelity (`tests/streaming.rs` pins the equivalence).
    ///
    /// Two stabilizing choices happen at registration:
    ///
    /// * [`Strategy::Auto`] is resolved **once** against the current
    ///   database and pinned (re-planning per arrival could flip the
    ///   strategy between refreshes, and the exact strategies agree only
    ///   to rounding). If planning itself fails, the subscription pins
    ///   [`Strategy::QueryBased`] — the canonical streaming strategy —
    ///   and holds the evaluation error until arrivals repair it.
    /// * `∃` top-k specs pinned object-based are re-pinned query-based:
    ///   the OB ranking's reachability pruning *omits* provably
    ///   unreachable objects from its zero-probability tail, an omission
    ///   contract that cannot be reproduced incrementally (ranked values
    ///   are identical either way).
    ///
    /// Query-based subscriptions also pre-sweep their backward fields
    /// densely over every anchor time in `[0, t_end]`, so subsequent
    /// refreshes are pure cache hits: one sparse dot product per arrival,
    /// zero backward steps — the saving `BENCH_pr8.json` measures.
    pub fn watch(&self, spec: &QuerySpec) -> Result<Subscription> {
        let snapshot = self.snapshot();
        let pinned_strategy = match spec.strategy() {
            Strategy::Auto => plan::plan(&self.context_on(&snapshot), spec)
                .map(|p| p.strategy)
                .unwrap_or(Strategy::QueryBased),
            explicit => explicit,
        };
        let pinned_strategy = match (spec.predicate(), spec.decorator(), pinned_strategy) {
            (Predicate::Exists, Decorator::TopK(_), Strategy::ObjectBased) => Strategy::QueryBased,
            (_, _, resolved) => resolved,
        };
        let pinned = streaming::pin_strategy(spec, pinned_strategy)?;
        let mut stats = EvalStats::new();
        if pinned.strategy() == Strategy::QueryBased {
            self.warm_backward_fields(&snapshot, &pinned, &mut stats);
        }
        let raw = streaming::probe_spec(&pinned, None)
            .and_then(|probe| plan::execute(&self.context_on(&snapshot), &probe, &mut stats))
            .map(RawAnswer::from_answer);
        let id = self.watch_seq.fetch_add(1, Ordering::Relaxed);
        self.metrics.record_stream_watch(id, stats.total_steps());
        let state = Arc::new(SubscriptionState::new(id, pinned, raw));
        self.subscriptions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&state));
        Ok(Subscription::from_state(state))
    }

    /// Applies a latest-fix observation to the processor's database (see
    /// [`TrajectoryDatabase::ingest`]: a fix at or after the stored
    /// anchor's time supersedes it, an older one is ignored as stale) and,
    /// when applied, refreshes every registered subscription whose scope
    /// contains `object_id` — synchronously, under the same admission
    /// bound and deadline as [`QueryProcessor::submit`]ted queries.
    ///
    /// The write lock is held only for the (copy-on-write) database
    /// mutation; refreshes evaluate against an immutable snapshot taken
    /// after it, so queries racing the ingest see either the old or the
    /// new database, never a torn state. A refresh shed by the admission
    /// bound ([`QueryError::QueueFull`]) or the deadline
    /// ([`QueryError::DeadlineExceeded`]) marks its subscription stale
    /// (see [`Subscription::is_stale`]); the next admitted refresh
    /// resynchronizes with a full re-evaluation.
    pub fn ingest(&self, object_id: u64, observation: Observation) -> Result<IngestOutcome> {
        let arrived = std::time::Instant::now();
        let outcome = {
            let mut db = self.db.write().unwrap_or_else(std::sync::PoisonError::into_inner);
            db.ingest(object_id, observation)?
        };
        if outcome == IngestOutcome::Applied {
            self.refresh_subscriptions(object_id, arrived);
        }
        Ok(outcome)
    }

    /// Inserts a new object into the processor's database and refreshes
    /// every subscription whose scope contains it (whole-database
    /// subscriptions list the newcomer exactly where a full re-evaluation
    /// would: at the end, in database order).
    pub fn insert(&self, object: UncertainObject) -> Result<()> {
        let arrived = std::time::Instant::now();
        let object_id = object.id();
        {
            let mut db = self.db.write().unwrap_or_else(std::sync::PoisonError::into_inner);
            db.insert(object)?;
        }
        self.refresh_subscriptions(object_id, arrived);
        Ok(())
    }

    /// Pre-sweeps the shared backward-field caches densely over every
    /// anchor time in `[0, t_end]` for the models a query-based
    /// subscription can touch: single-object refreshes then hit whatever
    /// anchor time an arrival lands on without any backward work. PST∀Q
    /// sweeps ride the complement window (the Section VII reduction),
    /// PSTkQ the level-field cache. A failed warm sweep is deliberately
    /// swallowed — the evaluation path reports the error with its proper
    /// payload.
    fn warm_backward_fields(
        &self,
        db: &TrajectoryDatabase,
        spec: &QuerySpec,
        stats: &mut EvalStats,
    ) {
        let probe_window = match spec.predicate() {
            Predicate::ForAll => match spec.window().complement_states() {
                Ok(window) => window,
                Err(_) => return,
            },
            _ => spec.window().clone(),
        };
        let anchors: Vec<u32> = (0..=spec.window().t_end()).collect();
        let models: std::collections::BTreeSet<usize> = match spec.objects() {
            Some(ids) => ids
                .iter()
                .filter_map(|&id| db.index_of(id))
                .filter_map(|idx| db.object(idx))
                .map(|o| o.model())
                .collect(),
            None => db.objects().iter().map(|o| o.model()).collect(),
        };
        for model in models {
            let Some(chain) = db.models().get(model) else { continue };
            let _ = match spec.predicate() {
                Predicate::KTimes(_) => cache::FieldCache::get_or_compute_shared_concurrent(
                    &self.ktimes_cache,
                    model,
                    chain,
                    &probe_window,
                    &anchors,
                    &self.config,
                    stats,
                )
                .map(|_| ()),
                _ => cache::FieldCache::get_or_compute_shared_concurrent(
                    &self.cache,
                    model,
                    chain,
                    &probe_window,
                    &anchors,
                    &self.config,
                    stats,
                )
                .map(|_| ()),
            };
        }
    }

    /// The notification phase of an applied arrival: prunes cancelled
    /// subscriptions, snapshots the database once, and refreshes every
    /// subscription in scope. Serialized by `notify_lock` so concurrent
    /// ingests commit their refreshes in a single global order.
    fn refresh_subscriptions(&self, object_id: u64, arrived: std::time::Instant) {
        let _serialized =
            self.notify_lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let subs: Vec<Arc<SubscriptionState>> = {
            let mut registry =
                self.subscriptions.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            registry.retain(|s| !s.is_cancelled());
            registry.clone()
        };
        if subs.is_empty() {
            return;
        }
        let snapshot = self.snapshot();
        for sub in subs {
            if sub.is_cancelled() {
                continue;
            }
            if let Some(ids) = sub.spec.objects() {
                if !ids.contains(&object_id) {
                    // Out of scope: the maintained answer provably cannot
                    // change, so nothing is invalidated or re-evaluated.
                    continue;
                }
            }
            // lint: allow(lock-held-across-blocking) — notify_lock is the
            // root of the lock hierarchy and exists precisely to hold
            // across refresh execution: concurrent ingests must commit
            // their refreshes in one global order, and nothing ever
            // acquires notify_lock while holding another lock.
            self.refresh_one(&sub, &snapshot, object_id, arrived);
        }
    }

    /// Refreshes one subscription against `snapshot`. The refresh is a
    /// first-class serving job: it reserves an admission slot (or is shed
    /// with [`QueryError::QueueFull`]), honours the configured deadline
    /// against the arrival time, and tallies its outcome in the async
    /// lifecycle counters — so streaming load is visible to (and bounded
    /// by) the same backpressure as submitted queries.
    fn refresh_one(
        &self,
        sub: &SubscriptionState,
        snapshot: &TrajectoryDatabase,
        object_id: u64,
        arrived: std::time::Instant,
    ) {
        let limit = self.config.max_queue_depth;
        if limit > 0 {
            let mut current = self.pending.load(Ordering::Relaxed);
            loop {
                if current >= limit {
                    self.metrics.record_rejected(sub.spec.predicate(), sub.spec.strategy());
                    self.shed_refresh(sub, QueryError::QueueFull { limit });
                    return;
                }
                match self.pending.compare_exchange_weak(
                    current,
                    current + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(observed) => current = observed,
                }
            }
        } else {
            self.pending.fetch_add(1, Ordering::AcqRel);
        }
        self.metrics.record_accepted();
        if self.config.default_deadline.is_some_and(|d| arrived.elapsed() > d) {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            self.metrics.record_async_finished(crate::serving::AsyncOutcome::DeadlineExpired);
            self.shed_refresh(sub, QueryError::DeadlineExceeded);
            return;
        }

        let ctx = self.context_on(snapshot);
        let mut stats = EvalStats::new();
        // Decide the refresh shape under a short guard, then evaluate with
        // the guard released: plan execution fans out to the worker pool,
        // and a guard held across it would order `SubscriptionState.inner`
        // above the whole execution stack. `notify_lock` serializes
        // refreshes, so nothing else commits into this subscription
        // between the probe below and the commit relock.
        //
        // A stale or errored subscription resynchronizes with a full
        // re-evaluation; so does a Monte-Carlo one, whose per-object
        // sampling is only reproducible as a whole run.
        let needs_full = {
            let inner = sub.lock();
            inner.stale || inner.raw.is_err() || sub.spec.strategy() == Strategy::MonteCarlo
        };
        let committed_ok;
        if needs_full {
            let outcome = streaming::probe_spec(&sub.spec, None)
                .and_then(|probe| plan::execute(&ctx, &probe, &mut stats))
                .map(RawAnswer::from_answer);
            committed_ok = outcome.is_ok();
            let mut inner = sub.lock();
            inner.raw = outcome;
            inner.stale = false;
            inner.notifications += 1;
            drop(inner);
            self.metrics.record_stream_resync(sub.id, stats.total_steps());
        } else {
            // Suffix-scoped invalidation: exactly one maintained entry —
            // the ingested object's — is invalidated and recomputed; the
            // backward-field caches stay valid (their keys are
            // observation-independent), so the refresh reuses them.
            match streaming::probe_spec(&sub.spec, Some(object_id))
                .and_then(|probe| plan::execute(&ctx, &probe, &mut stats))
            {
                Ok(answer) => {
                    let mut inner = sub.lock();
                    if let Ok(raw) = inner.raw.as_mut() {
                        raw.splice(RawAnswer::from_answer(answer));
                    }
                    inner.notifications += 1;
                    committed_ok = true;
                }
                Err(_) => {
                    // The narrowed refresh failed validation: re-run the
                    // full batch evaluation so the stored error carries
                    // exactly the payload a from-scratch execution
                    // reports (e.g. which object a window-validation
                    // error names).
                    let mut full_stats = EvalStats::new();
                    let outcome = streaming::probe_spec(&sub.spec, None)
                        .and_then(|probe| plan::execute(&ctx, &probe, &mut full_stats))
                        .map(RawAnswer::from_answer);
                    stats.merge(&full_stats);
                    committed_ok = outcome.is_ok();
                    let mut inner = sub.lock();
                    inner.raw = outcome;
                    inner.notifications += 1;
                }
            }
            self.metrics.record_stream_refresh(sub.id, stats.total_steps());
        }
        self.pending.fetch_sub(1, Ordering::AcqRel);
        self.metrics.record_async_finished(if committed_ok {
            crate::serving::AsyncOutcome::Completed
        } else {
            crate::serving::AsyncOutcome::Failed
        });
    }

    /// Marks a shed refresh: the subscription is stale until its next
    /// admitted refresh, and the shed error is kept for inspection.
    fn shed_refresh(&self, sub: &SubscriptionState, error: QueryError) {
        self.metrics.record_stream_shed(sub.id);
        let mut inner = sub.lock();
        inner.stale = true;
        inner.last_shed = Some(error);
    }

    /// PST∃Q for every object, object-based (forward) evaluation.
    #[deprecated(note = "use Query::exists().window(…).strategy(Strategy::ObjectBased) + execute")]
    pub fn exists_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        let spec =
            Query::exists().window(window.clone()).strategy(Strategy::ObjectBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Probabilities(p) => Ok(p),
            _ => Err(QueryError::internal("probabilities decorator must yield probabilities")),
        }
    }

    /// PST∃Q for every object, query-based (backward) evaluation through
    /// the processor's shared field cache.
    #[deprecated(note = "use Query::exists().window(…).strategy(Strategy::QueryBased) + execute")]
    pub fn exists_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        let spec = Query::exists().window(window.clone()).strategy(Strategy::QueryBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Probabilities(p) => Ok(p),
            _ => Err(QueryError::internal("probabilities decorator must yield probabilities")),
        }
    }

    /// PST∀Q for every object, object-based evaluation.
    #[deprecated(note = "use Query::forall().window(…).strategy(Strategy::ObjectBased) + execute")]
    pub fn forall_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        let spec =
            Query::forall().window(window.clone()).strategy(Strategy::ObjectBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Probabilities(p) => Ok(p),
            _ => Err(QueryError::internal("probabilities decorator must yield probabilities")),
        }
    }

    /// PST∀Q for every object, query-based evaluation (complement windows
    /// ride the shared cache like any other window).
    #[deprecated(note = "use Query::forall().window(…).strategy(Strategy::QueryBased) + execute")]
    pub fn forall_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        let spec = Query::forall().window(window.clone()).strategy(Strategy::QueryBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Probabilities(p) => Ok(p),
            _ => Err(QueryError::internal("probabilities decorator must yield probabilities")),
        }
    }

    /// PSTkQ for every object, object-based (`C(t)` algorithm).
    #[deprecated(note = "use Query::ktimes(k).window(…).strategy(Strategy::ObjectBased) + execute")]
    pub fn ktimes_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectKDistribution>> {
        let spec =
            Query::ktimes(1).window(window.clone()).strategy(Strategy::ObjectBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Distributions(d) => Ok(d),
            _ => Err(QueryError::internal("k-times probabilities must yield distributions")),
        }
    }

    /// PSTkQ for every object, query-based evaluation through the
    /// processor's level-field cache.
    #[deprecated(note = "use Query::ktimes(k).window(…).strategy(Strategy::QueryBased) + execute")]
    pub fn ktimes_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectKDistribution>> {
        let spec =
            Query::ktimes(1).window(window.clone()).strategy(Strategy::QueryBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Distributions(d) => Ok(d),
            _ => Err(QueryError::internal("k-times probabilities must yield distributions")),
        }
    }

    /// Ids of all objects whose PST∃Q probability is at least `tau`
    /// (object-based with bound-based early termination). Note the spec
    /// builder rejects `tau` outside `[0, 1]`, which the legacy signature
    /// silently accepted.
    #[deprecated(note = "use Query::exists().window(…).threshold(τ) + execute")]
    pub fn threshold_query(&self, window: &QueryWindow, tau: f64) -> Result<Vec<u64>> {
        let spec = Query::exists()
            .window(window.clone())
            .threshold(tau)
            .strategy(Strategy::ObjectBased)
            .build()?;
        match self.execute(&spec)? {
            QueryAnswer::ObjectIds(ids) => Ok(ids),
            _ => Err(QueryError::internal("threshold decorator must yield ids")),
        }
    }

    /// As [`QueryProcessor::threshold_query`], answered from the
    /// query-based shared-field plan through the processor's cache.
    #[deprecated(
        note = "use Query::exists().window(…).threshold(τ).strategy(Strategy::QueryBased) + \
                execute"
    )]
    pub fn threshold_query_cached(&self, window: &QueryWindow, tau: f64) -> Result<Vec<u64>> {
        let spec = Query::exists()
            .window(window.clone())
            .threshold(tau)
            .strategy(Strategy::QueryBased)
            .build()?;
        match self.execute(&spec)? {
            QueryAnswer::ObjectIds(ids) => Ok(ids),
            _ => Err(QueryError::internal("threshold decorator must yield ids")),
        }
    }

    /// The `k` objects most likely to intersect the window (object-based
    /// with reachability pruning).
    #[deprecated(note = "use Query::exists().window(…).top_k(k) + execute")]
    pub fn topk(
        &self,
        window: &QueryWindow,
        k: usize,
    ) -> Result<Vec<crate::ranking::RankedObject>> {
        let spec = Query::exists()
            .window(window.clone())
            .top_k(k)
            .strategy(Strategy::ObjectBased)
            .build()?;
        match self.execute(&spec)? {
            QueryAnswer::Ranked(r) => Ok(r),
            _ => Err(QueryError::internal("top-k decorator must yield a ranking")),
        }
    }

    /// As [`QueryProcessor::topk`], via the query-based engine and the
    /// processor's shared cache. Same ranking, bit for bit.
    #[deprecated(
        note = "use Query::exists().window(…).top_k(k).strategy(Strategy::QueryBased) + execute"
    )]
    pub fn topk_query_based(
        &self,
        window: &QueryWindow,
        k: usize,
    ) -> Result<Vec<crate::ranking::RankedObject>> {
        let spec = Query::exists()
            .window(window.clone())
            .top_k(k)
            .strategy(Strategy::QueryBased)
            .build()?;
        match self.execute(&spec)? {
            QueryAnswer::Ranked(r) => Ok(r),
            _ => Err(QueryError::internal("top-k decorator must yield a ranking")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::UncertainObject;
    use crate::observation::Observation;
    use ust_markov::testutil;
    use ust_space::TimeSet;

    fn small_db(seed: u64, n_states: usize, n_objects: usize) -> TrajectoryDatabase {
        let chain = testutil::random_chain(seed, n_states, 3);
        let mut rng = testutil::rng(seed + 1);
        let mut db = TrajectoryDatabase::new(chain);
        for i in 0..n_objects {
            let dist = testutil::random_distribution(&mut rng, n_states, 2);
            db.insert(UncertainObject::with_single_observation(
                i as u64,
                Observation::uncertain(0, dist).unwrap(),
            ))
            .unwrap();
        }
        db
    }

    fn exists_spec(db: &TrajectoryDatabase) -> QuerySpec {
        let window =
            QueryWindow::from_states(db.num_states(), [1usize, 2], TimeSet::interval(2, 4))
                .unwrap();
        Query::exists().window(window).build().unwrap()
    }

    /// Satellite bugfix: a panicking job leaves the shared field-cache
    /// mutex poisoned; every lock site must recover via
    /// `PoisonError::into_inner` so the processor keeps serving.
    #[test]
    fn poisoned_cache_mutex_recovers_after_panicking_job() {
        let db = small_db(41, 12, 6);
        let processor =
            QueryProcessor::with_config(&db, EngineConfig::default().with_num_threads(2));
        let spec = exists_spec(&db);
        // Baseline through the cache so a QB sweep is resident.
        let forced = Query::exists()
            .window(spec.window().clone())
            .strategy(Strategy::QueryBased)
            .build()
            .unwrap();
        let baseline = processor.execute(&forced).unwrap();

        // Poison the cache mutex: a scoped job panics while holding it.
        let cache = Arc::clone(&processor.cache);
        let pool = Arc::clone(processor.pool().unwrap());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_scoped(vec![Box::new(move || {
                let _guard = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                panic!("poison the cache lock");
            }) as Box<dyn FnOnce() + Send + '_>]);
        }));
        assert!(caught.is_err(), "the panic re-raises on the submitter");
        assert!(processor.cache.is_poisoned(), "the mutex really is poisoned");

        // Both the synchronous and the asynchronous paths must still
        // serve — and bit-identically to the pre-poison answer.
        let again = processor.execute(&forced).unwrap();
        assert_eq!(again, baseline);
        let ticket = processor.submit(&forced).unwrap();
        assert_eq!(ticket.wait().unwrap(), baseline);
    }

    /// Satellite bugfix: an inline processor's submit must not funnel the
    /// whole process through a single shared worker — the fallback pool is
    /// sized from the host's available parallelism.
    #[test]
    fn inline_submit_fallback_pool_is_sized_from_available_parallelism() {
        let db = small_db(43, 10, 4);
        let processor = QueryProcessor::new(&db);
        assert!(processor.pool().is_none(), "inline processors own no pool");
        let ticket = processor.submit(&exists_spec(&db)).unwrap();
        ticket.wait().unwrap();
        let expected = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert!(
            crate::parallel::shared_pool(1).num_threads() >= expected,
            "the shared fallback pool must hold at least the host parallelism"
        );
    }

    /// Satellite bugfix: a job discarded without running must still
    /// complete its ticket (with `AsyncQueryDropped`), not strand `wait`.
    #[test]
    fn dropped_job_completes_its_ticket() {
        let db = small_db(47, 10, 4);
        let spec = exists_spec(&db);
        let processor = QueryProcessor::with_config(
            &db,
            EngineConfig::default().with_num_threads(2).with_max_queue_depth(8),
        );
        let pool = processor.pool().unwrap();
        // Gate both workers so the submitted job stays queued.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        for shard in 0..2 {
            let gate = Arc::clone(&gate);
            pool.spawn(
                shard,
                Box::new(move || {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    while !*open {
                        open = cv.wait(open).unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }),
            );
        }
        while pool.stats().queued_jobs > 0 {
            std::thread::yield_now();
        }
        let ticket = processor.submit(&spec).unwrap();
        assert!(!ticket.is_done());
        assert_eq!(processor.metrics().in_flight, 1);
        // Begin shutdown while the job is still queued, then release the
        // gates: the discard-mode workers shed the backlog instead of
        // running it — pool shut down mid-burst.
        pool.close_queues();
        let (lock, cv) = &*gate;
        *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
        assert_eq!(ticket.wait(), Err(QueryError::AsyncQueryDropped));
        let metrics = processor.metrics();
        assert_eq!(metrics.dropped, 1);
        assert_eq!(metrics.in_flight, 0);
    }

    /// Deadline admission: a job that starts after its deadline is shed
    /// with `DeadlineExceeded` instead of executing stale work.
    #[test]
    fn expired_deadline_sheds_the_query() {
        let db = small_db(53, 10, 4);
        let spec = exists_spec(&db);
        let processor = QueryProcessor::with_config(
            &db,
            EngineConfig::default()
                .with_num_threads(2)
                .with_default_deadline(std::time::Duration::ZERO),
        );
        // A zero deadline has always expired by the time the job starts.
        let ticket = processor.submit(&spec).unwrap();
        assert_eq!(ticket.wait(), Err(QueryError::DeadlineExceeded));
        let metrics = processor.metrics();
        assert_eq!(metrics.deadline_expired, 1);
        assert_eq!(metrics.in_flight, 0);
    }

    /// The serving registry accounts for every submission and execution.
    #[test]
    fn metrics_account_for_sync_and_async_queries() {
        let db = small_db(59, 12, 5);
        let spec = exists_spec(&db);
        let processor =
            QueryProcessor::with_config(&db, EngineConfig::default().with_num_threads(2));
        processor.execute(&spec).unwrap();
        let tickets: Vec<_> = (0..3).map(|_| processor.submit(&spec).unwrap()).collect();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let metrics = processor.metrics();
        assert_eq!(metrics.submitted, 3);
        assert_eq!(metrics.accepted, 3);
        assert_eq!(metrics.rejected, 0);
        assert_eq!(metrics.completed, 3);
        assert_eq!(metrics.in_flight, 0);
        assert_eq!(metrics.finished() + metrics.in_flight, metrics.accepted);
        assert_eq!(metrics.executions, 4, "one sync + three async executions");
        let total_plan_execs: u64 = metrics.plans.iter().map(|p| p.executions).sum();
        assert_eq!(total_plan_execs, 4);
        let entry = metrics
            .plans
            .iter()
            .find(|p| p.predicate == crate::query::Predicate::Exists)
            .expect("the exists plan shape was recorded");
        assert!(entry.execute_secs > 0.0);
        assert!(entry.queue_wait_secs >= 0.0);
        assert!(!metrics.to_string().is_empty());
    }

    /// `explain` renders the calibration state and the planner only
    /// consults the EWMA when the knob is on.
    #[test]
    fn explain_renders_calibration_state() {
        let db = small_db(61, 12, 6);
        let window =
            QueryWindow::from_states(db.num_states(), [1usize, 2], TimeSet::interval(2, 4))
                .unwrap();
        let bounded = Query::exists().window(window).threshold(0.4).build().unwrap();
        let processor = QueryProcessor::new(&db);
        let plan = processor.explain(&bounded).unwrap();
        assert!(!plan.calibrated, "cold registry: flat prior");
        assert_eq!(plan.ob_discount, 0.5);
        assert!(plan.to_string().contains("ob ×0.500 (prior)"));
        assert!(!plan.to_string().contains("ewma"));
        // Execute once: the EWMA gets a sample, but with calibration off
        // the planner keeps the flat prior.
        processor.execute(&bounded).unwrap();
        let plan = processor.explain(&bounded).unwrap();
        assert!(!plan.calibrated);
        assert_eq!(plan.ob_discount, 0.5);

        // Same workload with calibration on: after one bounded run the
        // learned ratio replaces the prior.
        let calibrated = QueryProcessor::with_config(
            &db,
            EngineConfig::default().with_planner_calibration(true),
        );
        calibrated.execute(&bounded).unwrap();
        let plan = calibrated.explain(&bounded).unwrap();
        assert!(plan.calibrated, "one bounded sample calibrates the next plan");
        assert!(plan.to_string().contains("(ewma)"));
        assert!(
            plan.ob_discount_learned || plan.qb_discount_learned,
            "the executed strategy's discount is marked learned"
        );
        // An untrained strategy's discount is still honestly a prior.
        if !plan.ob_discount_learned {
            assert!(plan.to_string().contains("ob ×0.500 (prior)"));
        }
        let discounts = calibrated.metrics();
        assert!(
            discounts.ob_discount.is_some() || discounts.qb_discount.is_some(),
            "the executed strategy recorded its step ratio"
        );
        // The matrix-entry throughput EWMA follows the same opt-in: the
        // uncalibrated processor's plan never exposes it, the calibrated
        // one reports whatever the executed strategy measured.
        assert_eq!(processor.explain(&bounded).unwrap().ob_entry_throughput, None);
        assert_eq!(
            plan.ob_entry_throughput.is_some(),
            discounts.ob_entry_throughput.is_some(),
            "the calibrated plan mirrors the registry's observed rate"
        );
    }

    fn fresh_answer(processor: &QueryProcessor, spec: &QuerySpec) -> Result<QueryAnswer> {
        QueryProcessor::new(&processor.snapshot()).execute(spec)
    }

    /// The tentpole contract in miniature: after ingests, a stale
    /// rejection and an insert, the maintained answer is bit-for-bit what
    /// a from-scratch execution over the current snapshot returns.
    #[test]
    fn watch_maintains_batch_identical_answers() {
        let db = small_db(67, 12, 6);
        let processor = QueryProcessor::new(&db);
        let sub = processor.watch(&exists_spec(&db)).unwrap();
        assert_ne!(sub.spec().strategy(), Strategy::Auto, "Auto resolves at registration");
        assert_eq!(sub.answer(), fresh_answer(&processor, sub.spec()));

        let mut rng = testutil::rng(97);
        let dist = testutil::random_distribution(&mut rng, 12, 3);
        let applied = processor.ingest(2, Observation::uncertain(1, dist).unwrap()).unwrap();
        assert_eq!(applied, IngestOutcome::Applied);
        assert_eq!(sub.notifications(), 1);
        assert_eq!(sub.answer(), fresh_answer(&processor, sub.spec()));

        // An out-of-order fix is ignored and triggers no notification.
        let stale_dist = testutil::random_distribution(&mut rng, 12, 2);
        let stale = processor.ingest(2, Observation::uncertain(0, stale_dist).unwrap()).unwrap();
        assert_eq!(stale, IngestOutcome::IgnoredStale);
        assert_eq!(sub.notifications(), 1);

        // A newly inserted object joins the maintained answer exactly
        // where a full re-evaluation lists it: last, in database order.
        let new_dist = testutil::random_distribution(&mut rng, 12, 2);
        processor
            .insert(UncertainObject::with_single_observation(
                99,
                Observation::uncertain(0, new_dist).unwrap(),
            ))
            .unwrap();
        assert_eq!(sub.notifications(), 2);
        let answer = sub.answer().unwrap();
        assert_eq!(answer.probabilities().unwrap().last().unwrap().object_id, 99);
        assert_eq!(Ok(answer), fresh_answer(&processor, sub.spec()));
    }

    /// The streaming economics: a query-based subscription pre-sweeps its
    /// backward fields at registration, so an in-scope arrival costs zero
    /// propagation steps — the maintained entry is invalidated and
    /// recomputed as a cached-field dot product.
    #[test]
    fn warm_query_based_refresh_costs_zero_propagation_steps() {
        let db = small_db(71, 12, 6);
        let processor = QueryProcessor::new(&db);
        let spec = Query::exists()
            .window(exists_spec(&db).window().clone())
            .strategy(Strategy::QueryBased)
            .build()
            .unwrap();
        let sub = processor.watch(&spec).unwrap();

        let mut rng = testutil::rng(101);
        let dist = testutil::random_distribution(&mut rng, 12, 3);
        processor.ingest(0, Observation::uncertain(2, dist).unwrap()).unwrap();

        let metrics = processor.metrics();
        let stream = metrics.stream(sub.id()).expect("watch registered the stream");
        assert!(stream.recompute_steps > 0, "registration paid the dense sweep");
        assert_eq!(stream.reevaluations, 1);
        assert_eq!(stream.suffix_invalidations, 1, "exactly one maintained entry invalidated");
        assert_eq!(stream.incremental_steps, 0, "the refresh was pure cache hits");
        assert_eq!(sub.answer(), fresh_answer(&processor, sub.spec()));
    }

    /// Scoped subscriptions ignore out-of-scope arrivals entirely — no
    /// invalidation, no re-evaluation, no notification.
    #[test]
    fn out_of_scope_arrivals_do_not_touch_scoped_subscriptions() {
        let db = small_db(73, 12, 6);
        let processor = QueryProcessor::new(&db);
        let spec = Query::exists()
            .window(exists_spec(&db).window().clone())
            .objects([1u64, 3])
            .build()
            .unwrap();
        let sub = processor.watch(&spec).unwrap();
        let before = sub.answer();

        let mut rng = testutil::rng(103);
        let dist = testutil::random_distribution(&mut rng, 12, 3);
        processor.ingest(0, Observation::uncertain(1, dist).unwrap()).unwrap();
        assert_eq!(sub.notifications(), 0);
        assert_eq!(sub.answer(), before);
        let metrics = processor.metrics();
        assert_eq!(metrics.stream(sub.id()).unwrap().reevaluations, 0);

        let dist = testutil::random_distribution(&mut rng, 12, 3);
        processor.ingest(3, Observation::uncertain(1, dist).unwrap()).unwrap();
        assert_eq!(sub.notifications(), 1);
        assert_eq!(sub.answer(), fresh_answer(&processor, sub.spec()));
    }

    /// Cancelling (or dropping) a subscription unregisters it: the next
    /// arrival prunes it from the registry without refreshing it.
    #[test]
    fn cancelled_subscriptions_are_pruned_on_the_next_arrival() {
        let db = small_db(79, 12, 5);
        let processor = QueryProcessor::new(&db);
        let sub = processor.watch(&exists_spec(&db)).unwrap();
        drop(processor.watch(&exists_spec(&db)).unwrap());
        sub.cancel();
        assert!(sub.is_cancelled());

        let mut rng = testutil::rng(107);
        let dist = testutil::random_distribution(&mut rng, 12, 3);
        processor.ingest(1, Observation::uncertain(1, dist).unwrap()).unwrap();
        assert_eq!(sub.notifications(), 0, "cancelled subscriptions never refresh");
        let registry =
            processor.subscriptions.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(registry.is_empty(), "the arrival pruned both dead subscriptions");
        // The cancelled subscription still answers from its last state.
        assert!(sub.answer().is_ok());
    }

    /// `∃` top-k pinned object-based would inherit the OB ranking's
    /// omission contract (provably unreachable objects are left off the
    /// zero tail), which cannot be maintained incrementally — watch
    /// re-pins it query-based, where ranked values are identical.
    #[test]
    fn exists_topk_subscriptions_pin_query_based() {
        let db = small_db(83, 12, 6);
        let processor = QueryProcessor::new(&db);
        let spec = Query::exists()
            .window(exists_spec(&db).window().clone())
            .top_k(3)
            .strategy(Strategy::ObjectBased)
            .build()
            .unwrap();
        let sub = processor.watch(&spec).unwrap();
        assert_eq!(sub.spec().strategy(), Strategy::QueryBased);
        assert_eq!(sub.answer(), fresh_answer(&processor, sub.spec()));
        let mut rng = testutil::rng(109);
        let dist = testutil::random_distribution(&mut rng, 12, 3);
        processor.ingest(4, Observation::uncertain(2, dist).unwrap()).unwrap();
        assert_eq!(sub.answer(), fresh_answer(&processor, sub.spec()));
    }
}
