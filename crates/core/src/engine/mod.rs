//! Query evaluation engines.
//!
//! Implements the paper's two exact strategies — the **object-based (OB)**
//! forward approach (Section V-A) and the **query-based (QB)** backward
//! approach (Section V-B) — for all three predicates (∃, ∀, k-times), plus
//! the comparison baselines of the evaluation:
//!
//! * [`object_based`] / [`query_based`] — exact possible-worlds evaluation
//!   using the virtual `M−`/`M+` operators;
//! * [`forall`] — PST∀Q by complement reduction (Section VII);
//! * [`ktimes`] — the memory-efficient `C(t)` algorithm (Section VII), a
//!   QB counterpart, and the blown-up-matrix reference;
//! * [`monte_carlo`] — the sampling competitor (MC in Fig. 8);
//! * [`independent`] — the temporal-independence model prior work uses
//!   (the strawman of Fig. 1 / accuracy experiment Fig. 9d);
//! * [`exhaustive`] — exact possible-world enumeration for tiny instances,
//!   the ground truth of the test suite.
//!
//! All of them drive the shared propagation core in [`pipeline`]: the
//! engines supply direction, start state and the accumulation rule applied
//! at query timestamps, while the step loop, ε-pruning, sparse↔dense
//! switching and statistics accounting exist exactly once.

pub mod cache;
pub mod exhaustive;
pub mod forall;
pub mod independent;
pub mod ktimes;
pub mod monte_carlo;
pub mod object_based;
pub mod pipeline;
pub mod query_based;

use crate::database::TrajectoryDatabase;
use crate::error::Result;
use crate::query::{ObjectKDistribution, ObjectProbability, QueryWindow};
use crate::stats::EvalStats;

/// Groups a worker's object indices by `(model, anchor time)` — the two
/// properties every member of an [`pipeline::ObjectBatch`] must share (one
/// transition matrix, one sweep start). Returns, per key, the *positions*
/// into `indices` in their original order, so drivers can stitch results
/// back deterministically.
pub(crate) fn group_batchable(
    db: &TrajectoryDatabase,
    indices: &[usize],
) -> std::collections::BTreeMap<(usize, u32), Vec<usize>> {
    let mut groups: std::collections::BTreeMap<(usize, u32), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (pos, &idx) in indices.iter().enumerate() {
        let object = db.object(idx).expect("caller passes valid indices");
        groups.entry((object.model(), object.anchor().time())).or_default().push(pos);
    }
    groups
}

/// Default number of objects propagated per [`pipeline::ObjectBatch`].
pub const DEFAULT_BATCH_SIZE: usize = 32;

/// Tuning knobs shared by the exact engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// ε-pruning threshold: probability entries `≤ epsilon` are dropped
    /// during propagation (`0.0` = exact). The dropped mass is reported in
    /// [`EvalStats::pruned_mass`] and bounds the absolute result error.
    pub epsilon: f64,
    /// Density at which propagation vectors switch from sparse to dense
    /// (see `ust_markov::hybrid`); `≥ 1.0` forces always-sparse, `0.0`
    /// always-dense.
    pub densify_threshold: f64,
    /// Objects propagated together per batch by the object-based drivers
    /// (clamped to at least 1). Batched and per-object evaluation are
    /// bit-for-bit identical; larger batches amortize matrix-row traversals
    /// across densified vectors.
    pub batch_size: usize,
    /// Worker threads the [`crate::parallel::ShardedExecutor`] shards
    /// object batches across (clamped to at least 1; `1` runs inline).
    pub num_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            epsilon: 0.0,
            densify_threshold: 0.25,
            batch_size: DEFAULT_BATCH_SIZE,
            num_threads: 1,
        }
    }
}

impl EngineConfig {
    /// The exact configuration (no pruning, adaptive representation).
    pub fn exact() -> Self {
        EngineConfig::default()
    }

    /// Sets the ε-pruning threshold.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the sparse→dense switching threshold.
    pub fn with_densify_threshold(mut self, threshold: f64) -> Self {
        self.densify_threshold = threshold;
        self
    }

    /// Sets the number of objects propagated per batch.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the number of sharding worker threads.
    pub fn with_num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// The effective batch size (at least 1).
    pub fn effective_batch_size(&self) -> usize {
        self.batch_size.max(1)
    }

    /// The effective worker count (at least 1).
    pub fn effective_num_threads(&self) -> usize {
        self.num_threads.max(1)
    }
}

/// High-level façade tying a database to the engines.
///
/// Every entry point routes through the batched propagation kernel and the
/// [`crate::parallel::ShardedExecutor`]: with the default configuration
/// (`num_threads == 1`) the single shard runs inline on the caller's
/// thread; [`EngineConfig::with_num_threads`] shards object batches across
/// scoped workers, each owning one propagation pipeline. Results are
/// bit-for-bit independent of both the batch size and the worker count.
///
/// ```
/// use ust_core::prelude::*;
/// use ust_markov::{CsrMatrix, MarkovChain};
/// use ust_space::TimeSet;
///
/// // The running-example chain of the paper (Section V).
/// let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
///     vec![0.0, 0.0, 1.0],
///     vec![0.6, 0.0, 0.4],
///     vec![0.0, 0.8, 0.2],
/// ]).unwrap()).unwrap();
/// let mut db = TrajectoryDatabase::new(chain);
/// db.insert(UncertainObject::with_single_observation(
///     7, Observation::exact(0, 3, 1).unwrap(),
/// )).unwrap();
///
/// let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
/// let processor = QueryProcessor::new(&db);
/// let ob = processor.exists_object_based(&window).unwrap();
/// let qb = processor.exists_query_based(&window).unwrap();
/// assert!((ob[0].probability - 0.864).abs() < 1e-12);
/// assert!((qb[0].probability - 0.864).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct QueryProcessor<'a> {
    db: &'a TrajectoryDatabase,
    config: EngineConfig,
}

impl<'a> QueryProcessor<'a> {
    /// Creates a processor with the exact default configuration.
    pub fn new(db: &'a TrajectoryDatabase) -> Self {
        QueryProcessor { db, config: EngineConfig::default() }
    }

    /// Creates a processor with a custom configuration.
    pub fn with_config(db: &'a TrajectoryDatabase, config: EngineConfig) -> Self {
        QueryProcessor { db, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// PST∃Q for every object, object-based (forward) evaluation.
    pub fn exists_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        crate::parallel::evaluate_exists_parallel(
            self.db,
            window,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// PST∃Q for every object, query-based (backward) evaluation.
    pub fn exists_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        crate::parallel::evaluate_exists_qb_parallel(
            self.db,
            window,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// PST∀Q for every object, object-based evaluation.
    pub fn forall_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        crate::parallel::evaluate_forall_parallel(
            self.db,
            window,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// PST∀Q for every object, query-based evaluation.
    pub fn forall_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        crate::parallel::evaluate_forall_qb_parallel(
            self.db,
            window,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// PSTkQ for every object, object-based (`C(t)` algorithm).
    pub fn ktimes_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectKDistribution>> {
        crate::parallel::evaluate_ktimes_parallel(
            self.db,
            window,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// PSTkQ for every object, query-based evaluation.
    pub fn ktimes_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectKDistribution>> {
        crate::parallel::evaluate_ktimes_qb_parallel(
            self.db,
            window,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// Ids of all objects whose PST∃Q probability is at least `tau`
    /// (bound-based early termination, batched and sharded).
    pub fn threshold_query(&self, window: &QueryWindow, tau: f64) -> Result<Vec<u64>> {
        crate::parallel::threshold_query_parallel(
            self.db,
            window,
            tau,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// The `k` objects most likely to intersect the window (object-based
    /// with reachability pruning, batched and sharded).
    pub fn topk(
        &self,
        window: &QueryWindow,
        k: usize,
    ) -> Result<Vec<crate::ranking::RankedObject>> {
        crate::parallel::topk_object_based_parallel(
            self.db,
            window,
            k,
            &self.config,
            &mut EvalStats::new(),
        )
    }
}
