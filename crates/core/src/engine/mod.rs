//! Query evaluation engines.
//!
//! Implements the paper's two exact strategies — the **object-based (OB)**
//! forward approach (Section V-A) and the **query-based (QB)** backward
//! approach (Section V-B) — for all three predicates (∃, ∀, k-times), plus
//! the comparison baselines of the evaluation:
//!
//! * [`object_based`] / [`query_based`] — exact possible-worlds evaluation
//!   using the virtual `M−`/`M+` operators;
//! * [`forall`] — PST∀Q by complement reduction (Section VII);
//! * [`ktimes`] — the memory-efficient `C(t)` algorithm (Section VII), a
//!   QB counterpart, and the blown-up-matrix reference;
//! * [`monte_carlo`] — the sampling competitor (MC in Fig. 8);
//! * [`independent`] — the temporal-independence model prior work uses
//!   (the strawman of Fig. 1 / accuracy experiment Fig. 9d);
//! * [`exhaustive`] — exact possible-world enumeration for tiny instances,
//!   the ground truth of the test suite.
//!
//! All of them drive the shared propagation core in [`pipeline`]: the
//! engines supply direction, start state and the accumulation rule applied
//! at query timestamps, while the step loop, ε-pruning, sparse↔dense
//! switching and statistics accounting exist exactly once.

pub mod cache;
pub mod exhaustive;
pub mod forall;
pub mod independent;
pub mod ktimes;
pub mod monte_carlo;
pub mod object_based;
pub mod pipeline;
pub mod query_based;

use crate::database::TrajectoryDatabase;
use crate::error::Result;
use crate::query::{ObjectKDistribution, ObjectProbability, QueryWindow};
use crate::stats::EvalStats;

/// Groups a worker's object indices by `(model, anchor time)` — the two
/// properties every member of an [`pipeline::ObjectBatch`] must share (one
/// transition matrix, one sweep start). Returns, per key, the *positions*
/// into `indices` in their original order, so drivers can stitch results
/// back deterministically.
pub(crate) fn group_batchable(
    db: &TrajectoryDatabase,
    indices: &[usize],
) -> std::collections::BTreeMap<(usize, u32), Vec<usize>> {
    let mut groups: std::collections::BTreeMap<(usize, u32), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (pos, &idx) in indices.iter().enumerate() {
        let object = db.object(idx).expect("caller passes valid indices");
        groups.entry((object.model(), object.anchor().time())).or_default().push(pos);
    }
    groups
}

/// Default number of objects propagated per [`pipeline::ObjectBatch`].
pub const DEFAULT_BATCH_SIZE: usize = 32;

/// Tuning knobs shared by the exact engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// ε-pruning threshold: probability entries `≤ epsilon` are dropped
    /// during propagation (`0.0` = exact). The dropped mass is reported in
    /// [`EvalStats::pruned_mass`] and bounds the absolute result error.
    pub epsilon: f64,
    /// Density at which propagation vectors switch from sparse to dense
    /// (see `ust_markov::hybrid`); `≥ 1.0` forces always-sparse, `0.0`
    /// always-dense.
    pub densify_threshold: f64,
    /// Objects propagated together per batch by the object-based drivers
    /// (clamped to at least 1). Batched and per-object evaluation are
    /// bit-for-bit identical; larger batches amortize matrix-row traversals
    /// across densified vectors.
    pub batch_size: usize,
    /// Worker threads the [`crate::parallel::ShardedExecutor`] shards
    /// object batches across (clamped to at least 1; `1` runs inline). A
    /// [`QueryProcessor`] built with `num_threads > 1` owns a long-lived
    /// [`crate::parallel::WorkerPool`] of this size; the free `*_parallel`
    /// functions borrow the process-wide shared pool instead.
    pub num_threads: usize,
    /// `(model, window)` entries retained by the [`QueryProcessor`]'s
    /// backward-field cache (clamped to at least 1). Each entry holds one
    /// dense snapshot per distinct anchor time, so memory scales with
    /// `capacity × anchors × |S|`; repeated or overlapping windows served
    /// from the cache skip their backward sweeps entirely.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            epsilon: 0.0,
            densify_threshold: 0.25,
            batch_size: DEFAULT_BATCH_SIZE,
            num_threads: 1,
            cache_capacity: cache::DEFAULT_CACHE_CAPACITY,
        }
    }
}

impl EngineConfig {
    /// The exact configuration (no pruning, adaptive representation).
    pub fn exact() -> Self {
        EngineConfig::default()
    }

    /// Sets the ε-pruning threshold.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the sparse→dense switching threshold.
    pub fn with_densify_threshold(mut self, threshold: f64) -> Self {
        self.densify_threshold = threshold;
        self
    }

    /// Sets the number of objects propagated per batch.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the number of sharding worker threads.
    pub fn with_num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Sets the backward-field cache capacity (entries).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// The effective batch size (at least 1).
    pub fn effective_batch_size(&self) -> usize {
        self.batch_size.max(1)
    }

    /// The effective worker count (at least 1).
    pub fn effective_num_threads(&self) -> usize {
        self.num_threads.max(1)
    }

    /// The effective cache capacity (at least 1).
    pub fn effective_cache_capacity(&self) -> usize {
        self.cache_capacity.max(1)
    }
}

/// High-level façade tying a database to the engines — the long-lived
/// service object of the crate.
///
/// Every entry point routes through the batched propagation kernel and the
/// [`crate::parallel::ShardedExecutor`]: with the default configuration
/// (`num_threads == 1`) the single shard runs inline on the caller's
/// thread; with [`EngineConfig::with_num_threads`] `> 1` the processor
/// **owns a [`crate::parallel::WorkerPool`]** — the worker threads are
/// spawned once at construction, reused by every query, and joined when
/// the processor is dropped. The query-based entry points additionally
/// share one [`cache::BackwardFieldCache`] (sized by
/// [`EngineConfig::cache_capacity`], behind a lock), so repeated or
/// overlapping windows skip their backward sweeps. Results are bit-for-bit
/// independent of the batch size, the worker count and the cache.
///
/// ```
/// use ust_core::prelude::*;
/// use ust_markov::{CsrMatrix, MarkovChain};
/// use ust_space::TimeSet;
///
/// // The running-example chain of the paper (Section V).
/// let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
///     vec![0.0, 0.0, 1.0],
///     vec![0.6, 0.0, 0.4],
///     vec![0.0, 0.8, 0.2],
/// ]).unwrap()).unwrap();
/// let mut db = TrajectoryDatabase::new(chain);
/// db.insert(UncertainObject::with_single_observation(
///     7, Observation::exact(0, 3, 1).unwrap(),
/// )).unwrap();
///
/// let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
/// let processor = QueryProcessor::new(&db);
/// let ob = processor.exists_object_based(&window).unwrap();
/// let qb = processor.exists_query_based(&window).unwrap();
/// assert!((ob[0].probability - 0.864).abs() < 1e-12);
/// assert!((qb[0].probability - 0.864).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct QueryProcessor<'a> {
    db: &'a TrajectoryDatabase,
    config: EngineConfig,
    /// The processor's long-lived workers; `None` runs inline
    /// (`num_threads <= 1`).
    pool: Option<std::sync::Arc<crate::parallel::WorkerPool>>,
    /// Backward fields shared by the query-based entry points, reused
    /// across queries and windows.
    cache: std::sync::Mutex<cache::BackwardFieldCache>,
}

impl<'a> QueryProcessor<'a> {
    /// Creates a processor with the exact default configuration
    /// (sequential, inline).
    pub fn new(db: &'a TrajectoryDatabase) -> Self {
        QueryProcessor::with_config(db, EngineConfig::default())
    }

    /// Creates a processor with a custom configuration. With
    /// `config.num_threads > 1` this spawns the processor's worker pool —
    /// construct once and reuse, rather than per query.
    pub fn with_config(db: &'a TrajectoryDatabase, config: EngineConfig) -> Self {
        let threads = config.effective_num_threads();
        let pool =
            (threads > 1).then(|| std::sync::Arc::new(crate::parallel::WorkerPool::new(threads)));
        let cache = std::sync::Mutex::new(cache::BackwardFieldCache::new(
            config.effective_cache_capacity(),
        ));
        QueryProcessor { db, config, pool, cache }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The processor's worker pool (`None` when it evaluates inline).
    pub fn pool(&self) -> Option<&std::sync::Arc<crate::parallel::WorkerPool>> {
        self.pool.as_ref()
    }

    /// An executor over the processor's own pool (or inline).
    fn executor(&self) -> crate::parallel::ShardedExecutor {
        match &self.pool {
            Some(pool) => crate::parallel::ShardedExecutor::on_pool(std::sync::Arc::clone(pool)),
            None => crate::parallel::ShardedExecutor::sequential(),
        }
    }

    /// PST∃Q for every object, object-based (forward) evaluation.
    pub fn exists_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        crate::parallel::evaluate_exists_on(
            &self.executor(),
            self.db,
            window,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// PST∃Q for every object, query-based (backward) evaluation. The
    /// backward field is served through the processor's shared cache —
    /// repeated or overlapping windows skip the sweep; results are
    /// bit-for-bit identical to uncached evaluation.
    pub fn exists_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        crate::parallel::evaluate_exists_qb_cached_on(
            &self.executor(),
            self.db,
            window,
            &self.config,
            &self.cache,
            &mut EvalStats::new(),
        )
    }

    /// PST∀Q for every object, object-based evaluation.
    pub fn forall_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        crate::parallel::evaluate_forall_on(
            &self.executor(),
            self.db,
            window,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// PST∀Q for every object, query-based evaluation (complement windows
    /// ride the shared cache like any other window).
    pub fn forall_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        let complement = window.complement_states()?;
        let mut results = self.exists_query_based(&complement)?;
        forall::complement_probabilities(&mut results);
        Ok(results)
    }

    /// PSTkQ for every object, object-based (`C(t)` algorithm).
    pub fn ktimes_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectKDistribution>> {
        crate::parallel::evaluate_ktimes_on(
            &self.executor(),
            self.db,
            window,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// PSTkQ for every object, query-based evaluation.
    pub fn ktimes_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectKDistribution>> {
        crate::parallel::evaluate_ktimes_qb_on(
            &self.executor(),
            self.db,
            window,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// Ids of all objects whose PST∃Q probability is at least `tau`
    /// (object-based with bound-based early termination, batched and
    /// sharded).
    ///
    /// ```
    /// use ust_core::prelude::*;
    /// use ust_markov::{CsrMatrix, MarkovChain};
    /// use ust_space::TimeSet;
    ///
    /// let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
    ///     vec![0.0, 0.0, 1.0],
    ///     vec![0.6, 0.0, 0.4],
    ///     vec![0.0, 0.8, 0.2],
    /// ]).unwrap()).unwrap();
    /// let mut db = TrajectoryDatabase::new(chain);
    /// for (id, s) in [(1u64, 0usize), (2, 1), (3, 2)] {
    ///     db.insert(UncertainObject::with_single_observation(
    ///         id, Observation::exact(0, 3, s).unwrap(),
    ///     )).unwrap();
    /// }
    /// let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
    /// // Exact probabilities are (0.96, 0.864, 0.928): τ = 0.9 keeps 1 and 3.
    /// let accepted = QueryProcessor::new(&db).threshold_query(&window, 0.9).unwrap();
    /// assert_eq!(accepted, vec![1, 3]);
    /// ```
    pub fn threshold_query(&self, window: &QueryWindow, tau: f64) -> Result<Vec<u64>> {
        crate::parallel::threshold_query_on(
            &self.executor(),
            self.db,
            window,
            tau,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// As [`QueryProcessor::threshold_query`], answered from the
    /// query-based shared-field plan through the processor's cache — the
    /// choice for repeated windows (a dashboard re-asking the same danger
    /// zone pays no backward sweep at all). Exact, same ids.
    pub fn threshold_query_cached(&self, window: &QueryWindow, tau: f64) -> Result<Vec<u64>> {
        crate::parallel::threshold_query_cached_on(
            &self.executor(),
            self.db,
            window,
            tau,
            &self.config,
            &self.cache,
            &mut EvalStats::new(),
        )
    }

    /// The `k` objects most likely to intersect the window (object-based
    /// with reachability pruning, batched and sharded).
    ///
    /// ```
    /// use ust_core::prelude::*;
    /// use ust_markov::{CsrMatrix, MarkovChain};
    /// use ust_space::TimeSet;
    ///
    /// let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
    ///     vec![0.0, 0.0, 1.0],
    ///     vec![0.6, 0.0, 0.4],
    ///     vec![0.0, 0.8, 0.2],
    /// ]).unwrap()).unwrap();
    /// let mut db = TrajectoryDatabase::new(chain);
    /// for (id, s) in [(1u64, 0usize), (2, 1), (3, 2)] {
    ///     db.insert(UncertainObject::with_single_observation(
    ///         id, Observation::exact(0, 3, s).unwrap(),
    ///     )).unwrap();
    /// }
    /// let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
    /// let top2 = QueryProcessor::new(&db).topk(&window, 2).unwrap();
    /// assert_eq!(top2[0].object_id, 1); // P = 0.96
    /// assert_eq!(top2[1].object_id, 3); // P = 0.928
    /// ```
    pub fn topk(
        &self,
        window: &QueryWindow,
        k: usize,
    ) -> Result<Vec<crate::ranking::RankedObject>> {
        crate::parallel::topk_object_based_on(
            &self.executor(),
            self.db,
            window,
            k,
            &self.config,
            &mut EvalStats::new(),
        )
    }

    /// As [`QueryProcessor::topk`], via the query-based engine and the
    /// processor's shared cache (one cached backward sweep per model, then
    /// sharded dot products and selection). Same ranking, bit for bit.
    pub fn topk_query_based(
        &self,
        window: &QueryWindow,
        k: usize,
    ) -> Result<Vec<crate::ranking::RankedObject>> {
        crate::parallel::topk_query_based_cached_on(
            &self.executor(),
            self.db,
            window,
            k,
            &self.config,
            &self.cache,
            &mut EvalStats::new(),
        )
    }
}
