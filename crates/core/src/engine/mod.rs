//! Query evaluation engines.
//!
//! Implements the paper's two exact strategies — the **object-based (OB)**
//! forward approach (Section V-A) and the **query-based (QB)** backward
//! approach (Section V-B) — for all three predicates (∃, ∀, k-times), plus
//! the comparison baselines of the evaluation:
//!
//! * [`object_based`] / [`query_based`] — exact possible-worlds evaluation
//!   using the virtual `M−`/`M+` operators;
//! * [`forall`] — PST∀Q by complement reduction (Section VII);
//! * [`ktimes`] — the memory-efficient `C(t)` algorithm (Section VII), a
//!   QB counterpart, and the blown-up-matrix reference;
//! * [`monte_carlo`] — the sampling competitor (MC in Fig. 8);
//! * [`independent`] — the temporal-independence model prior work uses
//!   (the strawman of Fig. 1 / accuracy experiment Fig. 9d);
//! * [`exhaustive`] — exact possible-world enumeration for tiny instances,
//!   the ground truth of the test suite.
//!
//! All of them drive the shared propagation core in [`pipeline`]: the
//! engines supply direction, start state and the accumulation rule applied
//! at query timestamps, while the step loop, ε-pruning, sparse↔dense
//! switching and statistics accounting exist exactly once.

pub mod cache;
pub mod exhaustive;
pub mod forall;
pub mod independent;
pub mod ktimes;
pub mod monte_carlo;
pub mod object_based;
pub mod pipeline;
pub mod plan;
pub mod query_based;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::database::TrajectoryDatabase;
use crate::error::{QueryError, Result};
use crate::query::{
    ObjectKDistribution, ObjectProbability, Query, QueryAnswer, QuerySpec, QueryWindow, Strategy,
};
use crate::stats::EvalStats;

pub use plan::{CostEstimate, QueryPlan};

/// Groups a worker's object indices by `(model, anchor time)` — the two
/// properties every member of an [`pipeline::ObjectBatch`] must share (one
/// transition matrix, one sweep start). Returns, per key, the *positions*
/// into `indices` in their original order, so drivers can stitch results
/// back deterministically.
pub(crate) fn group_batchable(
    db: &TrajectoryDatabase,
    indices: &[usize],
) -> std::collections::BTreeMap<(usize, u32), Vec<usize>> {
    let mut groups: std::collections::BTreeMap<(usize, u32), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (pos, &idx) in indices.iter().enumerate() {
        let object = db.object(idx).expect("caller passes valid indices");
        groups.entry((object.model(), object.anchor().time())).or_default().push(pos);
    }
    groups
}

/// Default number of objects propagated per [`pipeline::ObjectBatch`].
pub const DEFAULT_BATCH_SIZE: usize = 32;

/// Tuning knobs shared by the exact engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// ε-pruning threshold: probability entries `≤ epsilon` are dropped
    /// during propagation (`0.0` = exact). The dropped mass is reported in
    /// [`EvalStats::pruned_mass`] and bounds the absolute result error.
    pub epsilon: f64,
    /// Density at which propagation vectors switch from sparse to dense
    /// (see `ust_markov::hybrid`); `≥ 1.0` forces always-sparse, `0.0`
    /// always-dense.
    pub densify_threshold: f64,
    /// Objects propagated together per batch by the object-based drivers
    /// (clamped to at least 1). Batched and per-object evaluation are
    /// bit-for-bit identical; larger batches amortize matrix-row traversals
    /// across densified vectors.
    pub batch_size: usize,
    /// Worker threads the [`crate::parallel::ShardedExecutor`] shards
    /// object batches across (clamped to at least 1; `1` runs inline). A
    /// [`QueryProcessor`] built with `num_threads > 1` owns a long-lived
    /// [`crate::parallel::WorkerPool`] of this size; the free `*_parallel`
    /// functions borrow the process-wide shared pool instead.
    pub num_threads: usize,
    /// `(model, window)` entries retained by the [`QueryProcessor`]'s
    /// backward-field cache (clamped to at least 1). Each entry holds one
    /// dense snapshot per distinct anchor time, so memory scales with
    /// `capacity × anchors × |S|`; repeated or overlapping windows served
    /// from the cache skip their backward sweeps entirely.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            epsilon: 0.0,
            densify_threshold: 0.25,
            batch_size: DEFAULT_BATCH_SIZE,
            num_threads: 1,
            cache_capacity: cache::DEFAULT_CACHE_CAPACITY,
        }
    }
}

impl EngineConfig {
    /// The exact configuration (no pruning, adaptive representation).
    pub fn exact() -> Self {
        EngineConfig::default()
    }

    /// Sets the ε-pruning threshold.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the sparse→dense switching threshold.
    pub fn with_densify_threshold(mut self, threshold: f64) -> Self {
        self.densify_threshold = threshold;
        self
    }

    /// Sets the number of objects propagated per batch.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the number of sharding worker threads.
    pub fn with_num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Sets the backward-field cache capacity (entries).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// The effective batch size (at least 1).
    pub fn effective_batch_size(&self) -> usize {
        self.batch_size.max(1)
    }

    /// The effective worker count (at least 1).
    pub fn effective_num_threads(&self) -> usize {
        self.num_threads.max(1)
    }

    /// The effective cache capacity (at least 1).
    pub fn effective_cache_capacity(&self) -> usize {
        self.cache_capacity.max(1)
    }
}

/// A pending asynchronously submitted query: the completion latch behind
/// [`QueryProcessor::submit`].
///
/// The ticket is a cheap handle to shared completion state. The submitting
/// thread is never blocked by `submit` itself; it blocks only when (and
/// if) it calls [`QueryTicket::wait`]. Dropping a ticket without awaiting
/// it is safe — the query still runs to completion on its worker (it owns
/// a snapshot of everything it touches) and the answer is discarded.
#[derive(Debug)]
pub struct QueryTicket {
    state: Arc<TicketState>,
}

#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<Result<QueryAnswer>>>,
    done: Condvar,
}

impl TicketState {
    fn new() -> TicketState {
        TicketState { slot: Mutex::new(None), done: Condvar::new() }
    }

    fn complete(&self, outcome: Result<QueryAnswer>) {
        let mut slot = self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = Some(outcome);
        drop(slot);
        self.done.notify_all();
    }
}

impl QueryTicket {
    /// True once the answer is available ([`QueryTicket::wait`] would
    /// return without blocking).
    pub fn is_ready(&self) -> bool {
        self.state.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).is_some()
    }

    /// Blocks until the submitted query has finished and returns its
    /// answer (or its error; a query that panicked on its worker yields
    /// [`QueryError::AsyncQueryPanicked`]).
    pub fn wait(self) -> Result<QueryAnswer> {
        let mut slot = self.state.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.state.done.wait(slot).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// High-level façade tying a database to the engines — the long-lived
/// service object of the crate.
///
/// The query surface is **spec-driven**: build a [`QuerySpec`] with
/// [`Query`] (predicate × decorator × window × strategy × optional object
/// subset) and hand it to one entry point —
///
/// * [`QueryProcessor::execute`] evaluates synchronously and returns the
///   [`QueryAnswer`];
/// * [`QueryProcessor::explain`] returns the planner's [`QueryPlan`]
///   (chosen strategy + cost estimates) without evaluating;
/// * [`QueryProcessor::submit`] enqueues the query on the worker pool and
///   returns a [`QueryTicket`] immediately — the async front door for
///   bursts.
///
/// Every execution routes through the batched propagation kernel and the
/// [`crate::parallel::ShardedExecutor`]: with the default configuration
/// (`num_threads == 1`) the single shard runs inline on the caller's
/// thread; with [`EngineConfig::with_num_threads`] `> 1` the processor
/// **owns a [`crate::parallel::WorkerPool`]** — the worker threads are
/// spawned once at construction, reused by every query, and joined when
/// the processor is dropped. Query-based evaluations share a
/// [`cache::BackwardFieldCache`] and a [`cache::KTimesFieldCache`] (sized
/// by [`EngineConfig::cache_capacity`], behind locks), so repeated or
/// overlapping windows skip their backward sweeps. Results are bit-for-bit
/// independent of the strategy dispatch, the batch size, the worker count
/// and the caches.
///
/// ```
/// use ust_core::prelude::*;
/// use ust_markov::{CsrMatrix, MarkovChain};
/// use ust_space::TimeSet;
///
/// // The running-example chain of the paper (Section V).
/// let chain = MarkovChain::from_csr(CsrMatrix::from_dense(&[
///     vec![0.0, 0.0, 1.0],
///     vec![0.6, 0.0, 0.4],
///     vec![0.0, 0.8, 0.2],
/// ]).unwrap()).unwrap();
/// let mut db = TrajectoryDatabase::new(chain);
/// db.insert(UncertainObject::with_single_observation(
///     7, Observation::exact(0, 3, 1).unwrap(),
/// )).unwrap();
///
/// let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
/// let processor = QueryProcessor::new(&db);
///
/// // Planned execution: the planner picks the strategy...
/// let spec = Query::exists().window(window.clone()).build().unwrap();
/// let answer = processor.execute(&spec).unwrap();
/// assert!((answer.probabilities().unwrap()[0].probability - 0.864).abs() < 1e-12);
///
/// // ...and both explicit strategies agree with it.
/// for strategy in [Strategy::ObjectBased, Strategy::QueryBased] {
///     let forced = Query::exists().window(window.clone()).strategy(strategy).build().unwrap();
///     let p = processor.execute(&forced).unwrap();
///     assert!((p.probabilities().unwrap()[0].probability - 0.864).abs() < 1e-12);
/// }
/// ```
#[derive(Debug)]
pub struct QueryProcessor<'a> {
    db: &'a TrajectoryDatabase,
    config: EngineConfig,
    /// The processor's long-lived workers; `None` runs inline
    /// (`num_threads <= 1`).
    pool: Option<Arc<crate::parallel::WorkerPool>>,
    /// PST∃Q backward fields shared by the query-based evaluations (and
    /// by asynchronous submissions), reused across queries and windows.
    cache: Arc<Mutex<cache::BackwardFieldCache>>,
    /// PSTkQ backward level fields, ditto.
    ktimes_cache: Arc<Mutex<cache::KTimesFieldCache>>,
    /// Round-robin shard assignment for submitted queries.
    submit_seq: AtomicUsize,
}

impl<'a> QueryProcessor<'a> {
    /// Creates a processor with the exact default configuration
    /// (sequential, inline).
    pub fn new(db: &'a TrajectoryDatabase) -> Self {
        QueryProcessor::with_config(db, EngineConfig::default())
    }

    /// Creates a processor with a custom configuration. With
    /// `config.num_threads > 1` this spawns the processor's worker pool —
    /// construct once and reuse, rather than per query.
    pub fn with_config(db: &'a TrajectoryDatabase, config: EngineConfig) -> Self {
        let threads = config.effective_num_threads();
        let pool = (threads > 1).then(|| Arc::new(crate::parallel::WorkerPool::new(threads)));
        let capacity = config.effective_cache_capacity();
        QueryProcessor {
            db,
            config,
            pool,
            cache: Arc::new(Mutex::new(cache::BackwardFieldCache::new(capacity))),
            ktimes_cache: Arc::new(Mutex::new(cache::KTimesFieldCache::new(capacity))),
            submit_seq: AtomicUsize::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The processor's worker pool (`None` when it evaluates inline).
    pub fn pool(&self) -> Option<&Arc<crate::parallel::WorkerPool>> {
        self.pool.as_ref()
    }

    /// An executor over the processor's own pool (or inline).
    fn executor(&self) -> crate::parallel::ShardedExecutor {
        match &self.pool {
            Some(pool) => crate::parallel::ShardedExecutor::on_pool(Arc::clone(pool)),
            None => crate::parallel::ShardedExecutor::sequential(),
        }
    }

    /// The execution context synchronous entry points borrow from `self`.
    fn exec_context(&self) -> plan::ExecContext<'_> {
        plan::ExecContext {
            db: self.db,
            config: &self.config,
            executor: self.executor(),
            cache: &self.cache,
            ktimes_cache: &self.ktimes_cache,
        }
    }

    /// Executes a declarative query spec — **the** synchronous entry
    /// point, covering every predicate × decorator × strategy combination
    /// (the legacy per-predicate methods are thin shims over it).
    ///
    /// [`Strategy::Auto`] specs are planned first (see
    /// [`QueryProcessor::explain`]); explicit strategies dispatch
    /// directly. Answers are bit-for-bit independent of worker count,
    /// batch size and cache state.
    pub fn execute(&self, spec: &QuerySpec) -> Result<QueryAnswer> {
        self.execute_with_stats(spec, &mut EvalStats::new())
    }

    /// As [`QueryProcessor::execute`], accumulating evaluation counters
    /// (cache hits, shared fields, propagation steps, …) into `stats`.
    pub fn execute_with_stats(
        &self,
        spec: &QuerySpec,
        stats: &mut EvalStats,
    ) -> Result<QueryAnswer> {
        plan::execute(&self.exec_context(), spec, stats)
    }

    /// Returns the planner's decision for a spec without executing it:
    /// the resolved strategy, per-strategy cost estimates and cache
    /// residency. The subsequent [`QueryProcessor::execute`] of the same
    /// spec follows this plan (cache state permitting — a plan is a
    /// snapshot, not a reservation).
    pub fn explain(&self, spec: &QuerySpec) -> Result<QueryPlan> {
        plan::plan(&self.exec_context(), spec)
    }

    /// Submits a query for asynchronous evaluation and returns a
    /// [`QueryTicket`] **immediately** — the async front door.
    ///
    /// The query runs as one job on the processor's worker pool (or the
    /// process-wide shared pool when the processor evaluates inline),
    /// capturing an owned snapshot of the database handle, the
    /// configuration and the shared field caches — so the ticket outlives
    /// the borrow rules: callers can submit a burst, keep inserting into
    /// their own database handle, and await the answers later.
    /// Within the job the evaluation is sequential (pool workers do not
    /// re-shard onto the pool); a burst of submissions parallelizes
    /// **across** queries instead, round-robin over the shard queues.
    /// Submitted queries share the processor's caches, so a burst over
    /// the same window sweeps its backward field once.
    pub fn submit(&self, spec: &QuerySpec) -> QueryTicket {
        let state = Arc::new(TicketState::new());
        let job_state = Arc::clone(&state);
        let db = self.db.clone();
        let config = self.config;
        let cache = Arc::clone(&self.cache);
        let ktimes_cache = Arc::clone(&self.ktimes_cache);
        let spec = spec.clone();
        let pool = match &self.pool {
            Some(pool) => Arc::clone(pool),
            None => crate::parallel::shared_pool(1),
        };
        let shard = self.submit_seq.fetch_add(1, Ordering::Relaxed);
        pool.spawn(
            shard,
            Box::new(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let ctx = plan::ExecContext {
                        db: &db,
                        config: &config,
                        executor: crate::parallel::ShardedExecutor::sequential(),
                        cache: &cache,
                        ktimes_cache: &ktimes_cache,
                    };
                    plan::execute(&ctx, &spec, &mut EvalStats::new())
                }));
                job_state.complete(outcome.unwrap_or(Err(QueryError::AsyncQueryPanicked)));
            }),
        );
        QueryTicket { state }
    }

    /// PST∃Q for every object, object-based (forward) evaluation.
    #[deprecated(note = "use Query::exists().window(…).strategy(Strategy::ObjectBased) + execute")]
    pub fn exists_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        let spec =
            Query::exists().window(window.clone()).strategy(Strategy::ObjectBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Probabilities(p) => Ok(p),
            _ => unreachable!("probabilities decorator yields probabilities"),
        }
    }

    /// PST∃Q for every object, query-based (backward) evaluation through
    /// the processor's shared field cache.
    #[deprecated(note = "use Query::exists().window(…).strategy(Strategy::QueryBased) + execute")]
    pub fn exists_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        let spec = Query::exists().window(window.clone()).strategy(Strategy::QueryBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Probabilities(p) => Ok(p),
            _ => unreachable!("probabilities decorator yields probabilities"),
        }
    }

    /// PST∀Q for every object, object-based evaluation.
    #[deprecated(note = "use Query::forall().window(…).strategy(Strategy::ObjectBased) + execute")]
    pub fn forall_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        let spec =
            Query::forall().window(window.clone()).strategy(Strategy::ObjectBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Probabilities(p) => Ok(p),
            _ => unreachable!("probabilities decorator yields probabilities"),
        }
    }

    /// PST∀Q for every object, query-based evaluation (complement windows
    /// ride the shared cache like any other window).
    #[deprecated(note = "use Query::forall().window(…).strategy(Strategy::QueryBased) + execute")]
    pub fn forall_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectProbability>> {
        let spec = Query::forall().window(window.clone()).strategy(Strategy::QueryBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Probabilities(p) => Ok(p),
            _ => unreachable!("probabilities decorator yields probabilities"),
        }
    }

    /// PSTkQ for every object, object-based (`C(t)` algorithm).
    #[deprecated(note = "use Query::ktimes(k).window(…).strategy(Strategy::ObjectBased) + execute")]
    pub fn ktimes_object_based(&self, window: &QueryWindow) -> Result<Vec<ObjectKDistribution>> {
        let spec =
            Query::ktimes(1).window(window.clone()).strategy(Strategy::ObjectBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Distributions(d) => Ok(d),
            _ => unreachable!("k-times probabilities yield distributions"),
        }
    }

    /// PSTkQ for every object, query-based evaluation through the
    /// processor's level-field cache.
    #[deprecated(note = "use Query::ktimes(k).window(…).strategy(Strategy::QueryBased) + execute")]
    pub fn ktimes_query_based(&self, window: &QueryWindow) -> Result<Vec<ObjectKDistribution>> {
        let spec =
            Query::ktimes(1).window(window.clone()).strategy(Strategy::QueryBased).build()?;
        match self.execute(&spec)? {
            QueryAnswer::Distributions(d) => Ok(d),
            _ => unreachable!("k-times probabilities yield distributions"),
        }
    }

    /// Ids of all objects whose PST∃Q probability is at least `tau`
    /// (object-based with bound-based early termination). Note the spec
    /// builder rejects `tau` outside `[0, 1]`, which the legacy signature
    /// silently accepted.
    #[deprecated(note = "use Query::exists().window(…).threshold(τ) + execute")]
    pub fn threshold_query(&self, window: &QueryWindow, tau: f64) -> Result<Vec<u64>> {
        let spec = Query::exists()
            .window(window.clone())
            .threshold(tau)
            .strategy(Strategy::ObjectBased)
            .build()?;
        match self.execute(&spec)? {
            QueryAnswer::ObjectIds(ids) => Ok(ids),
            _ => unreachable!("threshold decorator yields ids"),
        }
    }

    /// As [`QueryProcessor::threshold_query`], answered from the
    /// query-based shared-field plan through the processor's cache.
    #[deprecated(
        note = "use Query::exists().window(…).threshold(τ).strategy(Strategy::QueryBased) + \
                execute"
    )]
    pub fn threshold_query_cached(&self, window: &QueryWindow, tau: f64) -> Result<Vec<u64>> {
        let spec = Query::exists()
            .window(window.clone())
            .threshold(tau)
            .strategy(Strategy::QueryBased)
            .build()?;
        match self.execute(&spec)? {
            QueryAnswer::ObjectIds(ids) => Ok(ids),
            _ => unreachable!("threshold decorator yields ids"),
        }
    }

    /// The `k` objects most likely to intersect the window (object-based
    /// with reachability pruning).
    #[deprecated(note = "use Query::exists().window(…).top_k(k) + execute")]
    pub fn topk(
        &self,
        window: &QueryWindow,
        k: usize,
    ) -> Result<Vec<crate::ranking::RankedObject>> {
        let spec = Query::exists()
            .window(window.clone())
            .top_k(k)
            .strategy(Strategy::ObjectBased)
            .build()?;
        match self.execute(&spec)? {
            QueryAnswer::Ranked(r) => Ok(r),
            _ => unreachable!("top-k decorator yields a ranking"),
        }
    }

    /// As [`QueryProcessor::topk`], via the query-based engine and the
    /// processor's shared cache. Same ranking, bit for bit.
    #[deprecated(
        note = "use Query::exists().window(…).top_k(k).strategy(Strategy::QueryBased) + execute"
    )]
    pub fn topk_query_based(
        &self,
        window: &QueryWindow,
        k: usize,
    ) -> Result<Vec<crate::ranking::RankedObject>> {
        let spec = Query::exists()
            .window(window.clone())
            .top_k(k)
            .strategy(Strategy::QueryBased)
            .build()?;
        match self.execute(&spec)? {
            QueryAnswer::Ranked(r) => Ok(r),
            _ => unreachable!("top-k decorator yields a ranking"),
        }
    }
}
