//! The shared propagation pipeline every engine drives — **batch-first**.
//!
//! All of the paper's algorithms are one loop wearing different hats: a
//! distribution vector (or a small family of them) is pushed through the
//! chain's transition matrix one timestamp at a time, and at every *query*
//! timestamp the window states receive special treatment — mass is
//! redirected to ⊤ (PST∃Q), shifted between count levels (PSTkQ), recorded
//! as a marginal (the independence baseline) or clamped to certainty (the
//! backward query-based sweep). [`Propagator`] owns the loop once and the
//! engines reduce to thin drivers that supply the direction (forward /
//! backward), the start state and the accumulation rule applied at window
//! timestamps.
//!
//! Since PR 2 the unit of propagation is an **object batch**, not a single
//! object. The data flow is:
//!
//! ```text
//! object batch (grouped by model + anchor time)
//!   └─ ObjectBatch: one row group per object (1 row for ∃, |T▫|+1 for k)
//!        └─ CsrMatrix::step_batch: one shared row-major matrix traversal
//!             steps every live row of the batch (densified vectors reuse
//!             each streamed matrix row; sparse rows pay only their support)
//!        └─ per-object accumulators updated by the driver's window rule
//!        └─ per-group early-exit masks: a decided object drops out of the
//!             batch (bound met, mass exhausted) without stopping the sweep
//!   └─ shards: ShardedExecutor hands each long-lived WorkerPool thread
//!        its own Propagator + scratch and a contiguous slice of the
//!        batches; query-based drivers precompute shared backward fields
//!        (SharedFieldPlan) so no worker re-sweeps a field
//! ```
//!
//! Per object, the floating-point operations and their order are identical
//! to a solo sweep, so batched evaluation is bit-for-bit equal to the
//! per-object path at every batch size (property-tested in
//! `tests/proptest_engines.rs`).
//!
//! The loop invariants the pipeline enforces uniformly:
//!
//! * **Masking schedule** — the window hook fires at the anchor timestamp
//!   when it lies in `T▫` (footnotes 2/3 of the paper) and after stepping
//!   into every later `t ∈ T▫`;
//! * **ε-pruning** — with [`EngineConfig::epsilon`] `> 0`, entries `≤ ε`
//!   are dropped right after every transition and the dropped mass is
//!   accounted in [`EvalStats::pruned_mass`] (the absolute error bound);
//! * **Densification** — vectors created through [`Propagator::seed`]
//!   switch from sparse to dense at [`EngineConfig::densify_threshold`];
//! * **Early termination** — a group whose rows run empty (all worlds
//!   decided) is retired from the batch and counted in
//!   [`EvalStats::early_terminations`]; the sweep itself stops only when no
//!   group remains. Drivers with their own stopping rules (threshold and
//!   top-k bounds) retire groups via [`ObjectBatch::deactivate`] instead;
//! * **Counters** — transitions and matrix-row traversals are counted per
//!   product, and [`EvalStats::objects_evaluated`] is bumped for every
//!   group that ran to its natural end (groups a driver deactivated are the
//!   driver's outcome: a dismissal is not an evaluation).

use std::ops::ControlFlow;

use ust_markov::{CsrMatrix, PropagationVector, SparseVector, SpmvScratch};

use crate::engine::EngineConfig;
use crate::error::{QueryError, Result};
use crate::query::QueryWindow;
use crate::stats::EvalStats;

/// One moment of a forward sweep, delivered to the driver's event hook.
///
/// A single-closure event stream (rather than separate window/decision
/// callbacks) lets a driver keep its accumulator state in plain captured
/// variables shared by both rules.
#[derive(Debug)]
pub enum ForwardEvent<'r> {
    /// The sweep reached a query timestamp: apply the accumulation rule
    /// (mutably) to the propagated rows.
    Window {
        /// The propagated vectors, freshly stepped into `t`.
        rows: &'r mut [PropagationVector],
        /// The query timestamp (`t ∈ T▫`).
        t: u32,
    },
    /// A timestamp is fully processed (stepped, window rule applied,
    /// pruned). Drivers with their own stopping rules (threshold / top-k
    /// bounds) decide here; drivers with non-window per-step rules
    /// (observation fusion in the multi-observation engine) mutate here;
    /// plain sweeps just continue.
    StepEnd {
        /// The propagated vectors after the timestamp's processing.
        rows: &'r mut [PropagationVector],
        /// The processed timestamp.
        t: u32,
    },
}

/// Which hook of the masking schedule a batch event belongs to.
///
/// The batched analogue of the two [`ForwardEvent`] variants: `Window`
/// fires at query timestamps (apply the accumulation rule to every live
/// group), `StepEnd` after every timestamp's processing (bound checks,
/// group retirement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPhase {
    /// The sweep reached a query timestamp `t ∈ T▫`.
    Window,
    /// A timestamp is fully processed (stepped, window rule applied,
    /// pruned).
    StepEnd,
}

/// A batch of objects propagating in lockstep: `group_size` consecutive
/// rows per object (1 for the ∃/∀ drivers, `|T▫| + 1` count levels for
/// PSTkQ) plus a per-object activity mask.
///
/// The pipeline steps only rows of active groups, retires groups whose
/// mass runs out, and stops the sweep when none remain. Drivers retire
/// decided objects early through [`ObjectBatch::deactivate`] — the decided
/// object drops out of the shared traversal without stopping the sweep for
/// the rest of the batch.
#[derive(Debug)]
pub struct ObjectBatch<'r> {
    rows: &'r mut [PropagationVector],
    group_size: usize,
    /// Per group: still propagating.
    active: Vec<bool>,
    /// Per group: retired by the pipeline because its mass ran out (counts
    /// as evaluated, unlike a driver deactivation).
    exhausted: Vec<bool>,
}

impl<'r> ObjectBatch<'r> {
    /// Wraps `rows` as a batch of `rows.len() / group_size` objects.
    ///
    /// Fails when `group_size` is zero or does not divide the row count.
    pub fn new(rows: &'r mut [PropagationVector], group_size: usize) -> Result<Self> {
        if group_size == 0 || !rows.len().is_multiple_of(group_size) {
            return Err(QueryError::MalformedBatch { rows: rows.len(), group_size });
        }
        let groups = rows.len() / group_size;
        Ok(ObjectBatch {
            rows,
            group_size,
            active: vec![true; groups],
            exhausted: vec![false; groups],
        })
    }

    /// Number of object groups in the batch.
    pub fn num_groups(&self) -> usize {
        self.active.len()
    }

    /// Rows per object group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// All rows, in group order.
    pub fn rows(&self) -> &[PropagationVector] {
        self.rows
    }

    /// All rows, mutably.
    pub fn rows_mut(&mut self) -> &mut [PropagationVector] {
        self.rows
    }

    /// The rows of group `g`.
    pub fn group(&self, g: usize) -> &[PropagationVector] {
        &self.rows[g * self.group_size..(g + 1) * self.group_size]
    }

    /// The rows of group `g`, mutably.
    pub fn group_mut(&mut self, g: usize) -> &mut [PropagationVector] {
        &mut self.rows[g * self.group_size..(g + 1) * self.group_size]
    }

    /// True while group `g` still participates in the sweep.
    pub fn is_active(&self, g: usize) -> bool {
        self.active[g]
    }

    /// Retires group `g` from the sweep — the driver decided its object
    /// (bound met, dismissed, …). The pipeline will not count it as
    /// evaluated; recording the outcome is the driver's job.
    pub fn deactivate(&mut self, g: usize) {
        self.active[g] = false;
    }

    /// Number of groups still propagating.
    pub fn active_groups(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Retires active groups whose rows all ran empty (every world
    /// decided); returns how many were retired this call.
    fn retire_exhausted(&mut self) -> u64 {
        let mut retired = 0;
        for g in 0..self.active.len() {
            if self.active[g] && self.group(g).iter().all(|row| row.nnz() == 0) {
                self.active[g] = false;
                self.exhausted[g] = true;
                retired += 1;
            }
        }
        retired
    }

    /// Per-row activity for the batched kernel; `None` when every group is
    /// live (the kernel's "all active" fast path).
    fn row_activity(&self, buf: &mut Vec<bool>) -> bool {
        if self.active.iter().all(|a| *a) {
            return false;
        }
        buf.clear();
        for &a in &self.active {
            for _ in 0..self.group_size {
                buf.push(a);
            }
        }
        true
    }

    /// Groups that completed evaluation: still live at the natural end of
    /// the sweep, or retired because their mass ran out. Driver-deactivated
    /// groups are excluded — their outcome is the driver's to account.
    fn evaluated_groups(&self) -> u64 {
        self.active.iter().zip(&self.exhausted).filter(|(a, e)| **a || **e).count() as u64
    }
}

/// The shared propagation core: owns the step loop, the masking schedule,
/// ε-pruning, the sparse↔dense policy and all [`EvalStats`] accounting.
///
/// One `Propagator` is typically created per evaluation batch (or per
/// [`crate::parallel::WorkerPool`] shard job) so the sparse-product
/// scratch space is allocated once and reused across objects.
#[derive(Debug)]
pub struct Propagator<'s> {
    config: EngineConfig,
    stats: &'s mut EvalStats,
    scratch: SpmvScratch,
    row_active: Vec<bool>,
}

impl<'s> Propagator<'s> {
    /// A pipeline accumulating into `stats` under `config`.
    pub fn new(config: &EngineConfig, stats: &'s mut EvalStats) -> Self {
        Propagator { config: *config, stats, scratch: SpmvScratch::new(), row_active: Vec::new() }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The statistics sink (drivers use it for outcome-specific counters
    /// such as `objects_pruned`).
    pub fn stats(&mut self) -> &mut EvalStats {
        self.stats
    }

    /// Wraps a start distribution in a hybrid vector honoring the
    /// configured densification threshold.
    pub fn seed(&self, start: SparseVector) -> PropagationVector {
        PropagationVector::from_sparse(start).with_densify_threshold(self.config.densify_threshold)
    }

    /// Forward sweep of a multi-object batch from `start_time` to
    /// `window.t_end()` — the batch-first core every OB driver runs on.
    ///
    /// All groups must share `start_time` (one anchor time per batch; the
    /// drivers group objects accordingly). `on_event` fires with
    /// [`BatchPhase::Window`] at every query timestamp (including
    /// `start_time` itself when it lies in `T▫`) and with
    /// [`BatchPhase::StepEnd`] after every processed timestamp; the driver
    /// applies its accumulation rule to each active group and may retire
    /// decided groups via [`ObjectBatch::deactivate`]. Returning
    /// [`ControlFlow::Break`] aborts the whole sweep (single-object drivers
    /// use it for their bound decisions); the returned timestamp is where
    /// the sweep broke, `None` at the natural end.
    pub fn forward_batch(
        &mut self,
        matrix: &CsrMatrix,
        batch: &mut ObjectBatch<'_>,
        start_time: u32,
        window: &QueryWindow,
        on_event: impl FnMut(BatchPhase, &mut ObjectBatch<'_>, u32) -> Result<ControlFlow<()>>,
    ) -> Result<Option<u32>> {
        let end_time = window.t_end();
        self.forward_core(matrix, batch, start_time, end_time, Some(window), on_event)
    }

    /// Forward sweep from `start_time` to `window.t_end()`.
    ///
    /// `rows` is the propagated state of **one object** — a single vector
    /// for the ∃ engines, the `|T▫| + 1` count levels of the `C(t)`
    /// algorithm for PSTkQ. At every query timestamp (including
    /// `start_time` itself when it lies in `T▫`) `on_window` applies the
    /// driver's accumulation rule.
    pub fn forward(
        &mut self,
        matrix: &CsrMatrix,
        rows: &mut [PropagationVector],
        start_time: u32,
        window: &QueryWindow,
        mut on_window: impl FnMut(&mut [PropagationVector], u32) -> Result<()>,
    ) -> Result<()> {
        self.forward_until(matrix, rows, start_time, window, |event| match event {
            ForwardEvent::Window { rows, t } => {
                on_window(rows, t)?;
                Ok(ControlFlow::Continue(()))
            }
            ForwardEvent::StepEnd { .. } => Ok(ControlFlow::Continue(())),
        })
        .map(|_| ())
    }

    /// As [`Propagator::forward`], delivering the full [`ForwardEvent`]
    /// stream: returning [`ControlFlow::Break`] from any event stops the
    /// sweep.
    ///
    /// Returns the timestamp at which the driver broke, or `None` when the
    /// sweep ran to its natural end (in which case the pipeline counts the
    /// object as evaluated). Used by the single-object threshold and top-k
    /// drivers, whose bound-based stopping rules are evaluation outcomes of
    /// their own — they update [`EvalStats`] through [`Propagator::stats`].
    pub fn forward_until(
        &mut self,
        matrix: &CsrMatrix,
        rows: &mut [PropagationVector],
        start_time: u32,
        window: &QueryWindow,
        on_event: impl FnMut(ForwardEvent<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<Option<u32>> {
        let end_time = window.t_end();
        self.forward_to(matrix, rows, start_time, end_time, window, on_event)
    }

    /// As [`Propagator::forward_until`] with an explicit end of sweep,
    /// which may lie beyond `window.t_end()` — the multi-observation
    /// engine keeps propagating to its last observation so later evidence
    /// still conditions the result.
    pub fn forward_to(
        &mut self,
        matrix: &CsrMatrix,
        rows: &mut [PropagationVector],
        start_time: u32,
        end_time: u32,
        window: &QueryWindow,
        on_event: impl FnMut(ForwardEvent<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<Option<u32>> {
        self.forward_rows(matrix, rows, start_time, end_time, Some(window), on_event)
    }

    /// Forward sweep with **no window schedule**: only
    /// [`ForwardEvent::StepEnd`] fires, after every processed timestamp
    /// (including `start_time`). This is the observation-driven schedule —
    /// the smoothing α-recursion fuses evidence at its own timestamps
    /// rather than a query window's.
    pub fn forward_steps(
        &mut self,
        matrix: &CsrMatrix,
        rows: &mut [PropagationVector],
        start_time: u32,
        end_time: u32,
        on_event: impl FnMut(ForwardEvent<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<Option<u32>> {
        self.forward_rows(matrix, rows, start_time, end_time, None, on_event)
    }

    /// The single-object adapter: one group holding all `rows`, driven
    /// through the batch core with [`ForwardEvent`] translation.
    fn forward_rows(
        &mut self,
        matrix: &CsrMatrix,
        rows: &mut [PropagationVector],
        start_time: u32,
        end_time: u32,
        window: Option<&QueryWindow>,
        mut on_event: impl FnMut(ForwardEvent<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<Option<u32>> {
        let group_size = rows.len().max(1);
        let mut batch = ObjectBatch::new(rows, group_size)?;
        self.forward_core(matrix, &mut batch, start_time, end_time, window, |phase, batch, t| {
            on_event(match phase {
                BatchPhase::Window => ForwardEvent::Window { rows: batch.rows_mut(), t },
                BatchPhase::StepEnd => ForwardEvent::StepEnd { rows: batch.rows_mut(), t },
            })
        })
    }

    /// The one step loop behind every forward API.
    fn forward_core(
        &mut self,
        matrix: &CsrMatrix,
        batch: &mut ObjectBatch<'_>,
        start_time: u32,
        end_time: u32,
        window: Option<&QueryWindow>,
        mut on_event: impl FnMut(BatchPhase, &mut ObjectBatch<'_>, u32) -> Result<ControlFlow<()>>,
    ) -> Result<Option<u32>> {
        if window.is_some_and(|w| w.time_in_window(start_time))
            && on_event(BatchPhase::Window, batch, start_time)?.is_break()
        {
            return Ok(Some(start_time));
        }
        if on_event(BatchPhase::StepEnd, batch, start_time)?.is_break() {
            return Ok(Some(start_time));
        }
        for t in start_time..end_time {
            // Retire groups whose worlds are all decided (the paper's
            // inherent true-hit stop), then stop once none remain.
            self.stats.early_terminations += batch.retire_exhausted();
            if batch.active_groups() == 0 {
                break;
            }
            let masked = batch.row_activity(&mut self.row_active);
            let activity: &[bool] = if masked { &self.row_active } else { &[] };
            let report = matrix.step_batch_with_mode(
                batch.rows,
                activity,
                self.config.batching,
                &mut self.scratch,
            )?;
            self.stats.transitions += report.vectors_stepped;
            self.stats.rows_traversed += report.rows_traversed;
            self.stats.entries_touched += report.entries_touched;
            if self.config.epsilon > 0.0 {
                for g in 0..batch.num_groups() {
                    if !batch.is_active(g) {
                        continue;
                    }
                    for row in batch.group_mut(g) {
                        self.stats.pruned_mass += row.prune(self.config.epsilon);
                    }
                }
            }
            if window.is_some_and(|w| w.time_in_window(t + 1))
                && on_event(BatchPhase::Window, batch, t + 1)?.is_break()
            {
                return Ok(Some(t + 1));
            }
            if on_event(BatchPhase::StepEnd, batch, t + 1)?.is_break() {
                return Ok(Some(t + 1));
            }
        }
        // Exhaustion at the final timestamp is a natural end, not an early
        // termination — groups still flagged active are simply done.
        self.stats.objects_evaluated += batch.evaluated_groups();
        Ok(None)
    }

    /// Backward sweep from `window.t_end()` down to the earliest time in
    /// `snapshot_times`, for the query-based engines.
    ///
    /// The driver supplies the state (a hybrid vector for PST∃Q, the level
    /// family for PSTkQ) and three hooks: `apply_window` — the transposed
    /// `M+` surgery, applied *before* stepping out of a query timestamp;
    /// `step` — one backward transition, returning the number of products
    /// performed (accounted as [`EvalStats::backward_steps`]);
    /// `snapshot` — called at `window.t_end()` and at every requested time
    /// reached by the sweep, in descending time order.
    pub fn backward<S>(
        &mut self,
        state: &mut S,
        window: &QueryWindow,
        snapshot_times: &[u32],
        apply_window: impl FnMut(&mut S) -> Result<()>,
        step: impl FnMut(&mut S, &mut SpmvScratch) -> Result<u64>,
        snapshot: impl FnMut(&S, u32),
    ) -> Result<()> {
        self.backward_from(
            state,
            window.t_end(),
            window,
            snapshot_times,
            apply_window,
            step,
            snapshot,
        )
    }

    /// As [`Propagator::backward`], resuming a sweep whose state is already
    /// at `resume_time` (i.e. `state` holds `h_{resume_time}`).
    ///
    /// This is the suffix-sharing primitive behind
    /// [`crate::engine::cache::BackwardFieldCache`]: a cached sweep that
    /// stopped at its earliest snapshot can be extended further down to new
    /// anchor times without recomputing the `(resume_time, t_end]` suffix.
    /// Snapshot times above `resume_time` are ignored — they belong to the
    /// already-computed part of the sweep.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_from<S>(
        &mut self,
        state: &mut S,
        resume_time: u32,
        window: &QueryWindow,
        snapshot_times: &[u32],
        mut apply_window: impl FnMut(&mut S) -> Result<()>,
        mut step: impl FnMut(&mut S, &mut SpmvScratch) -> Result<u64>,
        mut snapshot: impl FnMut(&S, u32),
    ) -> Result<()> {
        let t_min = snapshot_times
            .iter()
            .copied()
            .filter(|&t| t <= resume_time)
            .min()
            .unwrap_or(resume_time);
        let mut wanted: Vec<u32> =
            snapshot_times.iter().copied().filter(|&t| t <= resume_time).collect();
        wanted.sort_unstable();
        wanted.dedup();

        if wanted.binary_search(&resume_time).is_ok() {
            snapshot(state, resume_time);
        }
        let mut t = resume_time;
        while t > t_min {
            // Stepping from t to t-1: the step's target time is t.
            if window.time_in_window(t) {
                apply_window(state)?;
            }
            self.stats.backward_steps += step(state, &mut self.scratch)?;
            t -= 1;
            if wanted.binary_search(&t).is_ok() {
                snapshot(state, t);
            }
        }
        Ok(())
    }

    /// Drives an arbitrary per-step state through the masking schedule —
    /// the degenerate "one world at a time" pipeline of the sampling
    /// baseline.
    ///
    /// `advance` moves the state to the given target timestamp (counted as
    /// a transition; returning [`ControlFlow::Break`] abandons the walk,
    /// e.g. when an observation weight hits zero); `on_window` fires at
    /// every query timestamp, including `start_time`. The walk runs to
    /// `end_time`, which may exceed `window.t_end()` when later
    /// observations must still be conditioned on.
    pub fn walk<S>(
        &mut self,
        start_time: u32,
        end_time: u32,
        window: &QueryWindow,
        state: &mut S,
        mut advance: impl FnMut(&mut S, u32) -> Result<ControlFlow<()>>,
        mut on_window: impl FnMut(&mut S, u32) -> Result<()>,
    ) -> Result<()> {
        if window.time_in_window(start_time) {
            on_window(state, start_time)?;
        }
        for t in start_time..end_time {
            let flow = advance(state, t + 1)?;
            self.stats.transitions += 1;
            if flow.is_break() {
                return Ok(());
            }
            if window.time_in_window(t + 1) {
                on_window(state, t + 1)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::UncertainObject;
    use crate::observation::Observation;
    use ust_markov::{CsrMatrix, MarkovChain};
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn forward_applies_schedule_and_counts() {
        // Re-derives the paper's 0.864 directly through the pipeline.
        let chain = paper_chain();
        let window = paper_window();
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap());
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut rows = [pipeline.seed(object.anchor().distribution().clone())];
        let mut hit = 0.0;
        pipeline
            .forward(chain.matrix(), &mut rows, 0, &window, |rows, _| {
                hit += rows[0].extract_masked(window.states());
                Ok(())
            })
            .unwrap();
        assert!((hit - 0.864).abs() < 1e-12);
        assert_eq!(stats.transitions, 3);
        assert_eq!(stats.objects_evaluated, 1);
        assert!(stats.rows_traversed > 0);
    }

    #[test]
    fn forward_until_breaks_without_counting_evaluation() {
        let chain = paper_chain();
        let window = paper_window();
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut rows = [pipeline.seed(SparseVector::from_pairs(3, [(1usize, 1.0)]).unwrap())];
        let decided = pipeline
            .forward_until(chain.matrix(), &mut rows, 0, &window, |event| match event {
                ForwardEvent::StepEnd { t, .. } if t >= 1 => Ok(ControlFlow::Break(())),
                _ => Ok(ControlFlow::Continue(())),
            })
            .unwrap();
        assert_eq!(decided, Some(1));
        assert_eq!(stats.transitions, 1);
        assert_eq!(stats.objects_evaluated, 0, "broken sweeps are the driver's outcome");
    }

    #[test]
    fn batch_retires_decided_groups_without_stopping_the_sweep() {
        // Two objects: the driver dismisses the first at t=1; the second
        // propagates to the end and is counted as evaluated.
        let chain = paper_chain();
        let window = paper_window();
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut rows = vec![
            pipeline.seed(SparseVector::unit(3, 1).unwrap()),
            pipeline.seed(SparseVector::unit(3, 2).unwrap()),
        ];
        let mut batch = ObjectBatch::new(&mut rows, 1).unwrap();
        let mut hits = [0.0f64; 2];
        let end = pipeline
            .forward_batch(chain.matrix(), &mut batch, 0, &window, |phase, batch, t| {
                match phase {
                    BatchPhase::Window => {
                        for (g, hit) in hits.iter_mut().enumerate() {
                            if batch.is_active(g) {
                                *hit += batch.group_mut(g)[0].extract_masked(window.states());
                            }
                        }
                    }
                    BatchPhase::StepEnd => {
                        if t == 1 && batch.is_active(0) {
                            batch.deactivate(0);
                        }
                    }
                }
                Ok(ControlFlow::Continue(()))
            })
            .unwrap();
        assert_eq!(end, None);
        assert_eq!(stats.objects_evaluated, 1, "the dismissed group is not an evaluation");
        // Group 1 from s3: hits 0.8 at t=2, then 0.2·0.8 = 0.16 at t=3.
        assert!((hits[1] - 0.928).abs() < 1e-12);
        // Group 0 was dismissed after one step: no window mass collected.
        assert_eq!(hits[0], 0.0);
        // Transitions: group 0 stepped once, group 1 three times.
        assert_eq!(stats.transitions, 4);
    }

    #[test]
    fn batch_exhausted_groups_count_as_early_terminations() {
        // A window covering the whole space at t=1 empties every group's
        // vector; both groups retire, both count as evaluated.
        let chain = paper_chain();
        let window = QueryWindow::from_states(3, [0usize, 1, 2], TimeSet::new([1, 9])).unwrap();
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut rows = vec![
            pipeline.seed(SparseVector::unit(3, 0).unwrap()),
            pipeline.seed(SparseVector::unit(3, 1).unwrap()),
        ];
        let mut batch = ObjectBatch::new(&mut rows, 1).unwrap();
        let mut hit = 0.0;
        pipeline
            .forward_batch(chain.matrix(), &mut batch, 0, &window, |phase, batch, _| {
                if phase == BatchPhase::Window {
                    for g in 0..batch.num_groups() {
                        hit += batch.group_mut(g)[0].extract_masked(window.states());
                    }
                }
                Ok(ControlFlow::Continue(()))
            })
            .unwrap();
        assert!((hit - 2.0).abs() < 1e-12);
        assert_eq!(stats.early_terminations, 2);
        assert_eq!(stats.objects_evaluated, 2);
        assert!(stats.transitions < 18, "the sweep must stop after t=1");
    }

    #[test]
    fn malformed_batches_are_rejected() {
        let mut rows = vec![
            PropagationVector::from_sparse(SparseVector::zeros(3)),
            PropagationVector::from_sparse(SparseVector::zeros(3)),
            PropagationVector::from_sparse(SparseVector::zeros(3)),
        ];
        assert!(matches!(
            ObjectBatch::new(&mut rows, 2),
            Err(QueryError::MalformedBatch { rows: 3, group_size: 2 })
        ));
        assert!(matches!(ObjectBatch::new(&mut rows, 0), Err(QueryError::MalformedBatch { .. })));
        let batch = ObjectBatch::new(&mut rows, 3).unwrap();
        assert_eq!(batch.num_groups(), 1);
        assert_eq!(batch.group_size(), 3);
    }

    #[test]
    fn forward_steps_fires_no_window_events() {
        // The observation-driven schedule: StepEnd at every timestamp,
        // never a Window event.
        let chain = paper_chain();
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut rows = [pipeline.seed(SparseVector::unit(3, 1).unwrap())];
        let mut steps = Vec::new();
        pipeline
            .forward_steps(chain.matrix(), &mut rows, 0, 4, |event| match event {
                ForwardEvent::StepEnd { t, .. } => {
                    steps.push(t);
                    Ok(ControlFlow::Continue(()))
                }
                ForwardEvent::Window { .. } => panic!("no window schedule"),
            })
            .unwrap();
        assert_eq!(steps, vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.transitions, 4);
    }

    #[test]
    fn backward_snapshots_only_requested_times() {
        let chain = paper_chain();
        let window = paper_window();
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut h = pipeline.seed(SparseVector::zeros(3));
        let mut seen = Vec::new();
        let transposed = chain.transposed();
        pipeline
            .backward(
                &mut h,
                &window,
                &[0, 2],
                |h| {
                    let _ = h.extract_masked(window.states());
                    let ones =
                        SparseVector::from_pairs(3, window.states().iter().map(|s| (s, 1.0)))?;
                    h.add_sparse(&ones)?;
                    Ok(())
                },
                |h, scratch| {
                    h.step(transposed, scratch)?;
                    Ok(1)
                },
                |_, t| seen.push(t),
            )
            .unwrap();
        assert_eq!(seen, vec![2, 0]);
        assert_eq!(stats.backward_steps, 3);
    }

    #[test]
    fn backward_from_resumes_a_suffix_sweep() {
        // Running t_end → 1 in one sweep must equal t_end → 2 followed by a
        // resumed 2 → 1 sweep, bit for bit.
        let chain = paper_chain();
        let window = paper_window();
        let transposed = chain.transposed();
        let run = |segments: &[(u32, Vec<u32>)]| {
            let mut stats = EvalStats::new();
            let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
            let mut h = pipeline.seed(SparseVector::zeros(3));
            let mut snaps = Vec::new();
            for (resume, wanted) in segments {
                pipeline
                    .backward_from(
                        &mut h,
                        *resume,
                        &window,
                        wanted,
                        |h| {
                            let _ = h.extract_masked(window.states());
                            let ones = SparseVector::from_pairs(
                                3,
                                window.states().iter().map(|s| (s, 1.0)),
                            )?;
                            h.add_sparse(&ones)?;
                            Ok(())
                        },
                        |h, scratch| {
                            h.step(transposed, scratch)?;
                            Ok(1)
                        },
                        |h, t| snaps.push((t, h.to_dense())),
                    )
                    .unwrap();
            }
            snaps
        };
        let full = run(&[(3, vec![1, 2])]);
        let split = run(&[(3, vec![2]), (2, vec![1])]);
        assert_eq!(full.len(), 2);
        // The split run snapshots t=2 twice (once as the end of the first
        // segment, once as the resume point of the second).
        let split: Vec<_> = split
            .iter()
            .filter(|(t, _)| *t == 1)
            .chain(split.iter().filter(|(t, _)| *t == 2).take(1))
            .collect();
        for (t, h) in &full {
            let other = split.iter().find(|(st, _)| st == t).unwrap();
            for s in 0..3 {
                assert_eq!(h.get(s).to_bits(), other.1.get(s).to_bits(), "t={t}, s={s}");
            }
        }
    }

    #[test]
    fn walk_fires_window_hook_on_schedule() {
        let window = paper_window();
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut times = Vec::new();
        let mut t_now = 0u32;
        pipeline
            .walk(
                0,
                5,
                &window,
                &mut t_now,
                |state, t| {
                    *state = t;
                    Ok(ControlFlow::Continue(()))
                },
                |_, t| {
                    times.push(t);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(times, vec![2, 3], "window times of T▫ = [2, 3]");
        assert_eq!(stats.transitions, 5);
        assert_eq!(t_now, 5);
    }
}
