//! The shared propagation pipeline every engine drives.
//!
//! All of the paper's algorithms are one loop wearing different hats: a
//! distribution vector (or a small family of them) is pushed through the
//! chain's transition matrix one timestamp at a time, and at every *query*
//! timestamp the window states receive special treatment — mass is
//! redirected to ⊤ (PST∃Q), shifted between count levels (PSTkQ), recorded
//! as a marginal (the independence baseline) or clamped to certainty (the
//! backward query-based sweep). Before this module existed, each engine
//! hand-rolled that loop together with the ε-pruning, the sparse↔dense
//! densification policy and the [`EvalStats`] bookkeeping; now
//! [`Propagator`] owns the loop once and the engines reduce to thin drivers
//! that supply the direction (forward / backward), the start state and the
//! accumulation rule applied at window timestamps.
//!
//! The loop invariants the pipeline enforces uniformly:
//!
//! * **Masking schedule** — the window hook fires at the anchor timestamp
//!   when it lies in `T▫` (footnotes 2/3 of the paper) and after stepping
//!   into every later `t ∈ T▫`;
//! * **ε-pruning** — with [`EngineConfig::epsilon`] `> 0`, entries `≤ ε`
//!   are dropped right after every transition and the dropped mass is
//!   accounted in [`EvalStats::pruned_mass`] (the absolute error bound);
//! * **Densification** — vectors created through [`Propagator::seed`]
//!   switch from sparse to dense at [`EngineConfig::densify_threshold`];
//! * **Early termination** — a forward sweep whose vectors run empty (all
//!   worlds decided) stops and counts [`EvalStats::early_terminations`];
//!   drivers with their own stopping rules (threshold and top-k bounds)
//!   break via [`Propagator::forward_until`]'s decision hook instead;
//! * **Counters** — transitions / backward steps are counted per product,
//!   and [`EvalStats::objects_evaluated`] is bumped for every forward sweep
//!   that ran to its natural end (drivers that break early account for
//!   their outcome themselves: a dismissal is not an evaluation).

use std::ops::ControlFlow;

use ust_markov::{CsrMatrix, PropagationVector, SparseVector, SpmvScratch};

use crate::engine::EngineConfig;
use crate::error::Result;
use crate::query::QueryWindow;
use crate::stats::EvalStats;

/// One moment of a forward sweep, delivered to the driver's event hook.
///
/// A single-closure event stream (rather than separate window/decision
/// callbacks) lets a driver keep its accumulator state in plain captured
/// variables shared by both rules.
#[derive(Debug)]
pub enum ForwardEvent<'r> {
    /// The sweep reached a query timestamp: apply the accumulation rule
    /// (mutably) to the propagated rows.
    Window {
        /// The propagated vectors, freshly stepped into `t`.
        rows: &'r mut [PropagationVector],
        /// The query timestamp (`t ∈ T▫`).
        t: u32,
    },
    /// A timestamp is fully processed (stepped, window rule applied,
    /// pruned). Drivers with their own stopping rules (threshold / top-k
    /// bounds) decide here; drivers with non-window per-step rules
    /// (observation fusion in the multi-observation engine) mutate here;
    /// plain sweeps just continue.
    StepEnd {
        /// The propagated vectors after the timestamp's processing.
        rows: &'r mut [PropagationVector],
        /// The processed timestamp.
        t: u32,
    },
}

/// The shared propagation core: owns the step loop, the masking schedule,
/// ε-pruning, the sparse↔dense policy and all [`EvalStats`] accounting.
///
/// One `Propagator` is typically created per evaluation batch (or per
/// worker thread) so the sparse-product scratch space is allocated once and
/// reused across objects.
#[derive(Debug)]
pub struct Propagator<'s> {
    config: EngineConfig,
    stats: &'s mut EvalStats,
    scratch: SpmvScratch,
}

impl<'s> Propagator<'s> {
    /// A pipeline accumulating into `stats` under `config`.
    pub fn new(config: &EngineConfig, stats: &'s mut EvalStats) -> Self {
        Propagator { config: *config, stats, scratch: SpmvScratch::new() }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The statistics sink (drivers use it for outcome-specific counters
    /// such as `objects_pruned`).
    pub fn stats(&mut self) -> &mut EvalStats {
        self.stats
    }

    /// Wraps a start distribution in a hybrid vector honoring the
    /// configured densification threshold.
    pub fn seed(&self, start: SparseVector) -> PropagationVector {
        PropagationVector::from_sparse(start).with_densify_threshold(self.config.densify_threshold)
    }

    /// Forward sweep from `start_time` to `window.t_end()`.
    ///
    /// `rows` is the propagated state — one vector for the ∃ engines, the
    /// `|T▫| + 1` count levels of the `C(t)` algorithm for PSTkQ. At every
    /// query timestamp (including `start_time` itself when it lies in `T▫`)
    /// `on_window` applies the driver's accumulation rule.
    pub fn forward(
        &mut self,
        matrix: &CsrMatrix,
        rows: &mut [PropagationVector],
        start_time: u32,
        window: &QueryWindow,
        mut on_window: impl FnMut(&mut [PropagationVector], u32) -> Result<()>,
    ) -> Result<()> {
        self.forward_until(matrix, rows, start_time, window, |event| match event {
            ForwardEvent::Window { rows, t } => {
                on_window(rows, t)?;
                Ok(ControlFlow::Continue(()))
            }
            ForwardEvent::StepEnd { .. } => Ok(ControlFlow::Continue(())),
        })
        .map(|_| ())
    }

    /// As [`Propagator::forward`], delivering the full [`ForwardEvent`]
    /// stream: returning [`ControlFlow::Break`] from any event stops the
    /// sweep.
    ///
    /// Returns the timestamp at which the driver broke, or `None` when the
    /// sweep ran to its natural end (in which case the pipeline counts the
    /// object as evaluated). Used by the threshold and top-k drivers, whose
    /// bound-based stopping rules are evaluation outcomes of their own —
    /// they update [`EvalStats`] through [`Propagator::stats`].
    pub fn forward_until(
        &mut self,
        matrix: &CsrMatrix,
        rows: &mut [PropagationVector],
        start_time: u32,
        window: &QueryWindow,
        on_event: impl FnMut(ForwardEvent<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<Option<u32>> {
        let end_time = window.t_end();
        self.forward_to(matrix, rows, start_time, end_time, window, on_event)
    }

    /// As [`Propagator::forward_until`] with an explicit end of sweep,
    /// which may lie beyond `window.t_end()` — the multi-observation
    /// engine keeps propagating to its last observation so later evidence
    /// still conditions the result.
    pub fn forward_to(
        &mut self,
        matrix: &CsrMatrix,
        rows: &mut [PropagationVector],
        start_time: u32,
        end_time: u32,
        window: &QueryWindow,
        mut on_event: impl FnMut(ForwardEvent<'_>) -> Result<ControlFlow<()>>,
    ) -> Result<Option<u32>> {
        if window.time_in_window(start_time)
            && on_event(ForwardEvent::Window { rows, t: start_time })?.is_break()
        {
            return Ok(Some(start_time));
        }
        if on_event(ForwardEvent::StepEnd { rows, t: start_time })?.is_break() {
            return Ok(Some(start_time));
        }
        for t in start_time..end_time {
            if rows.iter().all(|row| row.nnz() == 0) {
                // All worlds decided (the paper's inherent true-hit stop).
                self.stats.early_terminations += 1;
                break;
            }
            for row in rows.iter_mut() {
                if row.nnz() == 0 {
                    continue;
                }
                row.step(matrix, &mut self.scratch)?;
                self.stats.transitions += 1;
                if self.config.epsilon > 0.0 {
                    self.stats.pruned_mass += row.prune(self.config.epsilon);
                }
            }
            if window.time_in_window(t + 1)
                && on_event(ForwardEvent::Window { rows, t: t + 1 })?.is_break()
            {
                return Ok(Some(t + 1));
            }
            if on_event(ForwardEvent::StepEnd { rows, t: t + 1 })?.is_break() {
                return Ok(Some(t + 1));
            }
        }
        self.stats.objects_evaluated += 1;
        Ok(None)
    }

    /// Backward sweep from `window.t_end()` down to the earliest time in
    /// `snapshot_times`, for the query-based engines.
    ///
    /// The driver supplies the state (a hybrid vector for PST∃Q, the level
    /// family for PSTkQ) and three hooks: `apply_window` — the transposed
    /// `M+` surgery, applied *before* stepping out of a query timestamp;
    /// `step` — one backward transition, returning the number of products
    /// performed (accounted as [`EvalStats::backward_steps`]);
    /// `snapshot` — called at `window.t_end()` and at every requested time
    /// reached by the sweep, in descending time order.
    pub fn backward<S>(
        &mut self,
        state: &mut S,
        window: &QueryWindow,
        snapshot_times: &[u32],
        mut apply_window: impl FnMut(&mut S) -> Result<()>,
        mut step: impl FnMut(&mut S, &mut SpmvScratch) -> Result<u64>,
        mut snapshot: impl FnMut(&S, u32),
    ) -> Result<()> {
        let t_end = window.t_end();
        let t_min = snapshot_times.iter().copied().min().unwrap_or(t_end);
        let mut wanted: Vec<u32> = snapshot_times.to_vec();
        wanted.sort_unstable();
        wanted.dedup();

        if wanted.binary_search(&t_end).is_ok() {
            snapshot(state, t_end);
        }
        let mut t = t_end;
        while t > t_min {
            // Stepping from t to t-1: the step's target time is t.
            if window.time_in_window(t) {
                apply_window(state)?;
            }
            self.stats.backward_steps += step(state, &mut self.scratch)?;
            t -= 1;
            if wanted.binary_search(&t).is_ok() {
                snapshot(state, t);
            }
        }
        Ok(())
    }

    /// Drives an arbitrary per-step state through the masking schedule —
    /// the degenerate "one world at a time" pipeline of the sampling
    /// baseline.
    ///
    /// `advance` moves the state to the given target timestamp (counted as
    /// a transition; returning [`ControlFlow::Break`] abandons the walk,
    /// e.g. when an observation weight hits zero); `on_window` fires at
    /// every query timestamp, including `start_time`. The walk runs to
    /// `end_time`, which may exceed `window.t_end()` when later
    /// observations must still be conditioned on.
    pub fn walk<S>(
        &mut self,
        start_time: u32,
        end_time: u32,
        window: &QueryWindow,
        state: &mut S,
        mut advance: impl FnMut(&mut S, u32) -> Result<ControlFlow<()>>,
        mut on_window: impl FnMut(&mut S, u32) -> Result<()>,
    ) -> Result<()> {
        if window.time_in_window(start_time) {
            on_window(state, start_time)?;
        }
        for t in start_time..end_time {
            let flow = advance(state, t + 1)?;
            self.stats.transitions += 1;
            if flow.is_break() {
                return Ok(());
            }
            if window.time_in_window(t + 1) {
                on_window(state, t + 1)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::UncertainObject;
    use crate::observation::Observation;
    use ust_markov::{CsrMatrix, MarkovChain};
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn forward_applies_schedule_and_counts() {
        // Re-derives the paper's 0.864 directly through the pipeline.
        let chain = paper_chain();
        let window = paper_window();
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap());
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut rows = [pipeline.seed(object.anchor().distribution().clone())];
        let mut hit = 0.0;
        pipeline
            .forward(chain.matrix(), &mut rows, 0, &window, |rows, _| {
                hit += rows[0].extract_masked(window.states());
                Ok(())
            })
            .unwrap();
        assert!((hit - 0.864).abs() < 1e-12);
        assert_eq!(stats.transitions, 3);
        assert_eq!(stats.objects_evaluated, 1);
    }

    #[test]
    fn forward_until_breaks_without_counting_evaluation() {
        let chain = paper_chain();
        let window = paper_window();
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut rows = [pipeline.seed(SparseVector::from_pairs(3, [(1usize, 1.0)]).unwrap())];
        let decided = pipeline
            .forward_until(chain.matrix(), &mut rows, 0, &window, |event| match event {
                ForwardEvent::StepEnd { t, .. } if t >= 1 => Ok(ControlFlow::Break(())),
                _ => Ok(ControlFlow::Continue(())),
            })
            .unwrap();
        assert_eq!(decided, Some(1));
        assert_eq!(stats.transitions, 1);
        assert_eq!(stats.objects_evaluated, 0, "broken sweeps are the driver's outcome");
    }

    #[test]
    fn backward_snapshots_only_requested_times() {
        let chain = paper_chain();
        let window = paper_window();
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut h = pipeline.seed(SparseVector::zeros(3));
        let mut seen = Vec::new();
        let transposed = chain.transposed();
        pipeline
            .backward(
                &mut h,
                &window,
                &[0, 2],
                |h| {
                    let _ = h.extract_masked(window.states());
                    let ones =
                        SparseVector::from_pairs(3, window.states().iter().map(|s| (s, 1.0)))?;
                    h.add_sparse(&ones)?;
                    Ok(())
                },
                |h, scratch| {
                    h.step(transposed, scratch)?;
                    Ok(1)
                },
                |_, t| seen.push(t),
            )
            .unwrap();
        assert_eq!(seen, vec![2, 0]);
        assert_eq!(stats.backward_steps, 3);
    }

    #[test]
    fn walk_fires_window_hook_on_schedule() {
        let window = paper_window();
        let mut stats = EvalStats::new();
        let mut pipeline = Propagator::new(&EngineConfig::default(), &mut stats);
        let mut times = Vec::new();
        let mut t_now = 0u32;
        pipeline
            .walk(
                0,
                5,
                &window,
                &mut t_now,
                |state, t| {
                    *state = t;
                    Ok(ControlFlow::Continue(()))
                },
                |_, t| {
                    times.push(t);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(times, vec![2, 3], "window times of T▫ = [2, 3]");
        assert_eq!(stats.transitions, 5);
        assert_eq!(t_now, 5);
    }
}
