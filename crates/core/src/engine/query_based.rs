//! Query-based (QB) PST∃Q evaluation — Section V-B of the paper.
//!
//! The computation is reversed: starting from the assumption that a world
//! satisfies the query at `t_end = max(T▫)`, the transposed augmented
//! matrices propagate that assumption backward to the observation time,
//! yielding a **backward field** `h_t(s)` = probability that a world at
//! state `s` at time `t` (not having hit the window at `≤ t`) satisfies the
//! predicate at some later query timestamp. Every object is then answered
//! by a single sparse dot product of its anchor distribution with the field
//! — the `O(|D| + |S_reach|²·δt)` cost that makes QB orders of magnitude
//! faster than OB on large databases.
//!
//! As with the forward engine, the transposed matrices `(M−)ᵀ`/`(M+)ᵀ` are
//! applied virtually: the recurrence
//!
//! ```text
//! h_t(s) = Σ_{j∈S▫} M(s,j)          + Σ_{j∉S▫} M(s,j)·h_{t+1}(j)   if t+1 ∈ T▫
//! h_t(s) = Σ_j     M(s,j)·h_{t+1}(j)                                otherwise
//! ```
//!
//! is one `M · w` product per step, where `w` is `h_{t+1}` with the window
//! states clamped to 1 when `t+1 ∈ T▫`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use ust_markov::{DenseVector, MarkovChain, PropagationVector, SparseVector};

use crate::database::TrajectoryDatabase;
use crate::engine::cache::BackwardFieldCache;
use crate::engine::object_based::validate;
use crate::engine::pipeline::Propagator;
use crate::engine::EngineConfig;
use crate::error::{QueryError, Result};
use crate::object::UncertainObject;
use crate::query::{ObjectProbability, QueryWindow};
use crate::stats::EvalStats;

/// The backward satisfaction field of a query window under one chain:
/// snapshots of `h_t` at every requested anchor time.
#[derive(Debug, Clone)]
pub struct BackwardField {
    snapshots: BTreeMap<u32, DenseVector>,
}

impl BackwardField {
    /// Computes the field for `window`, keeping snapshots at every time in
    /// `anchor_times` (each must be ≤ `t_end`). One backward sweep from
    /// `t_end` down to the earliest anchor.
    ///
    /// The sweep runs on a **hybrid vector over the transposed chain**: the
    /// support of `h_t` is exactly the set of states that can still reach
    /// the remaining window (`S_reach` in the paper's cost analysis), so
    /// for small windows each step costs `O(|S_reach|·deg)` instead of
    /// `O(nnz(M))`, densifying automatically as the support grows.
    pub fn compute(
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        stats: &mut EvalStats,
    ) -> Result<BackwardField> {
        Self::compute_with_config(chain, window, anchor_times, &EngineConfig::default(), stats)
    }

    /// As [`Self::compute`] with an explicit configuration (densification
    /// threshold of the hybrid backward vector).
    pub fn compute_with_config(
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<BackwardField> {
        let mut field = BackwardField { snapshots: BTreeMap::new() };
        let mut h = PropagationVector::from_sparse(SparseVector::zeros(chain.num_states()))
            .with_densify_threshold(config.densify_threshold);
        field.sweep_down(chain, window, &mut h, window.t_end(), anchor_times, config, stats)?;
        Ok(field)
    }

    /// Extends an already-computed field downward to earlier anchor times,
    /// resuming the backward sweep from its earliest snapshot instead of
    /// recomputing the `(min, t_end]` suffix. Every time in `anchor_times`
    /// must lie at or below [`Self::min_time`]; times already snapshotted
    /// are free. Resumed sweeps are bit-for-bit identical to a from-scratch
    /// sweep (the per-slot accumulation order of the backward product does
    /// not depend on the vector's representation).
    ///
    /// This is the suffix sharing behind
    /// [`crate::engine::cache::BackwardFieldCache`].
    pub fn extend_down(
        &mut self,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<()> {
        let Some(resume) = self.min_time() else {
            return Ok(());
        };
        let wanted: Vec<u32> = anchor_times.iter().copied().filter(|&t| t < resume).collect();
        if wanted.is_empty() {
            return Ok(());
        }
        let snapshot = self
            .snapshots
            .get(&resume)
            .ok_or(QueryError::internal("a backward field's floor is always snapshotted"))?;
        let mut h = PropagationVector::from_dense(snapshot.clone())
            .with_densify_threshold(config.densify_threshold);
        self.sweep_down(chain, window, &mut h, resume, &wanted, config, stats)
    }

    /// The shared backward sweep: from `h` = `h_{resume}` down to the
    /// earliest requested time, recording snapshots along the way.
    #[allow(clippy::too_many_arguments)]
    fn sweep_down(
        &mut self,
        chain: &MarkovChain,
        window: &QueryWindow,
        h: &mut PropagationVector,
        resume: u32,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<()> {
        let n = chain.num_states();
        let transposed = chain.transposed();
        let mut pipeline = Propagator::new(config, stats);
        let snapshots = &mut self.snapshots;
        pipeline.backward_from(
            h,
            resume,
            window,
            anchor_times,
            // Transposed M+ surgery: when the step's target time is in T▫,
            // clamp the window states to 1 (a world there satisfies the
            // predicate with certainty) before h_{t-1} = M · w, evaluated
            // as w · Mᵀ on the hybrid vector.
            |h| {
                let _ = h.extract_masked(window.states());
                let ones = SparseVector::from_pairs(n, window.states().iter().map(|s| (s, 1.0)))?;
                h.add_sparse(&ones)?;
                Ok(())
            },
            |h, scratch| {
                h.step(transposed, scratch)?;
                Ok(1)
            },
            |h, t| {
                snapshots.insert(t, h.to_dense());
            },
        )
    }

    /// The snapshot at anchor time `t`, if it was requested.
    pub fn at(&self, t: u32) -> Option<&DenseVector> {
        self.snapshots.get(&t)
    }

    /// The earliest snapshotted time — how far down the sweep has run.
    pub fn min_time(&self) -> Option<u32> {
        self.snapshots.keys().next().copied()
    }

    /// Iterates the snapshotted anchor times in ascending order.
    pub fn times(&self) -> impl Iterator<Item = u32> + '_ {
        self.snapshots.keys().copied()
    }

    /// True when every time in `anchor_times` has a snapshot.
    pub fn covers(&self, anchor_times: &[u32]) -> bool {
        anchor_times.iter().all(|t| self.snapshots.contains_key(t))
    }

    /// Answers one object from the field: a sparse dot product of its
    /// anchor distribution with the snapshot at the anchor time, with the
    /// anchor-in-window adjustment (worlds already inside the window at the
    /// anchor count with probability 1).
    pub fn object_probability(
        &self,
        object: &UncertainObject,
        window: &QueryWindow,
    ) -> Option<f64> {
        let anchor = object.anchor();
        let h = self.at(anchor.time())?;
        let anchor_in_window = window.time_in_window(anchor.time());
        let mut p = 0.0;
        for (s, mass) in anchor.distribution().iter() {
            let value =
                if anchor_in_window && window.states().contains(s) { 1.0 } else { h.get(s) };
            p += mass * value;
        }
        Some(p.min(1.0))
    }
}

/// Probability that `object` satisfies the PST∃Q, via a (single-object)
/// backward pass. For batches prefer [`evaluate`], which amortizes the pass.
pub fn exists_probability(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<f64> {
    let mut stats = EvalStats::new();
    validate(chain, object, window)?;
    let field = BackwardField::compute_with_config(
        chain,
        window,
        &[object.anchor().time()],
        config,
        &mut stats,
    )?;
    field
        .object_probability(object, window)
        .ok_or(QueryError::internal("anchor snapshot was requested from the backward field"))
}

/// A model's populated object group: database indices in insertion order
/// plus their (validated) anchor times — everything a backward sweep needs.
pub(crate) struct ModelGroup {
    /// Model index into `db.models()`.
    pub model: usize,
    /// Database object indices following the model, ascending.
    pub members: Vec<usize>,
    /// `members`' anchor times, parallel to `members`.
    pub anchors: Vec<u32>,
}

/// Validates every object and groups the database by model — the shared
/// front half of the sequential, cached and sharded QB drivers, so the
/// validation and anchor-collection rules cannot diverge between them.
pub(crate) fn validated_model_groups(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
) -> Result<Vec<ModelGroup>> {
    let indices: Vec<usize> = (0..db.len()).collect();
    validated_model_groups_on(db, &indices, window)
}

/// As [`validated_model_groups`], over an explicit subset of database
/// object indices (ascending) — the grouping stage of subset-restricted
/// query specs. Validation runs model-major in member order, matching the
/// whole-database grouping when `indices` covers everything.
pub(crate) fn validated_model_groups_on(
    db: &TrajectoryDatabase,
    indices: &[usize],
    window: &QueryWindow,
) -> Result<Vec<ModelGroup>> {
    let mut members_by_model: Vec<Vec<usize>> = vec![Vec::new(); db.models().len()];
    for &idx in indices {
        let object = db
            .object(idx)
            .ok_or(QueryError::internal("model grouping received an unresolved object index"))?;
        members_by_model[object.model()].push(idx);
    }
    let mut groups = Vec::new();
    for (model_idx, members) in members_by_model.into_iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let chain = &db.models()[model_idx];
        let mut anchors = Vec::with_capacity(members.len());
        for &idx in &members {
            let object = db
                .object(idx)
                .ok_or(QueryError::internal("group membership indices resolve to objects"))?;
            validate(chain, object, window)?;
            anchors.push(object.anchor().time());
        }
        groups.push(ModelGroup { model: model_idx, members, anchors });
    }
    Ok(groups)
}

/// The answer half shared by the QB drivers: one dot product per group
/// member against the group's backward field, written into `results` by
/// database index.
fn answer_group(
    db: &TrajectoryDatabase,
    group: &ModelGroup,
    field: &BackwardField,
    window: &QueryWindow,
    stats: &mut EvalStats,
    results: &mut [Option<ObjectProbability>],
) -> Result<()> {
    for &idx in &group.members {
        let object = db
            .object(idx)
            .ok_or(QueryError::internal("group membership indices resolve to objects"))?;
        let probability = field
            .object_probability(object, window)
            .ok_or(QueryError::internal("anchor snapshot was requested from the backward field"))?;
        stats.objects_evaluated += 1;
        results[idx] = Some(ObjectProbability { object_id: object.id(), probability });
    }
    Ok(())
}

/// A query's backward fields, swept **exactly once** per `(model, window)`
/// and shared read-only across the evaluation fan-out.
///
/// This is the stage the pooled query-based drivers run *before* sharding:
/// every populated model's [`BackwardField`] is computed up front (or
/// fetched from a lock-guarded [`BackwardFieldCache`] via
/// [`SharedFieldPlan::prepare_with_cache`]) and wrapped in an [`Arc`], so
/// workers receive cheap read-only views instead of re-sweeping the field
/// per shard. The deduplication is surfaced through
/// [`EvalStats::fields_shared`]: one increment per field a plan serves,
/// independent of how many workers consume it.
#[derive(Debug, Clone)]
pub struct SharedFieldPlan {
    fields: Vec<Option<Arc<BackwardField>>>,
}

impl SharedFieldPlan {
    /// Validates every object, groups the database by model and sweeps one
    /// backward field per populated model (over all of that model's object
    /// anchors). `None` entries are models without objects.
    pub fn prepare(
        db: &TrajectoryDatabase,
        window: &QueryWindow,
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<SharedFieldPlan> {
        let indices: Vec<usize> = (0..db.len()).collect();
        SharedFieldPlan::prepare_on(db, &indices, window, config, stats)
    }

    /// As [`SharedFieldPlan::prepare`], restricted to an explicit subset
    /// of database object indices: only the subset's models are swept, and
    /// only the subset's anchor times are snapshotted.
    pub fn prepare_on(
        db: &TrajectoryDatabase,
        indices: &[usize],
        window: &QueryWindow,
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<SharedFieldPlan> {
        let mut fields: Vec<Option<Arc<BackwardField>>> =
            (0..db.models().len()).map(|_| None).collect();
        for group in validated_model_groups_on(db, indices, window)? {
            let chain = &db.models()[group.model];
            fields[group.model] = Some(Arc::new(BackwardField::compute_with_config(
                chain,
                window,
                &group.anchors,
                config,
                stats,
            )?));
        }
        Ok(SharedFieldPlan { fields })
    }

    /// As [`SharedFieldPlan::prepare`], serving each field through a
    /// lock-guarded [`BackwardFieldCache`]: hits and suffix extensions pay
    /// no (or less) backward work, fresh windows sweep once and stay
    /// cached for the next query. The lock is held only for the prepare
    /// stage — the fan-out works on the returned `Arc` views, so workers
    /// never contend on the cache.
    pub fn prepare_with_cache(
        db: &TrajectoryDatabase,
        window: &QueryWindow,
        config: &EngineConfig,
        cache: &Mutex<BackwardFieldCache>,
        stats: &mut EvalStats,
    ) -> Result<SharedFieldPlan> {
        let indices: Vec<usize> = (0..db.len()).collect();
        SharedFieldPlan::prepare_with_cache_on(db, &indices, window, config, cache, stats)
    }

    /// As [`SharedFieldPlan::prepare_with_cache`], restricted to an
    /// explicit subset of database object indices.
    ///
    /// The cache lock is held only to probe and install — the backward
    /// sweeps themselves run outside it
    /// ([`BackwardFieldCache::get_or_compute_shared_concurrent`]), so
    /// concurrent queries over distinct windows (an async submission
    /// burst) sweep in parallel instead of convoying on the cache.
    pub fn prepare_with_cache_on(
        db: &TrajectoryDatabase,
        indices: &[usize],
        window: &QueryWindow,
        config: &EngineConfig,
        cache: &Mutex<BackwardFieldCache>,
        stats: &mut EvalStats,
    ) -> Result<SharedFieldPlan> {
        let mut fields: Vec<Option<Arc<BackwardField>>> =
            (0..db.models().len()).map(|_| None).collect();
        for group in validated_model_groups_on(db, indices, window)? {
            let chain = &db.models()[group.model];
            fields[group.model] = Some(BackwardFieldCache::get_or_compute_shared_concurrent(
                cache,
                group.model,
                chain,
                window,
                &group.anchors,
                config,
                stats,
            )?);
        }
        Ok(SharedFieldPlan { fields })
    }

    /// The shared field of `model`, if the model has objects.
    pub fn field(&self, model: usize) -> Option<&Arc<BackwardField>> {
        self.fields.get(model).and_then(|f| f.as_ref())
    }

    /// Number of populated models (fields the plan shares).
    pub fn num_fields(&self) -> usize {
        self.fields.iter().filter(|f| f.is_some()).count()
    }
}

/// Evaluates the PST∃Q for every object in the database: one backward pass
/// per transition model (Section V-C), then one dot product per object.
pub fn evaluate(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let mut results: Vec<Option<ObjectProbability>> = vec![None; db.len()];
    for group in validated_model_groups(db, window)? {
        let chain = &db.models()[group.model];
        let field =
            BackwardField::compute_with_config(chain, window, &group.anchors, config, stats)?;
        answer_group(db, &group, &field, window, stats, &mut results)?;
    }
    results
        .into_iter()
        .map(|r| r.ok_or(QueryError::internal("every object belongs to exactly one model group")))
        .collect()
}

/// As [`evaluate`], answering each model's backward field through a
/// [`BackwardFieldCache`]: repeated or overlapping queries on the same
/// `(model, window)` reuse the cached suffix sweep (extending it to earlier
/// anchor times when needed) instead of recomputing it. Results are
/// bit-for-bit identical to the uncached path.
pub fn evaluate_with_cache(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    cache: &mut BackwardFieldCache,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let mut results: Vec<Option<ObjectProbability>> = vec![None; db.len()];
    for group in validated_model_groups(db, window)? {
        let chain = &db.models()[group.model];
        let field =
            cache.get_or_compute(group.model, chain, window, &group.anchors, config, stats)?;
        answer_group(db, &group, field, window, stats, &mut results)?;
    }
    results
        .into_iter()
        .map(|r| r.ok_or(QueryError::internal("every object belongs to exactly one model group")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn backward_field_matches_example_2() {
        // P(t=0) = (0.96, 0.864, 0.928) per the paper's Example 2 (the ⊤
        // component of the paper's 4-vector is implicit here).
        let mut stats = EvalStats::new();
        let field =
            BackwardField::compute(&paper_chain(), &paper_window(), &[0], &mut stats).unwrap();
        let h0 = field.at(0).unwrap();
        assert!(h0.approx_eq(&DenseVector::from_vec(vec![0.96, 0.864, 0.928]), 1e-12));
        assert_eq!(stats.backward_steps, 3);
        assert!(field.at(1).is_none(), "only requested snapshots are kept");
    }

    #[test]
    fn single_object_probability_is_0864() {
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap());
        let p =
            exists_probability(&paper_chain(), &object, &paper_window(), &EngineConfig::default())
                .unwrap();
        assert!((p - 0.864).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_object_based_on_uncertain_anchor() {
        let chain = paper_chain();
        let start =
            ust_markov::SparseVector::from_pairs(3, [(0, 0.5), (1, 0.2), (2, 0.3)]).unwrap();
        let object =
            UncertainObject::with_single_observation(9, Observation::uncertain(0, start).unwrap());
        let window = paper_window();
        let qb = exists_probability(&chain, &object, &window, &EngineConfig::default()).unwrap();
        let ob = crate::engine::object_based::exists_probability(
            &chain,
            &object,
            &window,
            &EngineConfig::default(),
        )
        .unwrap();
        assert!((qb - ob).abs() < 1e-12);
    }

    #[test]
    fn anchor_inside_window_clamps_to_one() {
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(2, 3, 1).unwrap());
        let p =
            exists_probability(&paper_chain(), &object, &paper_window(), &EngineConfig::default())
                .unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anchor_at_t_end_outside_states_scores_zero() {
        // Anchor exactly at t_end but outside S▫: no future query times
        // remain, so the probability is 0.
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(3, 3, 2).unwrap());
        let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::at(3)).unwrap();
        let p =
            exists_probability(&paper_chain(), &object, &window, &EngineConfig::default()).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn batch_evaluation_mixed_anchor_times() {
        let mut db = TrajectoryDatabase::new(paper_chain());
        db.insert(UncertainObject::with_single_observation(
            0,
            Observation::exact(0, 3, 1).unwrap(),
        ))
        .unwrap();
        db.insert(UncertainObject::with_single_observation(
            1,
            Observation::exact(1, 3, 2).unwrap(),
        ))
        .unwrap();
        let mut stats = EvalStats::new();
        let results = evaluate(&db, &paper_window(), &EngineConfig::default(), &mut stats).unwrap();
        assert_eq!(results.len(), 2);
        assert!((results[0].probability - 0.864).abs() < 1e-12);
        // Object anchored at t=1 on s3: h_1(s3) = 0.96 (from Example 2).
        assert!((results[1].probability - 0.96).abs() < 1e-12);
        // One shared backward sweep: 3 steps, not 3 + 2.
        assert_eq!(stats.backward_steps, 3);
        assert_eq!(stats.objects_evaluated, 2);
    }

    #[test]
    fn per_model_backward_passes() {
        // Two models: the paper chain and a "frozen" identity chain.
        let frozen = MarkovChain::from_csr(CsrMatrix::identity(3)).unwrap();
        let mut db = TrajectoryDatabase::with_models(vec![paper_chain(), frozen]).unwrap();
        db.insert(UncertainObject::with_single_observation(
            0,
            Observation::exact(0, 3, 1).unwrap(),
        ))
        .unwrap();
        db.insert(
            UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap())
                .with_model(1),
        )
        .unwrap();
        let results =
            evaluate(&db, &paper_window(), &EngineConfig::default(), &mut EvalStats::new())
                .unwrap();
        assert!((results[0].probability - 0.864).abs() < 1e-12);
        // Frozen object stays at s2 ∈ S▫ forever: hits with certainty.
        assert!((results[1].probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_database_evaluates_to_empty() {
        let db = TrajectoryDatabase::new(paper_chain());
        let results =
            evaluate(&db, &paper_window(), &EngineConfig::default(), &mut EvalStats::new())
                .unwrap();
        assert!(results.is_empty());
    }
}
