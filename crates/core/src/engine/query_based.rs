//! Query-based (QB) PST∃Q evaluation — Section V-B of the paper.
//!
//! The computation is reversed: starting from the assumption that a world
//! satisfies the query at `t_end = max(T▫)`, the transposed augmented
//! matrices propagate that assumption backward to the observation time,
//! yielding a **backward field** `h_t(s)` = probability that a world at
//! state `s` at time `t` (not having hit the window at `≤ t`) satisfies the
//! predicate at some later query timestamp. Every object is then answered
//! by a single sparse dot product of its anchor distribution with the field
//! — the `O(|D| + |S_reach|²·δt)` cost that makes QB orders of magnitude
//! faster than OB on large databases.
//!
//! As with the forward engine, the transposed matrices `(M−)ᵀ`/`(M+)ᵀ` are
//! applied virtually: the recurrence
//!
//! ```text
//! h_t(s) = Σ_{j∈S▫} M(s,j)          + Σ_{j∉S▫} M(s,j)·h_{t+1}(j)   if t+1 ∈ T▫
//! h_t(s) = Σ_j     M(s,j)·h_{t+1}(j)                                otherwise
//! ```
//!
//! is one `M · w` product per step, where `w` is `h_{t+1}` with the window
//! states clamped to 1 when `t+1 ∈ T▫`.

use std::collections::BTreeMap;

use ust_markov::{DenseVector, MarkovChain, SparseVector};

use crate::database::TrajectoryDatabase;
use crate::engine::object_based::validate;
use crate::engine::pipeline::Propagator;
use crate::engine::EngineConfig;
use crate::error::Result;
use crate::object::UncertainObject;
use crate::query::{ObjectProbability, QueryWindow};
use crate::stats::EvalStats;

/// The backward satisfaction field of a query window under one chain:
/// snapshots of `h_t` at every requested anchor time.
#[derive(Debug, Clone)]
pub struct BackwardField {
    snapshots: BTreeMap<u32, DenseVector>,
}

impl BackwardField {
    /// Computes the field for `window`, keeping snapshots at every time in
    /// `anchor_times` (each must be ≤ `t_end`). One backward sweep from
    /// `t_end` down to the earliest anchor.
    ///
    /// The sweep runs on a **hybrid vector over the transposed chain**: the
    /// support of `h_t` is exactly the set of states that can still reach
    /// the remaining window (`S_reach` in the paper's cost analysis), so
    /// for small windows each step costs `O(|S_reach|·deg)` instead of
    /// `O(nnz(M))`, densifying automatically as the support grows.
    pub fn compute(
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        stats: &mut EvalStats,
    ) -> Result<BackwardField> {
        Self::compute_with_config(chain, window, anchor_times, &EngineConfig::default(), stats)
    }

    /// As [`Self::compute`] with an explicit configuration (densification
    /// threshold of the hybrid backward vector).
    pub fn compute_with_config(
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<BackwardField> {
        let n = chain.num_states();
        let transposed = chain.transposed();
        let mut pipeline = Propagator::new(config, stats);
        let mut snapshots = BTreeMap::new();
        let mut h = pipeline.seed(SparseVector::zeros(n));
        pipeline.backward(
            &mut h,
            window,
            anchor_times,
            // Transposed M+ surgery: when the step's target time is in T▫,
            // clamp the window states to 1 (a world there satisfies the
            // predicate with certainty) before h_{t-1} = M · w, evaluated
            // as w · Mᵀ on the hybrid vector.
            |h| {
                let _ = h.extract_masked(window.states());
                let ones = SparseVector::from_pairs(n, window.states().iter().map(|s| (s, 1.0)))?;
                h.add_sparse(&ones)?;
                Ok(())
            },
            |h, scratch| {
                h.step(transposed, scratch)?;
                Ok(1)
            },
            |h, t| {
                snapshots.insert(t, h.to_dense());
            },
        )?;
        Ok(BackwardField { snapshots })
    }

    /// The snapshot at anchor time `t`, if it was requested.
    pub fn at(&self, t: u32) -> Option<&DenseVector> {
        self.snapshots.get(&t)
    }

    /// Answers one object from the field: a sparse dot product of its
    /// anchor distribution with the snapshot at the anchor time, with the
    /// anchor-in-window adjustment (worlds already inside the window at the
    /// anchor count with probability 1).
    pub fn object_probability(
        &self,
        object: &UncertainObject,
        window: &QueryWindow,
    ) -> Option<f64> {
        let anchor = object.anchor();
        let h = self.at(anchor.time())?;
        let anchor_in_window = window.time_in_window(anchor.time());
        let mut p = 0.0;
        for (s, mass) in anchor.distribution().iter() {
            let value =
                if anchor_in_window && window.states().contains(s) { 1.0 } else { h.get(s) };
            p += mass * value;
        }
        Some(p.min(1.0))
    }
}

/// Probability that `object` satisfies the PST∃Q, via a (single-object)
/// backward pass. For batches prefer [`evaluate`], which amortizes the pass.
pub fn exists_probability(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<f64> {
    let mut stats = EvalStats::new();
    validate(chain, object, window)?;
    let field = BackwardField::compute_with_config(
        chain,
        window,
        &[object.anchor().time()],
        config,
        &mut stats,
    )?;
    Ok(field.object_probability(object, window).expect("anchor snapshot was requested"))
}

/// Evaluates the PST∃Q for every object in the database: one backward pass
/// per transition model (Section V-C), then one dot product per object.
pub fn evaluate(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let mut results: Vec<Option<ObjectProbability>> = vec![None; db.len()];
    for (model_idx, members) in db.objects_by_model().into_iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let chain = &db.models()[model_idx];
        let mut anchors = Vec::with_capacity(members.len());
        for &idx in &members {
            let object = db.object(idx).expect("index from enumeration");
            validate(chain, object, window)?;
            anchors.push(object.anchor().time());
        }
        let field = BackwardField::compute_with_config(chain, window, &anchors, config, stats)?;
        for &idx in &members {
            let object = db.object(idx).expect("index from enumeration");
            let probability =
                field.object_probability(object, window).expect("anchor snapshot was requested");
            stats.objects_evaluated += 1;
            results[idx] = Some(ObjectProbability { object_id: object.id(), probability });
        }
    }
    Ok(results.into_iter().map(|r| r.expect("every object belongs to a model")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn paper_window() -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap()
    }

    #[test]
    fn backward_field_matches_example_2() {
        // P(t=0) = (0.96, 0.864, 0.928) per the paper's Example 2 (the ⊤
        // component of the paper's 4-vector is implicit here).
        let mut stats = EvalStats::new();
        let field =
            BackwardField::compute(&paper_chain(), &paper_window(), &[0], &mut stats).unwrap();
        let h0 = field.at(0).unwrap();
        assert!(h0.approx_eq(&DenseVector::from_vec(vec![0.96, 0.864, 0.928]), 1e-12));
        assert_eq!(stats.backward_steps, 3);
        assert!(field.at(1).is_none(), "only requested snapshots are kept");
    }

    #[test]
    fn single_object_probability_is_0864() {
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap());
        let p =
            exists_probability(&paper_chain(), &object, &paper_window(), &EngineConfig::default())
                .unwrap();
        assert!((p - 0.864).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_object_based_on_uncertain_anchor() {
        let chain = paper_chain();
        let start =
            ust_markov::SparseVector::from_pairs(3, [(0, 0.5), (1, 0.2), (2, 0.3)]).unwrap();
        let object =
            UncertainObject::with_single_observation(9, Observation::uncertain(0, start).unwrap());
        let window = paper_window();
        let qb = exists_probability(&chain, &object, &window, &EngineConfig::default()).unwrap();
        let ob = crate::engine::object_based::exists_probability(
            &chain,
            &object,
            &window,
            &EngineConfig::default(),
        )
        .unwrap();
        assert!((qb - ob).abs() < 1e-12);
    }

    #[test]
    fn anchor_inside_window_clamps_to_one() {
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(2, 3, 1).unwrap());
        let p =
            exists_probability(&paper_chain(), &object, &paper_window(), &EngineConfig::default())
                .unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anchor_at_t_end_outside_states_scores_zero() {
        // Anchor exactly at t_end but outside S▫: no future query times
        // remain, so the probability is 0.
        let object =
            UncertainObject::with_single_observation(1, Observation::exact(3, 3, 2).unwrap());
        let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::at(3)).unwrap();
        let p =
            exists_probability(&paper_chain(), &object, &window, &EngineConfig::default()).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn batch_evaluation_mixed_anchor_times() {
        let mut db = TrajectoryDatabase::new(paper_chain());
        db.insert(UncertainObject::with_single_observation(
            0,
            Observation::exact(0, 3, 1).unwrap(),
        ))
        .unwrap();
        db.insert(UncertainObject::with_single_observation(
            1,
            Observation::exact(1, 3, 2).unwrap(),
        ))
        .unwrap();
        let mut stats = EvalStats::new();
        let results = evaluate(&db, &paper_window(), &EngineConfig::default(), &mut stats).unwrap();
        assert_eq!(results.len(), 2);
        assert!((results[0].probability - 0.864).abs() < 1e-12);
        // Object anchored at t=1 on s3: h_1(s3) = 0.96 (from Example 2).
        assert!((results[1].probability - 0.96).abs() < 1e-12);
        // One shared backward sweep: 3 steps, not 3 + 2.
        assert_eq!(stats.backward_steps, 3);
        assert_eq!(stats.objects_evaluated, 2);
    }

    #[test]
    fn per_model_backward_passes() {
        // Two models: the paper chain and a "frozen" identity chain.
        let frozen = MarkovChain::from_csr(CsrMatrix::identity(3)).unwrap();
        let mut db = TrajectoryDatabase::with_models(vec![paper_chain(), frozen]).unwrap();
        db.insert(UncertainObject::with_single_observation(
            0,
            Observation::exact(0, 3, 1).unwrap(),
        ))
        .unwrap();
        db.insert(
            UncertainObject::with_single_observation(1, Observation::exact(0, 3, 1).unwrap())
                .with_model(1),
        )
        .unwrap();
        let results =
            evaluate(&db, &paper_window(), &EngineConfig::default(), &mut EvalStats::new())
                .unwrap();
        assert!((results[0].probability - 0.864).abs() < 1e-12);
        // Frozen object stays at s2 ∈ S▫ forever: hits with certainty.
        assert!((results[1].probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_database_evaluates_to_empty() {
        let db = TrajectoryDatabase::new(paper_chain());
        let results =
            evaluate(&db, &paper_window(), &EngineConfig::default(), &mut EvalStats::new())
                .unwrap();
        assert!(results.is_empty());
    }
}
