//! A keyed cache of query-based backward fields.
//!
//! The query-based engines answer a whole database from one backward sweep
//! per `(model, window)` — but every *query* used to pay that sweep again,
//! even when consecutive queries share the window (a dashboard refreshing a
//! danger-zone query, a threshold and a top-k run over the same window, a
//! sliding workload revisiting recent windows). [`BackwardFieldCache`]
//! memoizes [`BackwardField`]s under a `(model id, window)` key, with the
//! anchor-time snapshots living inside each entry:
//!
//! * a lookup whose anchor times are all snapshotted is a **hit** — no
//!   backward work at all;
//! * a lookup needing only *earlier* anchor times **extends** the cached
//!   sweep downward from its earliest snapshot
//!   ([`BackwardField::extend_down`]) — the `(min, t_end]` suffix is
//!   shared, which is what makes overlapping anchor populations cheap;
//! * anything else recomputes the union of known and requested times and
//!   replaces the entry (a **miss**).
//!
//! Hits and misses are reported through [`EvalStats::cache_hits`] /
//! [`EvalStats::cache_misses`]. Eviction is least-recently-used at a fixed
//! entry capacity. Cached answers are bit-for-bit identical to uncached
//! evaluation — resumed sweeps replay the same per-slot floating-point
//! accumulation order (property-tested in `tests/proptest_engines.rs`).

use std::collections::HashMap;
use std::sync::Arc;

use ust_markov::MarkovChain;

use crate::engine::query_based::BackwardField;
use crate::engine::EngineConfig;
use crate::error::Result;
use crate::query::QueryWindow;
use crate::stats::EvalStats;

/// Default number of `(model, window)` entries a cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// The identity of a backward field: which chain it was swept over and
/// which query window shaped the sweep.
///
/// The chain is identified by its model index **plus** its heap address
/// and shape, so one cache shared across several databases (or a database
/// whose models were swapped out) cannot serve another chain's field: a
/// different `MarkovChain` allocation yields a different key, and the
/// stale entry simply ages out of the LRU.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    model: usize,
    chain_addr: usize,
    chain_shape: (usize, usize),
    states: Vec<usize>,
    times: Vec<u32>,
}

impl CacheKey {
    fn of(model: usize, chain: &MarkovChain, window: &QueryWindow) -> CacheKey {
        CacheKey {
            model,
            chain_addr: chain as *const MarkovChain as usize,
            chain_shape: (chain.num_states(), chain.matrix().nnz()),
            states: window.states().to_indices(),
            times: window.times().as_slice().to_vec(),
        }
    }
}

#[derive(Debug)]
struct CacheEntry {
    /// The field is held behind an [`Arc`] so
    /// [`BackwardFieldCache::get_or_compute_shared`] can hand out
    /// read-only views without cloning the snapshots; a suffix extension
    /// on an entry whose `Arc` is still shared copies-on-write
    /// ([`Arc::make_mut`]), leaving earlier views untouched.
    field: Arc<BackwardField>,
    last_used: u64,
}

/// An LRU cache of backward satisfaction fields, shared by the query-based
/// PST∃Q driver, the query-based top-k driver and the cached threshold
/// driver.
#[derive(Debug)]
pub struct BackwardFieldCache {
    capacity: usize,
    entries: HashMap<CacheKey, CacheEntry>,
    clock: u64,
}

impl Default for BackwardFieldCache {
    fn default() -> Self {
        BackwardFieldCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

enum Lookup {
    /// All requested anchors are snapshotted.
    Hit,
    /// The entry exists but must be swept further down to these times.
    Extend(Vec<u32>),
    /// The entry must be (re)computed for these times.
    Compute(Vec<u32>),
}

impl BackwardFieldCache {
    /// A cache retaining at most `capacity` `(model, window)` entries
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        BackwardFieldCache { capacity: capacity.max(1), entries: HashMap::new(), clock: 0 }
    }

    /// Number of cached fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every cached field.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// True when the `(model, chain, window)` triple has a cached field
    /// covering all of `anchor_times` (a lookup that would hit without
    /// backward work).
    pub fn contains(
        &self,
        model: usize,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
    ) -> bool {
        self.entries
            .get(&CacheKey::of(model, chain, window))
            .is_some_and(|e| e.field.covers(anchor_times))
    }

    /// The backward field of `(model, window)` with snapshots at every time
    /// in `anchor_times`, computing, extending or reusing as needed.
    ///
    /// The key includes the chain's identity (address + shape), so one
    /// cache can safely be shared across databases: a different chain under
    /// the same model index misses instead of serving the wrong field.
    pub fn get_or_compute<'c>(
        &'c mut self,
        model: usize,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<&'c BackwardField> {
        self.get_or_compute_entry(model, chain, window, anchor_times, config, stats)
            .map(|arc| arc.as_ref())
    }

    /// As [`BackwardFieldCache::get_or_compute`], returning a cheap shared
    /// handle to the cached field.
    ///
    /// This is the lookup the [`crate::engine::query_based::SharedFieldPlan`]
    /// stage performs behind a lock: the `Arc` lets the plan release the
    /// cache immediately and hand the workers read-only views; a later
    /// suffix extension of the entry copies-on-write, so outstanding views
    /// are never mutated.
    pub fn get_or_compute_shared(
        &mut self,
        model: usize,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<Arc<BackwardField>> {
        self.get_or_compute_entry(model, chain, window, anchor_times, config, stats).map(Arc::clone)
    }

    /// The lookup/compute/extend state machine shared by both accessors.
    fn get_or_compute_entry<'c>(
        &'c mut self,
        model: usize,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<&'c Arc<BackwardField>> {
        let key = CacheKey::of(model, chain, window);
        self.clock += 1;
        let clock = self.clock;

        let lookup = match self.entries.get(&key) {
            Some(entry) => {
                let missing: Vec<u32> =
                    anchor_times.iter().copied().filter(|&t| entry.field.at(t).is_none()).collect();
                if missing.is_empty() {
                    Lookup::Hit
                } else if entry.field.min_time().is_some_and(|min| missing.iter().all(|&t| t < min))
                {
                    Lookup::Extend(missing)
                } else {
                    // Times above the sweep's floor were never snapshotted;
                    // recompute the union so nothing already served is lost.
                    let mut union: Vec<u32> = entry.field.times().collect();
                    union.extend_from_slice(anchor_times);
                    Lookup::Compute(union)
                }
            }
            None => Lookup::Compute(anchor_times.to_vec()),
        };

        match lookup {
            Lookup::Hit => {
                stats.cache_hits += 1;
                let entry = self.entries.get_mut(&key).expect("looked up above");
                entry.last_used = clock;
            }
            Lookup::Extend(missing) => {
                // A partial hit: the (min, t_end] suffix is reused, only
                // the extension below it is swept. `make_mut` clones first
                // if a previous query still holds a shared view.
                stats.cache_hits += 1;
                let entry = self.entries.get_mut(&key).expect("looked up above");
                Arc::make_mut(&mut entry.field)
                    .extend_down(chain, window, &missing, config, stats)?;
                entry.last_used = clock;
            }
            Lookup::Compute(times) => {
                stats.cache_misses += 1;
                let field =
                    BackwardField::compute_with_config(chain, window, &times, config, stats)?;
                if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
                    self.evict_lru();
                }
                self.entries
                    .insert(key.clone(), CacheEntry { field: Arc::new(field), last_used: clock });
            }
        }
        Ok(&self.entries.get(&key).expect("present in every branch").field)
    }

    fn evict_lru(&mut self) {
        if let Some(victim) =
            self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
        {
            self.entries.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn window(t_hi: u32) -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, t_hi)).unwrap()
    }

    #[test]
    fn repeated_lookup_hits_without_backward_work() {
        let chain = paper_chain();
        let mut cache = BackwardFieldCache::new(4);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let w = window(3);
        let first = cache
            .get_or_compute(0, &chain, &w, &[0], &config, &mut stats)
            .unwrap()
            .at(0)
            .unwrap()
            .clone();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
        let sweeps_after_miss = stats.backward_steps;
        let again = cache
            .get_or_compute(0, &chain, &w, &[0], &config, &mut stats)
            .unwrap()
            .at(0)
            .unwrap()
            .clone();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.backward_steps, sweeps_after_miss, "a hit performs no sweep");
        assert!(first.approx_eq(&again, 0.0), "hits return the identical field");
        assert!(cache.contains(0, &chain, &w, &[0]));
        assert!(!cache.contains(0, &chain, &w, &[1]));
        assert!(!cache.contains(1, &chain, &w, &[0]));
    }

    #[test]
    fn extension_reuses_the_suffix_sweep() {
        let chain = paper_chain();
        let mut cache = BackwardFieldCache::new(4);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let w = window(3);
        // First query anchors at t=2: sweep 3 → 2 (one step).
        cache.get_or_compute(0, &chain, &w, &[2], &config, &mut stats).unwrap();
        assert_eq!(stats.backward_steps, 1);
        // Second query anchors at t=0: extend 2 → 0 (two more steps), a
        // partial hit rather than a 3-step recomputation.
        let field = cache.get_or_compute(0, &chain, &w, &[0], &config, &mut stats).unwrap();
        assert_eq!(stats.backward_steps, 3);
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        // The extended field matches Example 2 exactly.
        let h0 = field.at(0).unwrap();
        assert!((h0.get(1) - 0.864).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let chain = paper_chain();
        let mut cache = BackwardFieldCache::new(2);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let (w3, w4, w5) = (window(3), window(4), window(5));
        cache.get_or_compute(0, &chain, &w3, &[0], &config, &mut stats).unwrap();
        cache.get_or_compute(0, &chain, &w4, &[0], &config, &mut stats).unwrap();
        // Touch w3 so w4 becomes the least recently used...
        cache.get_or_compute(0, &chain, &w3, &[0], &config, &mut stats).unwrap();
        // ...then inserting a third window must evict w4, not w3.
        cache.get_or_compute(0, &chain, &w5, &[0], &config, &mut stats).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(0, &chain, &w3, &[0]));
        assert!(!cache.contains(0, &chain, &w4, &[0]));
        assert!(cache.contains(0, &chain, &w5, &[0]));
        // Re-requesting the evicted window is a fresh miss.
        cache.get_or_compute(0, &chain, &w4, &[0], &config, &mut stats).unwrap();
        assert_eq!(stats.cache_misses, 4);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 2);
        assert_eq!(BackwardFieldCache::new(0).capacity(), 1, "capacity clamps to 1");
    }

    #[test]
    fn distinct_chains_under_the_same_model_index_do_not_collide() {
        // One cache shared across two databases: the second chain must miss
        // and get its own field, not the first chain's.
        let moving = paper_chain();
        let frozen = MarkovChain::from_csr(CsrMatrix::identity(3)).unwrap();
        let mut cache = BackwardFieldCache::new(4);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let w = window(3);
        let from_moving = cache
            .get_or_compute(0, &moving, &w, &[0], &config, &mut stats)
            .unwrap()
            .at(0)
            .unwrap()
            .clone();
        let from_frozen = cache
            .get_or_compute(0, &frozen, &w, &[0], &config, &mut stats)
            .unwrap()
            .at(0)
            .unwrap()
            .clone();
        assert_eq!(stats.cache_misses, 2, "different chains must not share an entry");
        assert!((from_moving.get(1) - 0.864).abs() < 1e-12);
        // Under the identity chain, worlds inside the window stay there
        // with certainty and worlds outside never enter.
        assert_eq!(from_frozen.get(1), 1.0);
        assert_eq!(from_frozen.get(2), 0.0);
    }

    #[test]
    fn anchors_between_snapshots_force_a_union_recompute() {
        let chain = paper_chain();
        let mut cache = BackwardFieldCache::new(4);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let w = window(3);
        cache.get_or_compute(0, &chain, &w, &[0], &config, &mut stats).unwrap();
        // t=1 lies above the floor snapshot set {0}? No — 1 > 0, and 1 was
        // never snapshotted, so the entry cannot be extended downward: it
        // must be recomputed with the union {0, 1}.
        let field = cache.get_or_compute(0, &chain, &w, &[1], &config, &mut stats).unwrap();
        assert!(field.at(0).is_some(), "union keeps previously served anchors");
        assert!(field.at(1).is_some());
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 2));
        // Both anchors now hit.
        cache.get_or_compute(0, &chain, &w, &[0, 1], &config, &mut stats).unwrap();
        assert_eq!(stats.cache_hits, 1);
    }
}
