//! Keyed caches of query-based backward fields.
//!
//! The query-based engines answer a whole database from one backward sweep
//! per `(model, window)` — but every *query* used to pay that sweep again,
//! even when consecutive queries share the window (a dashboard refreshing a
//! danger-zone query, a threshold and a top-k run over the same window, a
//! sliding workload revisiting recent windows). [`FieldCache`] memoizes
//! backward fields under a `(model id, window)` key, with the anchor-time
//! snapshots living inside each entry:
//!
//! * a lookup whose anchor times are all snapshotted is a **hit** — no
//!   backward work at all;
//! * a lookup needing only *earlier* anchor times **extends** the cached
//!   sweep downward from its earliest snapshot — the `(min, t_end]` suffix
//!   is shared, which is what makes overlapping anchor populations cheap;
//! * anything else recomputes the union of known and requested times and
//!   replaces the entry (a **miss**).
//!
//! Two instantiations serve the two field shapes of the paper's queries:
//! [`BackwardFieldCache`] holds the PST∃Q satisfaction fields
//! ([`BackwardField`], one vector per sweep) and [`KTimesFieldCache`] the
//! PSTkQ level fields ([`KTimesBackwardField`], `|T▫| + 1` level vectors
//! per sweep — the cache that stops repeated PSTkQ windows from paying
//! `(|T▫|+1)` level sweeps every time). Hits and misses of either cache
//! are reported through [`EvalStats::cache_hits`] /
//! [`EvalStats::cache_misses`]. Eviction is least-recently-used at a fixed
//! entry capacity. Cached answers are bit-for-bit identical to uncached
//! evaluation — resumed sweeps replay the same per-slot floating-point
//! accumulation order (property-tested in `tests/proptest_engines.rs`).

// lint: allow-file(unordered-iteration-on-answer-path) — entries are only
// read by exact `(model, window)` key lookup; the one iteration (LRU
// eviction) takes `min_by_key(last_used)` over strictly increasing clock
// values, so the minimum is unique and map order cannot change which entry
// is evicted, let alone a cached field's contents.
use std::collections::HashMap;
use std::sync::Arc;

use ust_markov::MarkovChain;

use crate::engine::ktimes::KTimesBackwardField;
use crate::engine::query_based::BackwardField;
use crate::engine::EngineConfig;
use crate::error::{QueryError, Result};
use crate::query::QueryWindow;
use crate::stats::EvalStats;

/// Default number of `(model, window)` entries a cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// A backward field shape a [`FieldCache`] can memoize: computable for a
/// set of anchor times, extendable downward from its earliest snapshot,
/// and introspectable about which snapshots it holds.
///
/// Implemented by [`BackwardField`] (PST∃Q satisfaction fields) and
/// [`KTimesBackwardField`] (PSTkQ level fields). The contract behind the
/// cache's bit-identity guarantee: extending a field down to earlier times
/// must reproduce exactly the snapshots a from-scratch sweep over the
/// union of times would produce.
pub trait CacheableField: Clone + Sized {
    /// Sweeps a fresh field for `window` with snapshots at `anchor_times`.
    fn compute_field(
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<Self>;

    /// Resumes the sweep from the earliest snapshot down to every earlier
    /// time in `anchor_times`.
    fn extend_field_down(
        &mut self,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<()>;

    /// True when the field holds a snapshot at time `t`.
    fn has_snapshot(&self, t: u32) -> bool;

    /// The earliest snapshotted time — how far down the sweep has run.
    fn min_snapshot_time(&self) -> Option<u32>;

    /// All snapshotted times, ascending.
    fn snapshot_times(&self) -> Vec<u32>;

    /// True when every time in `anchor_times` has a snapshot.
    fn covers_times(&self, anchor_times: &[u32]) -> bool {
        anchor_times.iter().all(|&t| self.has_snapshot(t))
    }
}

impl CacheableField for BackwardField {
    fn compute_field(
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<Self> {
        BackwardField::compute_with_config(chain, window, anchor_times, config, stats)
    }

    fn extend_field_down(
        &mut self,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<()> {
        self.extend_down(chain, window, anchor_times, config, stats)
    }

    fn has_snapshot(&self, t: u32) -> bool {
        self.at(t).is_some()
    }

    fn min_snapshot_time(&self) -> Option<u32> {
        self.min_time()
    }

    fn snapshot_times(&self) -> Vec<u32> {
        self.times().collect()
    }
}

impl CacheableField for KTimesBackwardField {
    fn compute_field(
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<Self> {
        let _ = config;
        KTimesBackwardField::compute(chain, window, anchor_times, stats)
    }

    fn extend_field_down(
        &mut self,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<()> {
        let _ = config;
        self.extend_down(chain, window, anchor_times, stats)
    }

    fn has_snapshot(&self, t: u32) -> bool {
        self.at(t).is_some()
    }

    fn min_snapshot_time(&self) -> Option<u32> {
        self.min_time()
    }

    fn snapshot_times(&self) -> Vec<u32> {
        self.times().collect()
    }
}

/// The identity of a backward field: which chain it was swept over and
/// which query window shaped the sweep.
///
/// The chain is identified by its model index **plus** its heap address
/// and shape, so one cache shared across several databases (or a database
/// whose models were swapped out) cannot serve another chain's field: a
/// different `MarkovChain` allocation yields a different key, and the
/// stale entry simply ages out of the LRU.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    model: usize,
    chain_addr: usize,
    chain_shape: (usize, usize),
    states: Vec<usize>,
    times: Vec<u32>,
}

impl CacheKey {
    fn of(model: usize, chain: &MarkovChain, window: &QueryWindow) -> CacheKey {
        CacheKey {
            model,
            chain_addr: chain as *const MarkovChain as usize,
            chain_shape: (chain.num_states(), chain.matrix().nnz()),
            states: window.states().to_indices(),
            times: window.times().as_slice().to_vec(),
        }
    }
}

#[derive(Debug)]
struct CacheEntry<F> {
    /// The field is held behind an [`Arc`] so
    /// [`FieldCache::get_or_compute_shared`] can hand out read-only views
    /// without cloning the snapshots; a suffix extension on an entry whose
    /// `Arc` is still shared copies-on-write ([`Arc::make_mut`]), leaving
    /// earlier views untouched.
    field: Arc<F>,
    last_used: u64,
}

/// An LRU cache of backward fields, generic over the field shape.
///
/// Use the [`BackwardFieldCache`] alias for PST∃Q satisfaction fields
/// (shared by the query-based ∃/∀ drivers, the cached threshold driver and
/// the query-based top-k driver) and [`KTimesFieldCache`] for PSTkQ level
/// fields.
#[derive(Debug)]
pub struct FieldCache<F> {
    capacity: usize,
    entries: HashMap<CacheKey, CacheEntry<F>>,
    clock: u64,
}

/// An LRU cache of PST∃Q backward satisfaction fields.
pub type BackwardFieldCache = FieldCache<BackwardField>;

/// An LRU cache of PSTkQ backward level fields — the
/// [`KTimesBackwardField`] analogue of [`BackwardFieldCache`], so repeated
/// PSTkQ windows stop paying `(|T▫|+1)` level sweeps every time.
pub type KTimesFieldCache = FieldCache<KTimesBackwardField>;

impl<F: CacheableField> Default for FieldCache<F> {
    fn default() -> Self {
        FieldCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

enum Lookup {
    /// All requested anchors are snapshotted.
    Hit,
    /// The entry exists but must be swept further down to these times.
    Extend(Vec<u32>),
    /// The entry must be (re)computed for these times.
    Compute(Vec<u32>),
}

/// Outcome of a lock-held [`FieldCache::probe`]: either a served field, or
/// the backward work to perform *outside* the lock.
enum Probe<F> {
    /// All requested anchors are snapshotted — no backward work.
    Ready(Arc<F>),
    /// Clone `base`, extend it down to `missing`, then install.
    Extend {
        /// The cached field to resume from.
        base: Arc<F>,
        /// The times below its floor that must be swept.
        missing: Vec<u32>,
    },
    /// Sweep a fresh field over these times, then install.
    Compute(Vec<u32>),
}

impl<F: CacheableField> FieldCache<F> {
    /// A cache retaining at most `capacity` `(model, window)` entries
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        FieldCache { capacity: capacity.max(1), entries: HashMap::new(), clock: 0 }
    }

    /// Number of cached fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every cached field.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// True when the `(model, chain, window)` triple has a cached field
    /// covering all of `anchor_times` (a lookup that would hit without
    /// backward work).
    pub fn contains(
        &self,
        model: usize,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
    ) -> bool {
        self.entries
            .get(&CacheKey::of(model, chain, window))
            .is_some_and(|e| e.field.covers_times(anchor_times))
    }

    /// How much of a lookup the cache could serve without a fresh sweep:
    /// `(hit, resumable_from)` — `hit` is true when every anchor time is
    /// snapshotted, otherwise `resumable_from` is the cached floor the
    /// sweep could extend down from (when all missing times lie below it).
    /// The planner uses this to cost cache residency without mutating the
    /// cache.
    pub fn residency(
        &self,
        model: usize,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
    ) -> (bool, Option<u32>) {
        match self.entries.get(&CacheKey::of(model, chain, window)) {
            Some(entry) => {
                let missing: Vec<u32> = anchor_times
                    .iter()
                    .copied()
                    .filter(|&t| !entry.field.has_snapshot(t))
                    .collect();
                if missing.is_empty() {
                    (true, entry.field.min_snapshot_time())
                } else if entry
                    .field
                    .min_snapshot_time()
                    .is_some_and(|min| missing.iter().all(|&t| t < min))
                {
                    (false, entry.field.min_snapshot_time())
                } else {
                    (false, None)
                }
            }
            None => (false, None),
        }
    }

    /// The backward field of `(model, window)` with snapshots at every time
    /// in `anchor_times`, computing, extending or reusing as needed.
    ///
    /// The key includes the chain's identity (address + shape), so one
    /// cache can safely be shared across databases: a different chain under
    /// the same model index misses instead of serving the wrong field.
    pub fn get_or_compute<'c>(
        &'c mut self,
        model: usize,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<&'c F> {
        self.get_or_compute_entry(model, chain, window, anchor_times, config, stats)
            .map(|arc| arc.as_ref())
    }

    /// As [`FieldCache::get_or_compute_shared`], but designed for
    /// **concurrent** callers sharing the cache behind a mutex: the lock
    /// is held only to probe and to install — the backward sweep itself
    /// (fresh or suffix extension of a cloned entry) runs **outside** the
    /// lock, so a burst of asynchronously submitted queries over distinct
    /// windows sweeps in parallel instead of convoying on the cache.
    ///
    /// Two racing callers that miss on the same key may both sweep (the
    /// later install wins; outstanding `Arc` views stay valid) — wasted
    /// work, never a wrong answer, and sequentially the hit/miss
    /// accounting is identical to [`FieldCache::get_or_compute_shared`].
    pub fn get_or_compute_shared_concurrent(
        cache: &std::sync::Mutex<Self>,
        model: usize,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<Arc<F>> {
        let key = CacheKey::of(model, chain, window);
        let probe = {
            let mut cache = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            cache.probe(&key, anchor_times, stats)
        };
        match probe {
            Probe::Ready(field) => Ok(field),
            Probe::Extend { base, missing } => {
                let mut field = (*base).clone();
                field.extend_field_down(chain, window, &missing, config, stats)?;
                let mut cache = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                Ok(cache.install(key, field))
            }
            Probe::Compute(times) => {
                let field = F::compute_field(chain, window, &times, config, stats)?;
                let mut cache = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                Ok(cache.install(key, field))
            }
        }
    }

    /// The lock-held half of
    /// [`FieldCache::get_or_compute_shared_concurrent`]: classifies the
    /// lookup, counts it, and returns any work to do outside the lock.
    fn probe(&mut self, key: &CacheKey, anchor_times: &[u32], stats: &mut EvalStats) -> Probe<F> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(key) {
            Some(entry) => {
                let missing: Vec<u32> = anchor_times
                    .iter()
                    .copied()
                    .filter(|&t| !entry.field.has_snapshot(t))
                    .collect();
                if missing.is_empty() {
                    stats.cache_hits += 1;
                    entry.last_used = clock;
                    Probe::Ready(Arc::clone(&entry.field))
                } else if entry
                    .field
                    .min_snapshot_time()
                    .is_some_and(|min| missing.iter().all(|&t| t < min))
                {
                    // A partial hit: the suffix is reused, the extension
                    // below it is swept by the caller (outside the lock).
                    stats.cache_hits += 1;
                    entry.last_used = clock;
                    Probe::Extend { base: Arc::clone(&entry.field), missing }
                } else {
                    stats.cache_misses += 1;
                    let mut union: Vec<u32> = entry.field.snapshot_times();
                    union.extend_from_slice(anchor_times);
                    Probe::Compute(union)
                }
            }
            None => {
                stats.cache_misses += 1;
                Probe::Compute(anchor_times.to_vec())
            }
        }
    }

    /// The install half of
    /// [`FieldCache::get_or_compute_shared_concurrent`]: (re)inserts the
    /// swept field under `key` and returns the shared handle.
    fn install(&mut self, key: CacheKey, field: F) -> Arc<F> {
        self.clock += 1;
        let clock = self.clock;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        let field = Arc::new(field);
        self.entries.insert(key, CacheEntry { field: Arc::clone(&field), last_used: clock });
        field
    }

    /// As [`FieldCache::get_or_compute`], returning a cheap shared handle
    /// to the cached field.
    ///
    /// This is the lookup the shared-field plans perform behind a lock:
    /// the `Arc` lets the plan release the cache immediately and hand the
    /// workers read-only views; a later suffix extension of the entry
    /// copies-on-write, so outstanding views are never mutated.
    pub fn get_or_compute_shared(
        &mut self,
        model: usize,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<Arc<F>> {
        self.get_or_compute_entry(model, chain, window, anchor_times, config, stats).map(Arc::clone)
    }

    /// The lookup/compute/extend state machine shared by both accessors.
    fn get_or_compute_entry<'c>(
        &'c mut self,
        model: usize,
        chain: &MarkovChain,
        window: &QueryWindow,
        anchor_times: &[u32],
        config: &EngineConfig,
        stats: &mut EvalStats,
    ) -> Result<&'c Arc<F>> {
        let key = CacheKey::of(model, chain, window);
        self.clock += 1;
        let clock = self.clock;

        let lookup = match self.entries.get(&key) {
            Some(entry) => {
                let missing: Vec<u32> = anchor_times
                    .iter()
                    .copied()
                    .filter(|&t| !entry.field.has_snapshot(t))
                    .collect();
                if missing.is_empty() {
                    Lookup::Hit
                } else if entry
                    .field
                    .min_snapshot_time()
                    .is_some_and(|min| missing.iter().all(|&t| t < min))
                {
                    Lookup::Extend(missing)
                } else {
                    // Times above the sweep's floor were never snapshotted;
                    // recompute the union so nothing already served is lost.
                    let mut union: Vec<u32> = entry.field.snapshot_times();
                    union.extend_from_slice(anchor_times);
                    Lookup::Compute(union)
                }
            }
            None => Lookup::Compute(anchor_times.to_vec()),
        };

        match lookup {
            Lookup::Hit => {
                stats.cache_hits += 1;
                let entry = self
                    .entries
                    .get_mut(&key)
                    .ok_or(QueryError::internal("a cache hit means the entry exists"))?;
                entry.last_used = clock;
            }
            Lookup::Extend(missing) => {
                // A partial hit: the (min, t_end] suffix is reused, only
                // the extension below it is swept. `make_mut` clones first
                // if a previous query still holds a shared view.
                stats.cache_hits += 1;
                let entry = self
                    .entries
                    .get_mut(&key)
                    .ok_or(QueryError::internal("a cache hit means the entry exists"))?;
                Arc::make_mut(&mut entry.field)
                    .extend_field_down(chain, window, &missing, config, stats)?;
                entry.last_used = clock;
            }
            Lookup::Compute(times) => {
                stats.cache_misses += 1;
                let field = F::compute_field(chain, window, &times, config, stats)?;
                if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
                    self.evict_lru();
                }
                self.entries
                    .insert(key.clone(), CacheEntry { field: Arc::new(field), last_used: clock });
            }
        }
        self.entries
            .get(&key)
            .map(|entry| &entry.field)
            .ok_or(QueryError::internal("every probe branch installs the entry"))
    }

    fn evict_lru(&mut self) {
        if let Some(victim) =
            self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
        {
            self.entries.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_markov::CsrMatrix;
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    fn window(t_hi: u32) -> QueryWindow {
        QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, t_hi)).unwrap()
    }

    #[test]
    fn repeated_lookup_hits_without_backward_work() {
        let chain = paper_chain();
        let mut cache = BackwardFieldCache::new(4);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let w = window(3);
        let first = cache
            .get_or_compute(0, &chain, &w, &[0], &config, &mut stats)
            .unwrap()
            .at(0)
            .unwrap()
            .clone();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
        let sweeps_after_miss = stats.backward_steps;
        let again = cache
            .get_or_compute(0, &chain, &w, &[0], &config, &mut stats)
            .unwrap()
            .at(0)
            .unwrap()
            .clone();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.backward_steps, sweeps_after_miss, "a hit performs no sweep");
        assert!(first.approx_eq(&again, 0.0), "hits return the identical field");
        assert!(cache.contains(0, &chain, &w, &[0]));
        assert!(!cache.contains(0, &chain, &w, &[1]));
        assert!(!cache.contains(1, &chain, &w, &[0]));
    }

    #[test]
    fn extension_reuses_the_suffix_sweep() {
        let chain = paper_chain();
        let mut cache = BackwardFieldCache::new(4);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let w = window(3);
        // First query anchors at t=2: sweep 3 → 2 (one step).
        cache.get_or_compute(0, &chain, &w, &[2], &config, &mut stats).unwrap();
        assert_eq!(stats.backward_steps, 1);
        // Second query anchors at t=0: extend 2 → 0 (two more steps), a
        // partial hit rather than a 3-step recomputation.
        let field = cache.get_or_compute(0, &chain, &w, &[0], &config, &mut stats).unwrap();
        assert_eq!(stats.backward_steps, 3);
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        // The extended field matches Example 2 exactly.
        let h0 = field.at(0).unwrap();
        assert!((h0.get(1) - 0.864).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let chain = paper_chain();
        let mut cache = BackwardFieldCache::new(2);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let (w3, w4, w5) = (window(3), window(4), window(5));
        cache.get_or_compute(0, &chain, &w3, &[0], &config, &mut stats).unwrap();
        cache.get_or_compute(0, &chain, &w4, &[0], &config, &mut stats).unwrap();
        // Touch w3 so w4 becomes the least recently used...
        cache.get_or_compute(0, &chain, &w3, &[0], &config, &mut stats).unwrap();
        // ...then inserting a third window must evict w4, not w3.
        cache.get_or_compute(0, &chain, &w5, &[0], &config, &mut stats).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(0, &chain, &w3, &[0]));
        assert!(!cache.contains(0, &chain, &w4, &[0]));
        assert!(cache.contains(0, &chain, &w5, &[0]));
        // Re-requesting the evicted window is a fresh miss.
        cache.get_or_compute(0, &chain, &w4, &[0], &config, &mut stats).unwrap();
        assert_eq!(stats.cache_misses, 4);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 2);
        assert_eq!(BackwardFieldCache::new(0).capacity(), 1, "capacity clamps to 1");
    }

    #[test]
    fn distinct_chains_under_the_same_model_index_do_not_collide() {
        // One cache shared across two databases: the second chain must miss
        // and get its own field, not the first chain's.
        let moving = paper_chain();
        let frozen = MarkovChain::from_csr(CsrMatrix::identity(3)).unwrap();
        let mut cache = BackwardFieldCache::new(4);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let w = window(3);
        let from_moving = cache
            .get_or_compute(0, &moving, &w, &[0], &config, &mut stats)
            .unwrap()
            .at(0)
            .unwrap()
            .clone();
        let from_frozen = cache
            .get_or_compute(0, &frozen, &w, &[0], &config, &mut stats)
            .unwrap()
            .at(0)
            .unwrap()
            .clone();
        assert_eq!(stats.cache_misses, 2, "different chains must not share an entry");
        assert!((from_moving.get(1) - 0.864).abs() < 1e-12);
        // Under the identity chain, worlds inside the window stay there
        // with certainty and worlds outside never enter.
        assert_eq!(from_frozen.get(1), 1.0);
        assert_eq!(from_frozen.get(2), 0.0);
    }

    #[test]
    fn anchors_between_snapshots_force_a_union_recompute() {
        let chain = paper_chain();
        let mut cache = BackwardFieldCache::new(4);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let w = window(3);
        cache.get_or_compute(0, &chain, &w, &[0], &config, &mut stats).unwrap();
        // t=1 lies above the floor snapshot set {0}? No — 1 > 0, and 1 was
        // never snapshotted, so the entry cannot be extended downward: it
        // must be recomputed with the union {0, 1}.
        let field = cache.get_or_compute(0, &chain, &w, &[1], &config, &mut stats).unwrap();
        assert!(field.at(0).is_some(), "union keeps previously served anchors");
        assert!(field.at(1).is_some());
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 2));
        // Both anchors now hit.
        cache.get_or_compute(0, &chain, &w, &[0, 1], &config, &mut stats).unwrap();
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn residency_probe_does_not_mutate() {
        let chain = paper_chain();
        let mut cache = BackwardFieldCache::new(4);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();
        let w = window(3);
        assert_eq!(cache.residency(0, &chain, &w, &[0]), (false, None));
        cache.get_or_compute(0, &chain, &w, &[2], &config, &mut stats).unwrap();
        // Full hit at the snapshotted time, extendable below it, dead
        // between floor and t_end.
        assert_eq!(cache.residency(0, &chain, &w, &[2]), (true, Some(2)));
        assert_eq!(cache.residency(0, &chain, &w, &[0]), (false, Some(2)));
        assert_eq!(cache.residency(0, &chain, &w, &[3]), (false, None));
        // Probing changed no counters and swept nothing.
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
    }

    #[test]
    fn ktimes_cache_hits_extends_and_matches_fresh_sweeps() {
        let chain = paper_chain();
        let w = window(3);
        let mut cache = KTimesFieldCache::new(4);
        let mut stats = EvalStats::new();
        let config = EngineConfig::default();

        // Miss, then pure hit: no further backward level steps.
        cache.get_or_compute(0, &chain, &w, &[2], &config, &mut stats).unwrap();
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
        let after_miss = stats.backward_steps;
        assert!(after_miss > 0);
        cache.get_or_compute(0, &chain, &w, &[2], &config, &mut stats).unwrap();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.backward_steps, after_miss, "a hit performs no level sweep");

        // Extension down to t=0 must be bit-identical to a fresh sweep
        // over both anchor times.
        let extended = cache
            .get_or_compute(0, &chain, &w, &[0], &config, &mut stats)
            .unwrap()
            .at(0)
            .unwrap()
            .clone();
        assert_eq!((stats.cache_hits, stats.cache_misses), (2, 1));
        let fresh = KTimesBackwardField::compute(&chain, &w, &[0, 2], &mut EvalStats::new())
            .unwrap()
            .at(0)
            .unwrap()
            .clone();
        assert_eq!(extended.len(), fresh.len());
        for (a, b) in extended.iter().zip(&fresh) {
            for s in 0..3 {
                assert_eq!(a.get(s).to_bits(), b.get(s).to_bits());
            }
        }
    }
}
