//! Evaluation statistics (operation counters).
//!
//! The paper's complexity claims are stated in transitions and touched
//! states (`O(|D|·|S_reach|²·δt)` for OB vs `O(|D| + |S_reach|²·δt)` for
//! QB). These counters make the claims observable: tests assert that QB
//! performs a number of transitions independent of `|D|` while OB scales
//! linearly, without relying on wall-clock timing.

/// Counters accumulated during query evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalStats {
    /// Forward vector–matrix transitions performed.
    pub transitions: u64,
    /// Transition-matrix rows streamed during forward propagation. The
    /// batched kernel reads each touched row once per *batch* instead of
    /// once per object, so this is the counter that makes the batching win
    /// observable (cf. `ust_markov::BatchStepStats`).
    pub rows_traversed: u64,
    /// Transition-matrix entries multiplied into an accumulator during
    /// forward propagation. Unlike `rows_traversed` this is invariant
    /// across kernel choices (every batching mode performs the same
    /// floating-point work), so `entries_touched / execute_time` is the
    /// matrix-entry *throughput* the serving calibration and the plan cost
    /// model reason about.
    pub entries_touched: u64,
    /// Backward vector–matrix transitions performed (query-based passes).
    pub backward_steps: u64,
    /// Objects whose probability was computed.
    pub objects_evaluated: u64,
    /// Objects skipped by a prefilter or cluster bound.
    pub objects_pruned: u64,
    /// Candidate objects the spatio-temporal index handed to the engines —
    /// the post-pruning `|D∩|` a query actually dispatched on. Without an
    /// index pass this equals the resolved candidate set size.
    pub candidates_examined: u64,
    /// Candidate objects discarded by the spatio-temporal index before any
    /// matrix work (provably `P∃ = 0`).
    pub candidates_pruned: u64,
    /// Propagations cut short because all worlds were already decided.
    pub early_terminations: u64,
    /// Backward-field cache lookups answered without a fresh sweep
    /// (including suffix-extended partial hits).
    pub cache_hits: u64,
    /// Backward-field cache lookups that required a full backward sweep.
    pub cache_misses: u64,
    /// `(model, window)` backward fields computed (or fetched from the
    /// cache) exactly once by a shared-field plan and handed to the worker
    /// fan-out as read-only views — sweeps that a per-worker evaluation
    /// would have repeated once per worker touching the model.
    pub fields_shared: u64,
    /// Total probability mass dropped by ε-pruning (bounds the error).
    pub pruned_mass: f64,
}

impl EvalStats {
    /// A fresh zeroed counter set.
    pub fn new() -> Self {
        EvalStats::default()
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &EvalStats) {
        self.transitions += other.transitions;
        self.rows_traversed += other.rows_traversed;
        self.entries_touched += other.entries_touched;
        self.backward_steps += other.backward_steps;
        self.objects_evaluated += other.objects_evaluated;
        self.objects_pruned += other.objects_pruned;
        self.candidates_examined += other.candidates_examined;
        self.candidates_pruned += other.candidates_pruned;
        self.early_terminations += other.early_terminations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.fields_shared += other.fields_shared;
        self.pruned_mass += other.pruned_mass;
    }

    /// Total matrix transitions of either direction.
    pub fn total_steps(&self) -> u64 {
        self.transitions + self.backward_steps
    }

    /// The counters accumulated since `before` was snapshotted — the
    /// per-query delta [`crate::serving::Metrics`] attributes to one
    /// execution when the caller reuses a long-lived `EvalStats`.
    /// Saturating, so a mismatched snapshot cannot panic in release or
    /// debug builds.
    pub fn delta_since(&self, before: &EvalStats) -> EvalStats {
        EvalStats {
            transitions: self.transitions.saturating_sub(before.transitions),
            rows_traversed: self.rows_traversed.saturating_sub(before.rows_traversed),
            entries_touched: self.entries_touched.saturating_sub(before.entries_touched),
            backward_steps: self.backward_steps.saturating_sub(before.backward_steps),
            objects_evaluated: self.objects_evaluated.saturating_sub(before.objects_evaluated),
            objects_pruned: self.objects_pruned.saturating_sub(before.objects_pruned),
            candidates_examined: self
                .candidates_examined
                .saturating_sub(before.candidates_examined),
            candidates_pruned: self.candidates_pruned.saturating_sub(before.candidates_pruned),
            early_terminations: self.early_terminations.saturating_sub(before.early_terminations),
            cache_hits: self.cache_hits.saturating_sub(before.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(before.cache_misses),
            fields_shared: self.fields_shared.saturating_sub(before.fields_shared),
            pruned_mass: (self.pruned_mass - before.pruned_mass).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = EvalStats { transitions: 3, backward_steps: 1, ..Default::default() };
        let b = EvalStats {
            transitions: 2,
            rows_traversed: 9,
            entries_touched: 21,
            backward_steps: 4,
            objects_evaluated: 7,
            objects_pruned: 1,
            candidates_examined: 6,
            candidates_pruned: 5,
            early_terminations: 2,
            cache_hits: 3,
            cache_misses: 2,
            fields_shared: 4,
            pruned_mass: 0.5,
        };
        a.merge(&b);
        assert_eq!(a.transitions, 5);
        assert_eq!(a.rows_traversed, 9);
        assert_eq!(a.entries_touched, 21);
        assert_eq!(a.backward_steps, 5);
        assert_eq!(a.objects_evaluated, 7);
        assert_eq!(a.objects_pruned, 1);
        assert_eq!(a.candidates_examined, 6);
        assert_eq!(a.candidates_pruned, 5);
        assert_eq!(a.early_terminations, 2);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.cache_misses, 2);
        assert_eq!(a.fields_shared, 4);
        assert_eq!(a.total_steps(), 10);
        assert!((a.pruned_mass - 0.5).abs() < 1e-12);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(EvalStats::new(), EvalStats::default());
        assert_eq!(EvalStats::new().total_steps(), 0);
    }

    #[test]
    fn delta_since_subtracts_a_snapshot() {
        let before = EvalStats { transitions: 3, cache_hits: 1, ..Default::default() };
        let mut after = before.clone();
        after.transitions += 4;
        after.backward_steps += 2;
        after.candidates_pruned += 3;
        after.cache_hits += 1;
        after.pruned_mass += 0.25;
        let delta = after.delta_since(&before);
        assert_eq!(delta.transitions, 4);
        assert_eq!(delta.backward_steps, 2);
        assert_eq!(delta.candidates_pruned, 3);
        assert_eq!(delta.cache_hits, 1);
        assert!((delta.pruned_mass - 0.25).abs() < 1e-12);
        // A mismatched (newer) snapshot saturates instead of wrapping.
        assert_eq!(before.delta_since(&after).transitions, 0);
    }
}
