//! Error types for query specification and evaluation.

use std::fmt;

use ust_markov::MarkovError;

/// Errors raised while building or evaluating probabilistic
/// spatio-temporal queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A lower-level linear-algebra/Markov error.
    Markov(MarkovError),
    /// The query window selects no states.
    EmptySpatialWindow,
    /// The query window selects no timestamps.
    EmptyTemporalWindow,
    /// The object has no observations at all.
    NoObservations,
    /// Two observations share the same timestamp.
    DuplicateObservation {
        /// The conflicting timestamp.
        time: u32,
    },
    /// The query window starts before the object's anchor observation, so a
    /// forward pass from that observation cannot cover it.
    WindowBeforeObservation {
        /// Earliest query timestamp.
        window_start: u32,
        /// Anchor observation timestamp.
        observation: u32,
    },
    /// The object references a transition model the database doesn't hold.
    UnknownModel {
        /// The offending model index.
        model: usize,
    },
    /// The object's distribution dimension differs from the model's.
    ModelDimensionMismatch {
        /// States in the model.
        model_states: usize,
        /// Dimension of the object's distribution.
        object_states: usize,
    },
    /// The observations made an evaluated scenario impossible (all possible
    /// worlds eliminated — zero joint likelihood).
    ImpossibleEvidence,
    /// Exhaustive possible-world enumeration exceeded its work budget
    /// (`O(|S|^δt)` worlds — the blow-up the paper's framework avoids).
    ExhaustiveBudgetExceeded {
        /// The budget that was exceeded (expanded path prefixes).
        budget: u64,
    },
    /// A propagation batch's row count is not a multiple of its per-object
    /// group size (every object must contribute the same number of rows).
    MalformedBatch {
        /// Total rows handed to the batch.
        rows: usize,
        /// Rows per object group.
        group_size: usize,
    },
    /// A query spec was built without a window (`QueryBuilder::window` was
    /// never called).
    MissingWindow,
    /// A threshold decorator's τ is not a probability in `[0, 1]`.
    InvalidThreshold {
        /// The offending threshold.
        tau: f64,
    },
    /// A query restricted to an explicit object subset names an id the
    /// database does not contain.
    UnknownObject {
        /// The missing object id.
        id: u64,
    },
    /// An asynchronously submitted query panicked on its worker; the panic
    /// was converted into this error instead of poisoning the pool.
    AsyncQueryPanicked,
    /// An asynchronously submitted query's job was dropped without ever
    /// running (its pool shut down mid-burst, or the job was discarded
    /// during an unwind); the ticket is completed with this error so
    /// `wait` can never block forever on abandoned work.
    AsyncQueryDropped,
    /// The processor's admission bound rejected a submission: the number
    /// of pending asynchronous queries already equals
    /// `EngineConfig::max_queue_depth`. The caller is never blocked —
    /// retry later, shed the request, or raise the bound.
    QueueFull {
        /// The configured pending-submission bound that was hit.
        limit: usize,
    },
    /// The query was cancelled via `QueryTicket::cancel` before it
    /// produced an answer.
    Cancelled,
    /// The query spent longer than `EngineConfig::default_deadline`
    /// between submission and execution, so the worker shed it instead of
    /// evaluating a request the caller has likely abandoned.
    DeadlineExceeded,
    /// An engine-internal invariant did not hold — always a bug in the
    /// engine, never in the caller's input. Surfaced as an error instead
    /// of a panic so one corrupted query cannot take down a serving
    /// worker; the message names the violated invariant for the bug
    /// report.
    Internal {
        /// The invariant that was violated.
        invariant: &'static str,
    },
}

impl QueryError {
    /// An [`QueryError::Internal`] naming the violated invariant.
    pub(crate) fn internal(invariant: &'static str) -> QueryError {
        QueryError::Internal { invariant }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Markov(e) => write!(f, "markov substrate error: {e}"),
            QueryError::EmptySpatialWindow => write!(f, "query window selects no states"),
            QueryError::EmptyTemporalWindow => write!(f, "query window selects no timestamps"),
            QueryError::NoObservations => write!(f, "object has no observations"),
            QueryError::DuplicateObservation { time } => {
                write!(f, "duplicate observation at time {time}")
            }
            QueryError::WindowBeforeObservation { window_start, observation } => write!(
                f,
                "query window starts at {window_start}, before the anchor observation at {observation}"
            ),
            QueryError::UnknownModel { model } => write!(f, "unknown model index {model}"),
            QueryError::ModelDimensionMismatch { model_states, object_states } => write!(
                f,
                "object distribution has {object_states} states but the model has {model_states}"
            ),
            QueryError::ImpossibleEvidence => {
                write!(f, "observations are jointly impossible under the model")
            }
            QueryError::ExhaustiveBudgetExceeded { budget } => {
                write!(f, "exhaustive enumeration exceeded its budget of {budget} expansions")
            }
            QueryError::MalformedBatch { rows, group_size } => {
                write!(f, "batch of {rows} rows is not divisible into groups of {group_size}")
            }
            QueryError::MissingWindow => {
                write!(f, "query spec has no window (call QueryBuilder::window)")
            }
            QueryError::InvalidThreshold { tau } => {
                write!(f, "threshold τ = {tau} is not a probability in [0, 1]")
            }
            QueryError::UnknownObject { id } => {
                write!(f, "query names object id {id}, which the database does not contain")
            }
            QueryError::AsyncQueryPanicked => {
                write!(f, "asynchronously submitted query panicked on its worker")
            }
            QueryError::AsyncQueryDropped => {
                write!(f, "asynchronously submitted query was dropped before it ran")
            }
            QueryError::QueueFull { limit } => {
                write!(f, "submission rejected: {limit} asynchronous queries already pending")
            }
            QueryError::Cancelled => write!(f, "query was cancelled before completion"),
            QueryError::DeadlineExceeded => {
                write!(f, "query exceeded its deadline before execution started")
            }
            QueryError::Internal { invariant } => {
                write!(f, "engine invariant violated (this is a bug): {invariant}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MarkovError> for QueryError {
    fn from(e: MarkovError) -> Self {
        QueryError::Markov(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = QueryError::from(MarkovError::ZeroMass);
        assert!(e.to_string().contains("zero"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&QueryError::EmptySpatialWindow).is_none());
        assert!(QueryError::WindowBeforeObservation { window_start: 3, observation: 7 }
            .to_string()
            .contains('7'));
        assert!(QueryError::ModelDimensionMismatch { model_states: 4, object_states: 5 }
            .to_string()
            .contains('5'));
        assert!(QueryError::UnknownModel { model: 2 }.to_string().contains('2'));
        assert!(QueryError::DuplicateObservation { time: 9 }.to_string().contains('9'));
        assert!(!QueryError::ImpossibleEvidence.to_string().is_empty());
        assert!(!QueryError::NoObservations.to_string().is_empty());
        assert!(!QueryError::EmptyTemporalWindow.to_string().is_empty());
        assert!(QueryError::QueueFull { limit: 16 }.to_string().contains("16"));
        assert!(!QueryError::AsyncQueryDropped.to_string().is_empty());
        assert!(!QueryError::Cancelled.to_string().is_empty());
        assert!(!QueryError::DeadlineExceeded.to_string().is_empty());
    }
}
