//! The spatio-temporal candidate index behind the planner's prefilter.
//!
//! Combines three pruning structures over one database snapshot:
//!
//! 1. the [`ConePrefilter`]'s R-tree over object reachability cones
//!    (geometry: which objects can possibly reach the query region by
//!    `t_end`),
//! 2. an [`IntervalIndex`] over object observation spans (time: which
//!    objects are alive during the query window — spans are right-extended
//!    to `u32::MAX` because the motion model extrapolates indefinitely past
//!    the last observation, so the temporal test reduces to "has the object
//!    been observed by `t_end`"), and
//! 3. the interval-envelope [`ModelCluster`]s used by the clustered
//!    threshold protocol when the database hosts heterogeneous models.
//!
//! The index is built lazily per snapshot via
//! [`TrajectoryDatabase::spatial_index`] and invalidated copy-on-write:
//! snapshots taken by async `submit` keep the index they were built with,
//! while any mutation of the source database drops it.
//!
//! [`TrajectoryDatabase::spatial_index`]: crate::database::TrajectoryDatabase::spatial_index

use std::fmt;
use std::sync::Arc;

use ust_space::{IntervalIndex, Rect, StateSpace};

use crate::cluster::{greedy_clusters, ModelCluster};
use crate::database::TrajectoryDatabase;
use crate::prefilter::ConePrefilter;
use crate::query::QueryWindow;

/// Greedy model-clustering budget, expressed as total envelope width per
/// state (row). Clusters only form between near-identical models; anything
/// wider stays a singleton and is always decided exactly.
const CLUSTER_WIDTH_PER_STATE: f64 = 0.1;

/// The combined cone + interval + cluster index over one database snapshot.
pub struct SpatioTemporalIndex {
    cones: ConePrefilter,
    spans: IntervalIndex,
    space: Arc<dyn StateSpace + Send + Sync>,
    clusters: Vec<ModelCluster>,
    num_objects: usize,
}

impl fmt::Debug for SpatioTemporalIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpatioTemporalIndex")
            .field("num_objects", &self.num_objects)
            .field("max_anchor_time", &self.max_anchor_time())
            .field("clusters", &self.clusters.len())
            .finish_non_exhaustive()
    }
}

impl SpatioTemporalIndex {
    /// Builds the index for all objects of `db` embedded in `space`.
    pub fn build(db: &TrajectoryDatabase, space: Arc<dyn StateSpace + Send + Sync>) -> Self {
        let cones = ConePrefilter::build(db, space.as_ref());
        let spans =
            IntervalIndex::build(db.objects().iter().map(|o| (o.anchor().time(), u32::MAX)));
        // Envelope clusters only pay off with heterogeneous models; the
        // models are valid by construction, so a build error (impossible
        // for database-resident model indices) just disables the protocol.
        let clusters = if db.models().len() > 1 {
            let width = CLUSTER_WIDTH_PER_STATE * db.num_states() as f64;
            greedy_clusters(db, width).unwrap_or_default()
        } else {
            Vec::new()
        };
        SpatioTemporalIndex { cones, spans, space, clusters, num_objects: db.len() }
    }

    /// Number of objects the index was built over.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Latest first-observation time over all indexed objects (0 when the
    /// database is empty). Windows starting at or after this instant are
    /// guaranteed to pass per-object window validation, which is what
    /// licenses answering from pruned candidate sets without touching the
    /// pruned objects.
    pub fn max_anchor_time(&self) -> u32 {
        self.spans.max_start().unwrap_or(0)
    }

    /// The embedding the index was built against.
    pub fn space(&self) -> &Arc<dyn StateSpace + Send + Sync> {
        &self.space
    }

    /// Interval-envelope clusters for the clustered threshold protocol
    /// (empty for single-model databases).
    pub fn clusters(&self) -> &[ModelCluster] {
        &self.clusters
    }

    /// Bounding rectangle of the window's state set under the embedding.
    pub fn window_rect(&self, window: &QueryWindow) -> Rect {
        let mut rect = Rect::empty();
        for s in window.states().to_indices() {
            rect = rect.union(&Rect::point(self.space.location(s)));
        }
        rect
    }

    /// Database indices of objects that *may* satisfy `window` (sorted):
    /// alive during the window's time span and whose reachability cone
    /// touches the window's bounding rectangle. Everything else is
    /// guaranteed to have `P∃ = 0`. Conservative by construction — never
    /// discards an object with non-zero probability.
    pub fn candidates(&self, window: &QueryWindow) -> Vec<usize> {
        // Temporal pass first (cheapest): objects observed only after the
        // window ends cannot be in it. The common case — every span has
        // begun by t_end — is detected in O(1) and skips materialisation.
        let alive = match self.spans.max_start() {
            None => return Vec::new(),
            Some(s) if s <= window.t_end() => None,
            Some(_) => Some(self.spans.overlapping(window.t_start(), window.t_end())),
        };
        let geometric = self.cones.candidates(&self.window_rect(window), window);
        match alive {
            None => geometric,
            Some(alive) => intersect_sorted(&geometric, &alive),
        }
    }
}

/// Intersection of two ascending-sorted index sets.
pub(crate) fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::UncertainObject;
    use crate::observation::Observation;
    use ust_markov::{CooBuilder, MarkovChain};
    use ust_space::{LineSpace, TimeSet};

    fn line_chain(n: usize) -> MarkovChain {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            let left = i.saturating_sub(1);
            let right = (i + 1).min(n - 1);
            if left == right {
                b.push(i, i, 1.0).unwrap();
            } else {
                b.push(i, left, 0.5).unwrap();
                b.push(i, right, 0.5).unwrap();
            }
        }
        MarkovChain::from_weights(b.build()).unwrap()
    }

    fn db_with_anchors(n: usize, anchors: &[(u32, usize)]) -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new(line_chain(n));
        for (i, &(t, s)) in anchors.iter().enumerate() {
            db.insert(UncertainObject::with_single_observation(
                i as u64,
                Observation::exact(t, n, s).unwrap(),
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn candidates_combine_time_and_geometry() {
        let n = 50;
        let db = db_with_anchors(n, &[(0, 10), (0, 25), (8, 21), (0, 49)]);
        let index = SpatioTemporalIndex::build(&db, Arc::new(LineSpace::new(n)));
        let window = QueryWindow::from_states(n, 20usize..=22, TimeSet::interval(3, 5)).unwrap();
        // Object 0 (too far), object 3 (too far) are pruned geometrically;
        // object 2 is pruned temporally (first observed at t = 8 > t_end).
        assert_eq!(index.candidates(&window), vec![1]);
        assert_eq!(index.max_anchor_time(), 8);
        assert_eq!(index.num_objects(), 4);
    }

    #[test]
    fn empty_database_has_no_candidates() {
        let db = TrajectoryDatabase::new(line_chain(10));
        let index = SpatioTemporalIndex::build(&db, Arc::new(LineSpace::new(10)));
        let window = QueryWindow::from_states(10, [5usize], TimeSet::at(1)).unwrap();
        assert!(index.candidates(&window).is_empty());
        assert_eq!(index.max_anchor_time(), 0);
    }

    #[test]
    fn single_model_builds_no_clusters() {
        let db = db_with_anchors(20, &[(0, 5)]);
        let index = SpatioTemporalIndex::build(&db, Arc::new(LineSpace::new(20)));
        assert!(index.clusters().is_empty());
    }

    #[test]
    fn intersect_sorted_is_set_intersection() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 9], &[0, 3, 4, 5, 10]), vec![3, 5]);
        assert!(intersect_sorted(&[], &[1, 2]).is_empty());
        assert!(intersect_sorted(&[1, 2], &[]).is_empty());
    }

    #[test]
    fn window_rect_covers_window_states() {
        let db = db_with_anchors(50, &[(0, 10)]);
        let index = SpatioTemporalIndex::build(&db, Arc::new(LineSpace::new(50)));
        let window = QueryWindow::from_states(50, 20usize..=22, TimeSet::at(1)).unwrap();
        let rect = index.window_rect(&window);
        assert_eq!((rect.min.x, rect.max.x), (20.0, 22.0));
    }
}
