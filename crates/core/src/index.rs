//! The spatio-temporal candidate index behind the planner's prefilter.
//!
//! Combines three pruning structures over one database snapshot:
//!
//! 1. the [`ConePrefilter`]'s R-tree over object reachability cones
//!    (geometry: which objects can possibly reach the query region by
//!    `t_end`),
//! 2. an [`IntervalIndex`] over object observation spans (time: which
//!    objects are alive during the query window — spans are right-extended
//!    to `u32::MAX` because the motion model extrapolates indefinitely past
//!    the last observation, so the temporal test reduces to "has the object
//!    been observed by `t_end`"), and
//! 3. the interval-envelope [`ModelCluster`]s used by the clustered
//!    threshold protocol when the database hosts heterogeneous models.
//!
//! The index is built lazily per snapshot via
//! [`TrajectoryDatabase::spatial_index`] and maintained copy-on-write:
//! snapshots taken by async `submit` keep the index they were built with,
//! while mutations of the source database update it **incrementally** — the
//! bulk-built structures stay immutable behind a shared `Arc` and mutated
//! or inserted objects live in a small sorted *overlay* tested with exactly
//! the same cone and liveness predicates ([`SpatioTemporalIndex::with_updated`]).
//! Once the overlay outgrows [`SpatioTemporalIndex::wants_compaction`]'s
//! threshold the writer drops the index and the next read rebuilds it in
//! bulk (compaction).
//!
//! [`TrajectoryDatabase::spatial_index`]: crate::database::TrajectoryDatabase::spatial_index

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use ust_space::{IntervalIndex, Point2, Rect, StateSpace};

use crate::cluster::{greedy_clusters, ModelCluster};
use crate::database::TrajectoryDatabase;
use crate::object::UncertainObject;
use crate::prefilter::{anchor_geometry, cone_radius, ConePrefilter};
use crate::query::QueryWindow;

/// Greedy model-clustering budget, expressed as total envelope width per
/// state (row). Clusters only form between near-identical models; anything
/// wider stays a singleton and is always decided exactly.
const CLUSTER_WIDTH_PER_STATE: f64 = 0.1;

/// Overlay entries per base object below which incremental updates keep
/// extending the overlay; above it the writer compacts (full rebuild).
const OVERLAY_COMPACTION_FRACTION: usize = 8;

/// Overlay size the compaction threshold never drops below, so small
/// databases still amortize a handful of updates before rebuilding.
const OVERLAY_COMPACTION_MIN: usize = 16;

/// The immutable bulk-built portion of the index, `Arc`-shared between an
/// index and its incrementally updated successors.
struct IndexBase {
    cones: ConePrefilter,
    spans: IntervalIndex,
    space: Arc<dyn StateSpace + Send + Sync>,
    clusters: Vec<ModelCluster>,
    /// Number of objects covered by the bulk structures; overlay keys at or
    /// beyond this are insertions, keys below it shadow stale base entries.
    len: usize,
}

/// Cone geometry of one object mutated or inserted after the bulk build.
#[derive(Debug, Clone, Copy)]
struct OverlayEntry {
    centroid: Point2,
    radius: f64,
    anchor_time: u32,
}

/// The combined cone + interval + cluster index over one database snapshot.
pub struct SpatioTemporalIndex {
    base: Arc<IndexBase>,
    /// Database indices whose geometry differs from the bulk build, sorted
    /// by index. Base results for these indices are stale and discarded;
    /// the overlay entry is tested with the exact cone + liveness
    /// predicates instead.
    overlay: BTreeMap<usize, OverlayEntry>,
    num_objects: usize,
}

impl fmt::Debug for SpatioTemporalIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpatioTemporalIndex")
            .field("num_objects", &self.num_objects)
            .field("overlay_len", &self.overlay.len())
            .field("max_anchor_time", &self.max_anchor_time())
            .field("clusters", &self.base.clusters.len())
            .finish_non_exhaustive()
    }
}

impl SpatioTemporalIndex {
    /// Builds the index for all objects of `db` embedded in `space`.
    pub fn build(db: &TrajectoryDatabase, space: Arc<dyn StateSpace + Send + Sync>) -> Self {
        let cones = ConePrefilter::build(db, space.as_ref());
        let spans =
            IntervalIndex::build(db.objects().iter().map(|o| (o.anchor().time(), u32::MAX)));
        // Envelope clusters only pay off with heterogeneous models; the
        // models are valid by construction, so a build error (impossible
        // for database-resident model indices) just disables the protocol.
        let clusters = if db.models().len() > 1 {
            let width = CLUSTER_WIDTH_PER_STATE * db.num_states() as f64;
            greedy_clusters(db, width).unwrap_or_default()
        } else {
            Vec::new()
        };
        SpatioTemporalIndex {
            base: Arc::new(IndexBase { cones, spans, space, clusters, len: db.len() }),
            overlay: BTreeMap::new(),
            num_objects: db.len(),
        }
    }

    /// A successor index in which the object at database index `idx` has
    /// the given (possibly new) geometry. The bulk structures are shared,
    /// only the overlay is copied, so an update costs O(overlay) instead of
    /// a rebuild. Handles both mutation (`idx` already covered) and
    /// insertion (`idx == num_objects()`).
    pub fn with_updated(&self, idx: usize, object: &UncertainObject) -> SpatioTemporalIndex {
        let (centroid, radius) = anchor_geometry(object, self.base.space.as_ref());
        let mut overlay = self.overlay.clone();
        overlay.insert(idx, OverlayEntry { centroid, radius, anchor_time: object.anchor().time() });
        SpatioTemporalIndex {
            base: Arc::clone(&self.base),
            overlay,
            num_objects: self.num_objects.max(idx + 1),
        }
    }

    /// True once the overlay has outgrown the point where linear overlay
    /// scans stop being cheaper than a bulk rebuild; the writer should drop
    /// the index and let the next read rebuild it.
    pub fn wants_compaction(&self) -> bool {
        self.overlay.len()
            >= OVERLAY_COMPACTION_MIN.max(self.base.len / OVERLAY_COMPACTION_FRACTION)
    }

    /// Number of objects mutated or inserted since the bulk build.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Number of objects the index covers (bulk build plus insertions).
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Latest first-observation time over all indexed objects (0 when the
    /// database is empty). Windows starting at or after this instant are
    /// guaranteed to pass per-object window validation, which is what
    /// licenses answering from pruned candidate sets without touching the
    /// pruned objects. Overlay anchors are monotone over the base entries
    /// they shadow (ingest never moves an anchor backwards), so the max of
    /// both sides is exact.
    pub fn max_anchor_time(&self) -> u32 {
        let base = self.base.spans.max_start().unwrap_or(0);
        let overlay = self.overlay.values().map(|e| e.anchor_time).max().unwrap_or(0);
        base.max(overlay)
    }

    /// The embedding the index was built against.
    pub fn space(&self) -> &Arc<dyn StateSpace + Send + Sync> {
        &self.base.space
    }

    /// Interval-envelope clusters for the clustered threshold protocol
    /// (empty for single-model databases). Clusters group *models*, not
    /// objects, so they survive object mutation unchanged.
    pub fn clusters(&self) -> &[ModelCluster] {
        &self.base.clusters
    }

    /// Bounding rectangle of the window's state set under the embedding.
    pub fn window_rect(&self, window: &QueryWindow) -> Rect {
        let mut rect = Rect::empty();
        for s in window.states().to_indices() {
            rect = rect.union(&Rect::point(self.base.space.location(s)));
        }
        rect
    }

    /// Database indices of objects that *may* satisfy `window` (sorted):
    /// alive during the window's time span and whose reachability cone
    /// touches the window's bounding rectangle. Everything else is
    /// guaranteed to have `P∃ = 0`. Conservative by construction — never
    /// discards an object with non-zero probability.
    pub fn candidates(&self, window: &QueryWindow) -> Vec<usize> {
        let base = self.base_candidates(window);
        if self.overlay.is_empty() {
            return base;
        }
        // Base hits for overlaid indices describe stale geometry — discard
        // them and re-test those objects from the overlay with the same
        // exact predicates the bulk path applies per anchor.
        let rect = self.window_rect(window);
        let t_end = window.t_end();
        let max_step = self.base.cones.max_step();
        let overlay_hits = self.overlay.iter().filter_map(|(&idx, e)| {
            let alive = e.anchor_time <= t_end;
            let reach = cone_radius(e.anchor_time, t_end, max_step) + e.radius;
            (alive && rect.distance_to_point(&e.centroid) <= reach).then_some(idx)
        });
        merge_sorted(base.into_iter().filter(|idx| !self.overlay.contains_key(idx)), overlay_hits)
    }

    /// Candidate pass over the immutable bulk structures only; indices
    /// shadowed by the overlay may appear and are filtered by the caller.
    fn base_candidates(&self, window: &QueryWindow) -> Vec<usize> {
        // Temporal pass first (cheapest): objects observed only after the
        // window ends cannot be in it. The common case — every span has
        // begun by t_end — is detected in O(1) and skips materialisation.
        let alive = match self.base.spans.max_start() {
            None => return Vec::new(),
            Some(s) if s <= window.t_end() => None,
            Some(_) => Some(self.base.spans.overlapping(window.t_start(), window.t_end())),
        };
        let geometric = self.base.cones.candidates(&self.window_rect(window), window);
        match alive {
            None => geometric,
            Some(alive) => intersect_sorted(&geometric, &alive),
        }
    }
}

/// Union of two ascending-sorted, mutually disjoint index streams.
fn merge_sorted(a: impl Iterator<Item = usize>, b: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut out: Vec<usize> = a.chain(b).collect();
    out.sort_unstable();
    out
}

/// Intersection of two ascending-sorted index sets.
pub(crate) fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::UncertainObject;
    use crate::observation::Observation;
    use ust_markov::{CooBuilder, MarkovChain};
    use ust_space::{LineSpace, TimeSet};

    fn line_chain(n: usize) -> MarkovChain {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            let left = i.saturating_sub(1);
            let right = (i + 1).min(n - 1);
            if left == right {
                b.push(i, i, 1.0).unwrap();
            } else {
                b.push(i, left, 0.5).unwrap();
                b.push(i, right, 0.5).unwrap();
            }
        }
        MarkovChain::from_weights(b.build()).unwrap()
    }

    fn db_with_anchors(n: usize, anchors: &[(u32, usize)]) -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new(line_chain(n));
        for (i, &(t, s)) in anchors.iter().enumerate() {
            db.insert(UncertainObject::with_single_observation(
                i as u64,
                Observation::exact(t, n, s).unwrap(),
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn candidates_combine_time_and_geometry() {
        let n = 50;
        let db = db_with_anchors(n, &[(0, 10), (0, 25), (8, 21), (0, 49)]);
        let index = SpatioTemporalIndex::build(&db, Arc::new(LineSpace::new(n)));
        let window = QueryWindow::from_states(n, 20usize..=22, TimeSet::interval(3, 5)).unwrap();
        // Object 0 (too far), object 3 (too far) are pruned geometrically;
        // object 2 is pruned temporally (first observed at t = 8 > t_end).
        assert_eq!(index.candidates(&window), vec![1]);
        assert_eq!(index.max_anchor_time(), 8);
        assert_eq!(index.num_objects(), 4);
    }

    #[test]
    fn empty_database_has_no_candidates() {
        let db = TrajectoryDatabase::new(line_chain(10));
        let index = SpatioTemporalIndex::build(&db, Arc::new(LineSpace::new(10)));
        let window = QueryWindow::from_states(10, [5usize], TimeSet::at(1)).unwrap();
        assert!(index.candidates(&window).is_empty());
        assert_eq!(index.max_anchor_time(), 0);
    }

    #[test]
    fn single_model_builds_no_clusters() {
        let db = db_with_anchors(20, &[(0, 5)]);
        let index = SpatioTemporalIndex::build(&db, Arc::new(LineSpace::new(20)));
        assert!(index.clusters().is_empty());
    }

    #[test]
    fn intersect_sorted_is_set_intersection() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 9], &[0, 3, 4, 5, 10]), vec![3, 5]);
        assert!(intersect_sorted(&[], &[1, 2]).is_empty());
        assert!(intersect_sorted(&[1, 2], &[]).is_empty());
    }

    #[test]
    fn window_rect_covers_window_states() {
        let db = db_with_anchors(50, &[(0, 10)]);
        let index = SpatioTemporalIndex::build(&db, Arc::new(LineSpace::new(50)));
        let window = QueryWindow::from_states(50, 20usize..=22, TimeSet::at(1)).unwrap();
        let rect = index.window_rect(&window);
        assert_eq!((rect.min.x, rect.max.x), (20.0, 22.0));
    }

    #[test]
    fn overlay_update_matches_a_fresh_build() {
        let n = 50;
        let db = db_with_anchors(n, &[(0, 10), (0, 25), (8, 21), (0, 49)]);
        let space: Arc<LineSpace> = Arc::new(LineSpace::new(n));
        let index = SpatioTemporalIndex::build(&db, Arc::new(LineSpace::new(n)));
        // Object 0 moves next to the window and re-anchors at t = 2; object
        // 4 is inserted right inside the window's state band.
        let moved =
            UncertainObject::with_single_observation(0, Observation::exact(2, n, 21).unwrap());
        let added =
            UncertainObject::with_single_observation(4, Observation::exact(0, n, 20).unwrap());
        let updated = index.with_updated(0, &moved).with_updated(4, &added);
        assert_eq!(updated.overlay_len(), 2);
        assert_eq!(updated.num_objects(), 5);

        // The same mutations applied to the database, then bulk-rebuilt.
        let mut objects: Vec<UncertainObject> = db.objects().to_vec();
        objects[0] = moved;
        objects.push(added);
        let mut fresh_db = TrajectoryDatabase::new(line_chain(n));
        fresh_db.insert_all(objects).unwrap();
        let fresh = SpatioTemporalIndex::build(&fresh_db, Arc::clone(&space) as _);

        for (t0, t1) in [(3u32, 5u32), (0, 1), (0, 25), (9, 12)] {
            let window =
                QueryWindow::from_states(n, 20usize..=22, TimeSet::interval(t0, t1)).unwrap();
            assert_eq!(
                updated.candidates(&window),
                fresh.candidates(&window),
                "window [{t0}, {t1}]"
            );
        }
        assert_eq!(updated.max_anchor_time(), fresh.max_anchor_time());
    }

    #[test]
    fn compaction_threshold_scales_with_base_size() {
        let n = 50;
        let db = db_with_anchors(n, &[(0, 10), (0, 25)]);
        let index = SpatioTemporalIndex::build(&db, Arc::new(LineSpace::new(n)));
        assert!(!index.wants_compaction());
        let mut grown = index.with_updated(0, db.object(0).unwrap());
        for _ in 0..OVERLAY_COMPACTION_MIN {
            grown = grown.with_updated(0, db.object(0).unwrap());
        }
        // Repeated updates of one object keep a single overlay entry...
        assert_eq!(grown.overlay_len(), 1);
        // ...while distinct indices grow it to the threshold.
        for idx in 0..OVERLAY_COMPACTION_MIN {
            grown = grown.with_updated(idx, db.object(0).unwrap());
        }
        assert!(grown.wants_compaction());
    }
}
