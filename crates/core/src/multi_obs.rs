//! Multiple observations — Section VI of the paper.
//!
//! With more than one observation, worlds that already intersected the query
//! window are no longer interchangeable: their *current state* still matters
//! because it determines the likelihood of reaching later observations. The
//! paper therefore replaces the single absorbing ⊤ state by a full "hit"
//! copy of the state space (the doubled matrices `M− = diag(M, M)` and
//! `M+ = [[M−M′, M′], [0, M]]`), fuses each observation into the running
//! distribution by element-wise multiplication (Lemma 1 — observations are
//! assumed mutually independent), and renormalizes so that worlds
//! invalidated by the evidence (class A) are excluded per Equation 1:
//!
//! ```text
//! P_total = P(B) / (P(B) + P(C))
//! ```
//!
//! We keep the two halves as separate vectors `u` (not yet hit) and `w`
//! (hit), which is exactly the doubled-matrix product evaluated block-wise —
//! cross-checked against the explicit `doubled_minus`/`doubled_plus`
//! construction in the tests.

use std::ops::ControlFlow;

use ust_markov::{MarkovChain, SparseVector};

use crate::database::TrajectoryDatabase;
use crate::engine::object_based::validate;
use crate::engine::pipeline::{ForwardEvent, Propagator};
use crate::engine::EngineConfig;
use crate::error::{QueryError, Result};
use crate::object::UncertainObject;
use crate::query::{ObjectProbability, QueryWindow};
use crate::stats::EvalStats;

/// PST∃Q probability for an object with an arbitrary number of
/// observations (Section VI semantics). Reduces to the plain object-based
/// algorithm when only one observation exists.
pub fn exists_probability_multi(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
) -> Result<f64> {
    exists_probability_multi_with_stats(chain, object, window, config, &mut EvalStats::new())
}

/// As [`exists_probability_multi`], accumulating counters.
pub fn exists_probability_multi_with_stats(
    chain: &MarkovChain,
    object: &UncertainObject,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<f64> {
    validate(chain, object, window)?;
    let anchor = object.anchor();
    let t0 = anchor.time();
    let horizon = window.t_end().max(object.last_observation().time());
    let mut pipeline = Propagator::new(config, stats);

    // rows[0] = u, worlds that have not intersected the window;
    // rows[1] = w, worlds that have — the doubled state space of Section VI
    // evaluated block-wise.
    let mut rows = [
        pipeline.seed(anchor.distribution().clone()),
        pipeline.seed(SparseVector::zeros(chain.num_states())),
    ];

    pipeline.forward_to(chain.matrix(), &mut rows, t0, horizon, window, |event| match event {
        ForwardEvent::Window { rows, .. } => {
            let (u, w) = rows.split_at_mut(1);
            let moved = u[0].split_masked(window.states());
            if moved.nnz() > 0 {
                w[0].add_sparse(&moved)?;
            }
            Ok(ControlFlow::Continue(()))
        }
        ForwardEvent::StepEnd { rows, t } => {
            if t > t0 {
                if let Some(obs) = object.observation_at(t) {
                    // Lemma 1: independent observations fuse
                    // multiplicatively; the observation says nothing about
                    // the hit flag, so it applies to both halves
                    // identically.
                    for row in rows.iter_mut() {
                        row.hadamard_sparse(obs.distribution())?;
                    }
                    let total: f64 = rows.iter().map(|r| r.sum()).sum();
                    if total <= 0.0 {
                        return Err(QueryError::ImpossibleEvidence);
                    }
                    // Equation 1: renormalize over the surviving worlds.
                    for row in rows.iter_mut() {
                        row.scale(1.0 / total);
                    }
                }
            }
            Ok(ControlFlow::Continue(()))
        }
    })?;
    let (hit, alive) = (rows[1].sum(), rows[0].sum());
    let total = hit + alive;
    if total <= 0.0 {
        return Err(QueryError::ImpossibleEvidence);
    }
    // `+ 0.0` normalizes a possible IEEE negative zero for display.
    Ok((hit / total).clamp(0.0, 1.0) + 0.0)
}

/// Database-level PST∃Q honoring all observations of every object.
pub fn evaluate_exists_multi(
    db: &TrajectoryDatabase,
    window: &QueryWindow,
    config: &EngineConfig,
    stats: &mut EvalStats,
) -> Result<Vec<ObjectProbability>> {
    let mut out = Vec::with_capacity(db.len());
    for object in db.objects() {
        let chain = db.model_of(object);
        let probability =
            exists_probability_multi_with_stats(chain, object, window, config, stats)?;
        out.push(ObjectProbability { object_id: object.id(), probability });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::exhaustive;
    use crate::engine::object_based;
    use crate::observation::Observation;
    use ust_markov::{CsrMatrix, DenseVector};
    use ust_space::TimeSet;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    /// The Section VI chain (second row 0.5 / 0.5).
    fn section6_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.5, 0.0, 0.5], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn section_6_worked_example_probability_zero() {
        // Observations s1@t0 and s2@t3; window S▫ = {s2}, T▫ = {1, 2}.
        // The paper concludes the object must be at s2 at t=3 *without*
        // having intersected the window: P∃ = 0.
        let object = UncertainObject::new(
            1,
            vec![Observation::exact(0, 3, 0).unwrap(), Observation::exact(3, 3, 1).unwrap()],
        )
        .unwrap();
        let window = QueryWindow::from_states(3, [1usize], TimeSet::interval(1, 2)).unwrap();
        let p =
            exists_probability_multi(&section6_chain(), &object, &window, &EngineConfig::default())
                .unwrap();
        assert!(p.abs() < 1e-12, "got {p}");
    }

    #[test]
    fn section_6_intermediate_vectors() {
        // Replay the paper's step-by-step doubled-space vectors using the
        // explicit doubled matrices, and confirm the virtual u/w pass gives
        // the same final answer.
        let chain = section6_chain();
        let window = QueryWindow::from_states(3, [1usize], TimeSet::interval(1, 2)).unwrap();
        let minus = ust_markov::augmented::doubled_minus(chain.matrix());
        let plus = ust_markov::augmented::doubled_plus(chain.matrix(), window.states());
        let mut v = DenseVector::zeros(6);
        v.set(0, 1.0).unwrap(); // observed at s1, not hit
                                // t=1 ∈ T▫.
        v = plus.vecmat_dense(&v).unwrap();
        assert!(v.approx_eq(&DenseVector::from_vec(vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0]), 1e-12));
        // t=2 ∈ T▫.
        v = plus.vecmat_dense(&v).unwrap();
        assert!(v.approx_eq(&DenseVector::from_vec(vec![0.0, 0.0, 0.2, 0.0, 0.8, 0.0]), 1e-12));
        // t=3 ∉ T▫.
        v = minus.vecmat_dense(&v).unwrap();
        assert!(v.approx_eq(&DenseVector::from_vec(vec![0.0, 0.16, 0.04, 0.4, 0.0, 0.4]), 1e-12));
        // Fuse the observation at t=3 (state s2, hit flag unknown):
        // (0, 0.16·1, 0, 0, 0·1, 0) → normalized (0, 1, 0, 0, 0, 0).
        let obs = DenseVector::from_vec(vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
        let mut fused = v.hadamard(&obs).unwrap();
        fused.normalize().unwrap();
        assert!(fused.approx_eq(&DenseVector::from_vec(vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0]), 1e-12));
    }

    #[test]
    fn single_observation_reduces_to_object_based() {
        let chain = paper_chain();
        let object =
            UncertainObject::with_single_observation(2, Observation::exact(0, 3, 1).unwrap());
        let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
        let multi =
            exists_probability_multi(&chain, &object, &window, &EngineConfig::default()).unwrap();
        let single =
            object_based::exists_probability(&chain, &object, &window, &EngineConfig::default())
                .unwrap();
        assert!((multi - single).abs() < 1e-12);
        assert!((multi - 0.864).abs() < 1e-12);
    }

    #[test]
    fn matches_exhaustive_enumeration_with_uncertain_observations() {
        let chain = paper_chain();
        let object = UncertainObject::new(
            3,
            vec![
                Observation::uncertain(
                    0,
                    ust_markov::SparseVector::from_pairs(3, [(1, 0.7), (2, 0.3)]).unwrap(),
                )
                .unwrap(),
                Observation::uncertain(
                    4,
                    ust_markov::SparseVector::from_pairs(3, [(1, 0.5), (2, 0.5)]).unwrap(),
                )
                .unwrap(),
            ],
        )
        .unwrap();
        let window = QueryWindow::from_states(3, [0usize], TimeSet::interval(1, 3)).unwrap();
        let exact =
            exists_probability_multi(&chain, &object, &window, &EngineConfig::default()).unwrap();
        let oracle = exhaustive::enumerate(&chain, &object, &window, 1 << 22).unwrap();
        assert!(
            (exact - oracle.exists()).abs() < 1e-12,
            "multi-obs {exact} vs oracle {}",
            oracle.exists()
        );
    }

    #[test]
    fn observation_after_window_reweights_result() {
        // The same query with and without a later observation must differ:
        // the extra evidence reweights worlds (the paper's point that
        // observations farther than the window still carry information).
        let chain = paper_chain();
        let window = QueryWindow::from_states(3, [0usize], TimeSet::at(1)).unwrap();
        let plain =
            UncertainObject::with_single_observation(4, Observation::exact(0, 3, 1).unwrap());
        let informed = UncertainObject::new(
            5,
            vec![Observation::exact(0, 3, 1).unwrap(), Observation::exact(4, 3, 1).unwrap()],
        )
        .unwrap();
        let config = EngineConfig::default();
        let p_plain = exists_probability_multi(&chain, &plain, &window, &config).unwrap();
        let p_informed = exists_probability_multi(&chain, &informed, &window, &config).unwrap();
        assert!((p_plain - p_informed).abs() > 1e-6);
        // Cross-check the informed value against enumeration.
        let oracle = exhaustive::enumerate(&chain, &informed, &window, 1 << 22).unwrap();
        assert!((p_informed - oracle.exists()).abs() < 1e-12);
    }

    #[test]
    fn impossible_evidence_errors() {
        let chain = paper_chain();
        let object = UncertainObject::new(
            6,
            vec![
                Observation::exact(0, 3, 1).unwrap(),
                Observation::exact(1, 3, 1).unwrap(), // unreachable
            ],
        )
        .unwrap();
        let window = QueryWindow::from_states(3, [0usize], TimeSet::at(1)).unwrap();
        assert!(matches!(
            exists_probability_multi(&chain, &object, &window, &EngineConfig::default()),
            Err(QueryError::ImpossibleEvidence)
        ));
    }

    #[test]
    fn batch_multi_evaluation() {
        let mut db = TrajectoryDatabase::new(paper_chain());
        db.insert(UncertainObject::with_single_observation(
            0,
            Observation::exact(0, 3, 1).unwrap(),
        ))
        .unwrap();
        db.insert(
            UncertainObject::new(
                1,
                vec![Observation::exact(0, 3, 1).unwrap(), Observation::exact(4, 3, 2).unwrap()],
            )
            .unwrap(),
        )
        .unwrap();
        let window = QueryWindow::from_states(3, [0usize, 1], TimeSet::interval(2, 3)).unwrap();
        let results =
            evaluate_exists_multi(&db, &window, &EngineConfig::default(), &mut EvalStats::new())
                .unwrap();
        assert_eq!(results.len(), 2);
        assert!((results[0].probability - 0.864).abs() < 1e-12);
        assert!(results[1].probability >= 0.0 && results[1].probability <= 1.0);
    }
}
