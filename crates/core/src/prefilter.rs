//! Spatial candidate prefiltering (reachability cones).
//!
//! Before any matrix work, objects that *cannot possibly* reach the query
//! region in the available time can be discarded geometrically: the chain
//! moves an object at most `max_step_distance` per transition (the longest
//! spatial displacement of any non-zero transition), so an object anchored
//! at time `t_a` can reach at most radius `(t_end − t_a) · max_step`
//! around its anchor support by `t_end`. An R-tree over object anchor
//! centroids turns this cone test into a range query.
//!
//! This prefilter is an *engineering extension* of the paper (which prunes
//! inside the matrices); it is conservative — never discards an object with
//! non-zero probability — as verified against the exact engines.

use ust_markov::MarkovChain;
use ust_space::{Point2, RTree, RTreeEntry, Rect, StateSpace};

use crate::database::TrajectoryDatabase;
use crate::object::UncertainObject;
use crate::query::QueryWindow;

/// The largest spatial displacement of any single transition of `chain`
/// under the embedding of `space`.
pub fn max_step_distance<S: StateSpace + ?Sized>(chain: &MarkovChain, space: &S) -> f64 {
    let mut max_d2: f64 = 0.0;
    for i in 0..chain.num_states() {
        let from = space.location(i);
        let (cols, _) = chain.matrix().row(i);
        for &j in cols {
            let d2 = from.distance_sq(&space.location(j as usize));
            if d2 > max_d2 {
                max_d2 = d2;
            }
        }
    }
    max_d2.sqrt()
}

/// Per-object cone geometry: where the anchor support sits and how far the
/// object can have strayed from it by any given time.
#[derive(Debug, Clone, Copy)]
struct ConeAnchor {
    centroid: Point2,
    anchor_time: u32,
    /// Radius of the anchor support around its centroid.
    radius: f64,
}

/// A prefilter over a database: object anchor geometry indexed in an
/// R-tree, plus the chain's per-step displacement bound.
#[derive(Debug)]
pub struct ConePrefilter {
    tree: RTree,
    anchors: Vec<ConeAnchor>,
    max_step: f64,
    /// `max_a (radius_a − anchor_time_a · max_step)`: the t_end-independent
    /// part of the widest cone, so the coarse expansion radius is O(1) per
    /// query instead of a fold over every anchor.
    max_slack: f64,
    /// `max_a radius_a`: lower bound on the expansion for anchors after
    /// `t_end`, whose cone is clamped to zero rather than negative.
    max_anchor_radius: f64,
    /// `min_a (radius_a − anchor_time_a · max_step)`: the t_end-independent
    /// part of the *narrowest* cone, for batch-accepting whole R-tree
    /// leaves that sit within even the smallest reach.
    min_slack: f64,
    /// `min_a radius_a`: the narrowest reach an anchor after `t_end` can
    /// have (its cone is clamped to zero).
    min_anchor_radius: f64,
}

impl ConePrefilter {
    /// Builds the prefilter for all objects of `db` embedded in `space`.
    pub fn build<S: StateSpace + ?Sized>(db: &TrajectoryDatabase, space: &S) -> ConePrefilter {
        let max_step = db
            .models()
            .iter()
            .map(|chain| max_step_distance(chain.as_ref(), space))
            .fold(0.0f64, f64::max);
        let mut entries = Vec::with_capacity(db.len());
        let mut anchors = Vec::with_capacity(db.len());
        let mut max_slack = f64::NEG_INFINITY;
        let mut max_anchor_radius: f64 = 0.0;
        let mut min_slack = f64::INFINITY;
        let mut min_anchor_radius = f64::INFINITY;
        for (idx, object) in db.objects().iter().enumerate() {
            let (centroid, radius) = anchor_geometry(object, space);
            entries.push(RTreeEntry { point: centroid, id: idx });
            let anchor_time = object.anchor().time();
            let slack = radius - f64::from(anchor_time) * max_step;
            max_slack = max_slack.max(slack);
            min_slack = min_slack.min(slack);
            max_anchor_radius = max_anchor_radius.max(radius);
            min_anchor_radius = min_anchor_radius.min(radius);
            anchors.push(ConeAnchor { centroid, anchor_time, radius });
        }
        ConePrefilter {
            tree: RTree::bulk_load(entries),
            anchors,
            max_step,
            max_slack,
            max_anchor_radius,
            min_slack,
            min_anchor_radius,
        }
    }

    /// The chain displacement bound used by the cone test.
    pub fn max_step(&self) -> f64 {
        self.max_step
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// True when no object is indexed.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }

    /// Indices of objects that *may* intersect `query_rect` during the
    /// window (sorted). Everything outside is guaranteed to have `P∃ = 0`.
    pub fn candidates(&self, query_rect: &Rect, window: &QueryWindow) -> Vec<usize> {
        let t_end = window.t_end();
        // The cone radius depends on each object's anchor time; expand the
        // query rectangle by the *maximum* possible cone for the coarse
        // R-tree pass, then confirm each candidate with its own cone. The
        // exact test is Euclidean distance from the anchor centroid to the
        // (closed) query rectangle: after k steps the object has moved at
        // most k · max_step from its anchor support, so anything further
        // than cone + support radius cannot intersect the window. (Anchors
        // after t_end cannot reach backwards: radius 0.)
        // `max_slack` linearizes `cone + radius` in t_end for anchors at or
        // before t_end; anchors after t_end have their cone clamped to
        // zero, which `max_anchor_radius` covers. Both are upper-bounded by
        // the exact per-anchor fold, so the coarse pass stays conservative.
        let max_radius = (f64::from(t_end) * self.max_step + self.max_slack)
            .max(self.max_anchor_radius)
            .max(0.0);
        // Every anchor reaches at least `min_reach`: a leaf whose box sits
        // entirely within that distance of the query rectangle passes
        // wholesale, without per-entry cone tests. Boundary leaves fall
        // back to the exact per-anchor test (which also rejects entries
        // the coarse rectangle over-collected).
        let min_reach = (f64::from(t_end) * self.max_step + self.min_slack)
            .min(self.min_anchor_radius)
            .max(0.0);
        let mut hit = vec![false; self.anchors.len()];
        self.tree.visit_leaves(&query_rect.expand(max_radius), &mut |bbox, entries| {
            if query_rect.max_distance_to_rect(bbox) <= min_reach {
                for entry in entries {
                    hit[entry.id] = true;
                }
            } else {
                for entry in entries {
                    let a = &self.anchors[entry.id];
                    let reach = cone_radius(a.anchor_time, t_end, self.max_step) + a.radius;
                    if query_rect.distance_to_point(&a.centroid) <= reach {
                        hit[entry.id] = true;
                    }
                }
            }
        });
        hit.iter().enumerate().filter(|(_, &h)| h).map(|(id, _)| id).collect()
    }
}

/// How far an object anchored at `anchor_time` can have strayed from its
/// anchor support by `t_end` (zero for anchors after `t_end`: the chain
/// cannot reach backwards). Shared with the index overlay so entries added
/// after the bulk build are tested with exactly the same cone.
pub(crate) fn cone_radius(anchor_time: u32, t_end: u32, max_step: f64) -> f64 {
    f64::from(t_end.saturating_sub(anchor_time)) * max_step
}

/// Weighted centroid of the anchor support and the largest distance from
/// the centroid to any support state. `pub(crate)` so the index overlay can
/// derive geometry for objects mutated or inserted after the bulk build.
pub(crate) fn anchor_geometry<S: StateSpace + ?Sized>(
    object: &UncertainObject,
    space: &S,
) -> (Point2, f64) {
    let dist = object.initial_distribution();
    let mut cx = 0.0;
    let mut cy = 0.0;
    let mut total = 0.0;
    for (s, p) in dist.iter() {
        let loc = space.location(s);
        cx += loc.x * p;
        cy += loc.y * p;
        total += p;
    }
    if total > 0.0 {
        cx /= total;
        cy /= total;
    }
    let centroid = Point2::new(cx, cy);
    let radius =
        dist.iter().map(|(s, _)| space.location(s).distance(&centroid)).fold(0.0f64, f64::max);
    (centroid, radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{object_based, EngineConfig};
    use crate::observation::Observation;
    use crate::query::QueryWindow;
    use ust_markov::{CooBuilder, MarkovChain};
    use ust_space::{LineSpace, TimeSet};

    /// A random-walk chain on a line: state i moves to i±1 (clipped).
    fn line_chain(n: usize) -> MarkovChain {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            let left = i.saturating_sub(1);
            let right = (i + 1).min(n - 1);
            if left == right {
                b.push(i, i, 1.0).unwrap();
            } else {
                b.push(i, left, 0.5).unwrap();
                b.push(i, right, 0.5).unwrap();
            }
        }
        MarkovChain::from_weights(b.build()).unwrap()
    }

    fn db_on_line(n: usize, positions: &[usize]) -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new(line_chain(n));
        for (i, &s) in positions.iter().enumerate() {
            db.insert(UncertainObject::with_single_observation(
                i as u64,
                Observation::exact(0, n, s).unwrap(),
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn max_step_distance_of_line_walk() {
        let space = LineSpace::new(50);
        let chain = line_chain(50);
        assert!((max_step_distance(&chain, &space) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cone_filter_is_conservative() {
        // Objects at 0, 10, 25, 49; window around states 20..=22 at t ≤ 5.
        let n = 50;
        let space = LineSpace::new(n);
        let db = db_on_line(n, &[0, 10, 25, 49]);
        let window = QueryWindow::from_states(n, 20usize..=22, TimeSet::interval(3, 5)).unwrap();
        let filter = ConePrefilter::build(&db, &space);
        let rect = Rect::from_bounds(20.0, -0.5, 22.0, 0.5);
        let candidates = filter.candidates(&rect, &window);

        // Exact check: every object with non-zero probability must survive.
        let exact =
            object_based::evaluate(&db, &window, &EngineConfig::default(), &mut Default::default())
                .unwrap();
        for (idx, r) in exact.iter().enumerate() {
            if r.probability > 0.0 {
                assert!(
                    candidates.contains(&idx),
                    "object {idx} (p = {}) was wrongly pruned",
                    r.probability
                );
            }
        }
        // And the far-away objects (0 and 49, > 5 steps from the window)
        // must be pruned.
        assert!(!candidates.contains(&0));
        assert!(!candidates.contains(&3));
        assert!(candidates.contains(&2));
    }

    #[test]
    fn anchor_time_shrinks_the_cone() {
        let n = 50;
        let space = LineSpace::new(n);
        let mut db = TrajectoryDatabase::new(line_chain(n));
        // Same state, but anchored at t=4 → only 1 step of slack.
        db.insert(UncertainObject::with_single_observation(
            0,
            Observation::exact(4, n, 10).unwrap(),
        ))
        .unwrap();
        let window = QueryWindow::from_states(n, [20usize], TimeSet::at(5)).unwrap();
        let filter = ConePrefilter::build(&db, &space);
        let rect = Rect::from_bounds(20.0, -0.5, 20.0, 0.5);
        assert!(filter.candidates(&rect, &window).is_empty());
    }

    #[test]
    fn uncertain_anchor_radius_is_respected() {
        let n = 50;
        let space = LineSpace::new(n);
        let mut db = TrajectoryDatabase::new(line_chain(n));
        // Anchor spread over states 5 and 15: centroid 10, radius 5.
        db.insert(UncertainObject::with_single_observation(
            0,
            Observation::uncertain(
                0,
                ust_markov::SparseVector::from_pairs(n, [(5, 0.5), (15, 0.5)]).unwrap(),
            )
            .unwrap(),
        ))
        .unwrap();
        // Window at state 18, t=3: reachable from 15 (distance 3).
        let window = QueryWindow::from_states(n, [18usize], TimeSet::at(3)).unwrap();
        let filter = ConePrefilter::build(&db, &space);
        let rect = Rect::from_bounds(18.0, -0.5, 18.0, 0.5);
        assert_eq!(filter.candidates(&rect, &window), vec![0]);
    }

    #[test]
    fn empty_database_yields_no_candidates() {
        let db = TrajectoryDatabase::new(line_chain(10));
        let space = LineSpace::new(10);
        let filter = ConePrefilter::build(&db, &space);
        let window = QueryWindow::from_states(10, [5usize], TimeSet::at(1)).unwrap();
        assert!(filter.candidates(&Rect::from_bounds(5.0, -1.0, 5.0, 1.0), &window).is_empty());
    }
}
