//! # ust-lint — static conformance analyzer for the ust workspace
//!
//! The engines' exactness guarantees (bit-for-bit identity across batch
//! sizes, thread counts, kernels, prefilter modes and streaming prefixes)
//! rest on project conventions that nothing enforced mechanically: SAFETY
//! comments on every `unsafe`, lock-poison recovery, no wall-clock reads in
//! plan decisions, order-stable iteration on answer paths, no panics in
//! library code. This crate is the enforcement: a zero-dependency binary
//! (`cargo run -p ust-lint -- --deny`) built from a hand-written Rust
//! [`lexer`] feeding a rule engine ([`analyze`]) with `#[cfg(test)]` region
//! tracking and an inline waiver syntax ([`waiver`]).
//!
//! The rules and their rationale live in [`rules`]; ARCHITECTURE.md's
//! "Enforced invariants" section is the prose version. The analyzer is
//! self-hosting — `crates/lint/src` is scanned like every other crate.

pub mod analyze;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod waiver;
pub mod walk;

use std::path::Path;

use analyze::{analyze_source, FileReport, Finding};

/// The aggregated result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings across all files, in (file, line, col) order.
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Number of waivers that suppressed at least one finding.
    pub waivers_used: usize,
    /// `(file, line)` of every SAFETY marker outside test code.
    pub safety_markers: Vec<(String, u32)>,
    /// `(file, line)` of every parsed waiver directive.
    pub waivers: Vec<(String, u32)>,
}

impl Report {
    /// Folds one file's report into the aggregate.
    fn absorb(&mut self, path: &str, file: FileReport) {
        self.files_scanned += 1;
        self.waivers_used += file.waivers_used;
        self.findings.extend(file.findings);
        self.safety_markers.extend(file.safety_marker_lines.iter().map(|&l| (path.to_string(), l)));
        self.waivers.extend(file.waiver_lines.iter().map(|&l| (path.to_string(), l)));
    }

    /// Serializes the report as a stable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i + 1 == self.findings.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{{}, \"line\": {}, \"col\": {}, {}, {}}}{}\n",
                json::str_field("file", &f.file),
                f.line,
                f.col,
                json::str_field("rule", f.rule.name()),
                json::str_field("message", &f.message),
                sep,
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"waivers_used\": {}\n", self.waivers_used));
        out.push('}');
        out
    }
}

/// Analyzes one source string as the file at workspace-relative `path`.
///
/// This is the in-memory entry point the tests (and the mutation harness
/// pinning "deleting any SAFETY comment or waiver fails the build") drive.
pub fn analyze_str(path: &str, src: &str) -> Report {
    let mut report = Report::default();
    report.absorb(path, analyze_source(path, src));
    sort_findings(&mut report);
    report
}

/// Analyzes every in-scope file under the workspace `root`.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let files = walk::workspace_files(root)?;
    let mut report = Report::default();
    for rel in &files {
        let full = root.join(rel);
        let src = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        report.absorb(rel, analyze_source(rel, &src));
    }
    sort_findings(&mut report);
    Ok(report)
}

fn sort_findings(report: &mut Report) {
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
}
