//! # ust-lint — static conformance analyzer for the ust workspace
//!
//! The engines' exactness guarantees (bit-for-bit identity across batch
//! sizes, thread counts, kernels, prefilter modes and streaming prefixes)
//! rest on project conventions that nothing enforced mechanically: SAFETY
//! comments on every `unsafe`, lock-poison recovery, no wall-clock reads in
//! plan decisions, order-stable iteration on answer paths, no panics in
//! library code. This crate is the enforcement: a zero-dependency binary
//! (`cargo run -p ust-lint -- --deny`) built from a hand-written Rust
//! [`lexer`] feeding a rule engine ([`analyze`]) with `#[cfg(test)]` region
//! tracking and an inline waiver syntax ([`waiver`]).
//!
//! The rules and their rationale live in [`rules`]; ARCHITECTURE.md's
//! "Enforced invariants" section is the prose version. The analyzer is
//! self-hosting — `crates/lint/src` is scanned like every other crate.

pub mod analyze;
pub mod callgraph;
pub mod dataflow;
pub mod json;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod symbols;
pub mod waiver;
pub mod walk;

use std::path::Path;

use analyze::{file_pass, finish, FileReport, Finding};
use dataflow::LockEdge;

/// The aggregated result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings across all files, in (file, line, col) order.
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Number of waivers that suppressed at least one finding.
    pub waivers_used: usize,
    /// `(file, line)` of every SAFETY marker outside test code.
    pub safety_markers: Vec<(String, u32)>,
    /// `(file, line)` of every parsed waiver directive.
    pub waivers: Vec<(String, u32)>,
    /// The discovered lock-order graph: one witness edge per ordered pair
    /// of locks ever held nested.
    pub lock_edges: Vec<LockEdge>,
}

impl Report {
    /// Folds one file's report into the aggregate.
    fn absorb(&mut self, path: &str, file: FileReport) {
        self.files_scanned += 1;
        self.waivers_used += file.waivers_used;
        self.findings.extend(file.findings);
        self.safety_markers.extend(file.safety_marker_lines.iter().map(|&l| (path.to_string(), l)));
        self.waivers.extend(file.waiver_lines.iter().map(|&l| (path.to_string(), l)));
    }

    /// Serializes the report as a stable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i + 1 == self.findings.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{{}, \"line\": {}, \"col\": {}, {}, {}}}{}\n",
                json::str_field("file", &f.file),
                f.line,
                f.col,
                json::str_field("rule", f.rule.name()),
                json::str_field("message", &f.message),
                sep,
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"waivers_used\": {},\n", self.waivers_used));
        out.push_str("  \"lock_edges\": [\n");
        for (i, e) in self.lock_edges.iter().enumerate() {
            let sep = if i + 1 == self.lock_edges.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{{}, {}, {}, \"line\": {}}}{}\n",
                json::str_field("from", &e.from),
                json::str_field("to", &e.to),
                json::str_field("file", &e.file),
                e.line,
                sep,
            ));
        }
        out.push_str("  ]\n}");
        out
    }

    /// Renders the lock-order graph as deterministic Graphviz DOT.
    pub fn to_dot(&self) -> String {
        dataflow::to_dot(&self.lock_edges)
    }
}

/// Analyzes a set of in-memory `(path, source)` files as one workspace.
///
/// This is the entry point for workspace-aware tests: cross-file findings
/// (a lock-order edge witnessed in one file, rooted in another's symbol
/// table) only reproduce when every involved file is in the set.
pub fn analyze_files(files: &[(String, String)]) -> Report {
    let passes = files.iter().map(|(p, s)| file_pass(p, s)).collect();
    let (reports, edges) = finish(passes);
    let mut report = Report::default();
    for (path, file) in reports {
        report.absorb(&path, file);
    }
    report.lock_edges = edges;
    sort_findings(&mut report);
    report
}

/// Analyzes one source string as the file at workspace-relative `path`.
///
/// This is the in-memory entry point the tests (and the mutation harness
/// pinning "deleting any SAFETY comment or waiver fails the build") drive.
/// The semantic pass sees a one-file workspace.
pub fn analyze_str(path: &str, src: &str) -> Report {
    analyze_files(&[(path.to_string(), src.to_string())])
}

/// Analyzes every in-scope file under the workspace `root`.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let files = walk::workspace_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let full = root.join(&rel);
        let src = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        sources.push((rel, src));
    }
    Ok(analyze_files(&sources))
}

fn sort_findings(report: &mut Report) {
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
}
