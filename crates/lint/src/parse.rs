//! A lightweight item-level parser over the [`crate::lexer`].
//!
//! This is deliberately **not** a Rust grammar. It recovers just enough
//! shape for the semantic rules: `struct` items with their field types,
//! `fn` items (with the enclosing `impl` type, parameter types and return
//! type) whose bodies become statement trees, and `static` items. Every
//! token kept in the tree carries its original lexer span, and the parser
//! is total: any token stream — including the adversarial ones the
//! property tests feed it — produces *some* tree without panicking.
//!
//! Constructs the analysis does not need (enums, traits, macros, use
//! declarations) are skipped over balanced delimiters. Inside bodies,
//! statements split on `;` at paren depth zero and after the closing brace
//! of keyword-headed blocks (`if`/`for`/`while`/`loop`/`match`/`unsafe`);
//! every nested `{ ... }` becomes a child [`Block`], so struct literals
//! parse as (harmless) blocks rather than derailing the statement walk.

use crate::analyze::{matching_brace, scan_attribute, test_token_regions};
use crate::lexer::{lex, Lexed, Token, TokenKind};

/// The parsed shape of one source file.
#[derive(Debug, Default, Clone)]
pub struct ParsedFile {
    /// Items in source order (items inside `impl` and `mod` are flattened).
    pub items: Vec<Item>,
}

/// One top-level (or `impl`-/`mod`-nested) item the analysis cares about.
#[derive(Debug, Clone)]
pub enum Item {
    /// A `struct` with named fields.
    Struct(StructItem),
    /// A `fn` with a body.
    Fn(FnItem),
    /// A `static` item.
    Static(StaticItem),
    /// A `type NAME = TY;` alias.
    TypeAlias(TypeAliasItem),
}

/// A named field or parameter: `name: Ty`.
#[derive(Debug, Clone)]
pub struct Field {
    /// The field / parameter name.
    pub name: String,
    /// The type, as space-joined token texts (e.g. `& ' a Mutex < T >`).
    pub ty: String,
}

/// A `struct` item with named fields (tuple and unit structs keep an
/// empty field list).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct name.
    pub name: String,
    /// Named fields in declaration order.
    pub fields: Vec<Field>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
}

/// A `static` item.
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// The static's name.
    pub name: String,
    /// Its type, as space-joined token texts.
    pub ty: String,
    /// 1-based line of the `static` keyword.
    pub line: u32,
}

/// A `type NAME = TY;` alias item.
#[derive(Debug, Clone)]
pub struct TypeAliasItem {
    /// The alias name.
    pub name: String,
    /// The aliased type, as space-joined token texts.
    pub ty: String,
}

/// A `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The bare function name.
    pub name: String,
    /// The enclosing `impl` type, if any.
    pub self_ty: Option<String>,
    /// Named parameters (excluding `self`), as `name: Ty`.
    pub params: Vec<Field>,
    /// Return type as space-joined token texts; empty when `()`.
    pub ret: String,
    /// The body as a statement tree.
    pub body: Block,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn sits in a `#[test]` / `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A braced block: statements plus the source span of its braces.
#[derive(Debug, Default, Clone)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening `{`.
    pub line: u32,
    /// 1-based line of the closing `}`.
    pub end_line: u32,
}

/// One statement: an ordered run of tokens and nested blocks.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Tokens and nested blocks in source order.
    pub elems: Vec<Elem>,
    /// 1-based line of the statement's first token.
    pub line: u32,
}

/// One element of a statement.
#[derive(Debug, Clone)]
pub enum Elem {
    /// A token at the statement's own nesting level.
    Tok(Token),
    /// A nested braced block.
    Block(Block),
}

/// Nesting depth past which blocks are kept flat (their brace tokens become
/// plain [`Elem::Tok`]s) so adversarial inputs cannot overflow the stack.
const MAX_BLOCK_DEPTH: usize = 64;

/// Keywords that head a block-terminated statement.
const BLOCK_HEADS: [&str; 6] = ["if", "for", "while", "loop", "match", "unsafe"];

/// Lexes and parses `src`. Total: never panics.
pub fn parse_source(src: &str) -> ParsedFile {
    parse_file(&lex(src))
}

/// Parses an already-lexed token stream. Total: never panics.
pub fn parse_file(lexed: &Lexed) -> ParsedFile {
    let regions = test_token_regions(&lexed.tokens);
    let parser = Parser { toks: &lexed.tokens, regions };
    let mut items = Vec::new();
    parser.parse_items(0, lexed.tokens.len(), None, false, &mut items);
    ParsedFile { items }
}

struct Parser<'a> {
    toks: &'a [Token],
    regions: Vec<(usize, usize)>,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn in_test_region(&self, idx: usize) -> bool {
        self.regions.iter().any(|&(s, e)| idx >= s && idx <= e)
    }

    /// Parses the items in `toks[i..end]`, flattening `impl` and `mod`.
    fn parse_items(
        &self,
        mut i: usize,
        end: usize,
        self_ty: Option<&str>,
        forced_test: bool,
        out: &mut Vec<Item>,
    ) {
        let mut pending_test = false;
        while i < end {
            let text = self.text(i);
            match text {
                "#" => {
                    let mut j = i + 1;
                    if self.text(j) == "!" {
                        j += 1;
                    }
                    if self.text(j) == "[" {
                        let (attr_end, is_test) = scan_attribute(self.toks, j);
                        pending_test |= is_test;
                        i = attr_end + 1;
                        continue;
                    }
                    i += 1;
                }
                "impl" if self.is_ident(i) => {
                    i = self.parse_impl(i, end, forced_test || pending_test, out);
                    pending_test = false;
                }
                "struct" if self.is_ident(i) => {
                    i = self.parse_struct(i, end, out);
                    pending_test = false;
                }
                "fn" if self.is_ident(i) => {
                    i = self.parse_fn(i, end, self_ty, forced_test || pending_test, out);
                    pending_test = false;
                }
                "static" if self.is_ident(i) => {
                    i = self.parse_static(i, end, out);
                    pending_test = false;
                }
                "type" if self.is_ident(i) => {
                    i = self.parse_type_alias(i, end, out);
                    pending_test = false;
                }
                "mod" if self.is_ident(i) => {
                    // `mod name { items }` — recurse; `mod name;` — skip.
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    if self.text(j) == "{" {
                        let close = matching_brace(self.toks, j);
                        let gated = forced_test || pending_test || self.in_test_region(j);
                        self.parse_items(j + 1, close.min(end), None, gated, out);
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                    pending_test = false;
                }
                "trait" | "enum" | "union" | "macro_rules" if self.is_ident(i) => {
                    // Skip the whole item over its balanced body.
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    i = if self.text(j) == "{" { matching_brace(self.toks, j) + 1 } else { j + 1 };
                    pending_test = false;
                }
                "{" => {
                    // Stray braced body (e.g. `extern "C" { ... }`): skip.
                    i = matching_brace(self.toks, i) + 1;
                }
                ";" => {
                    pending_test = false;
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// Parses `impl [<…>] [Trait for] Type { items }`; returns the index
    /// after the impl body. The type name is the last path segment of the
    /// header's final type (`impl Trait for a::b::Type` → `Type`).
    fn parse_impl(&self, at: usize, end: usize, forced_test: bool, out: &mut Vec<Item>) -> usize {
        let mut j = at + 1;
        if self.text(j) == "<" {
            j = self.skip_angles(j, end);
        }
        let mut angle = 0i64;
        let mut name: Option<String> = None;
        // `done` stops collection once the head path's generic args begin,
        // so `impl Foo<T> where T: Debug` keeps `Foo`.
        let mut done = false;
        while j < end {
            let t = self.text(j);
            match t {
                "{" if angle <= 0 => break,
                ";" if angle <= 0 => return j + 1,
                "<" => {
                    done |= name.is_some();
                    angle += 1;
                }
                ">" => angle -= 1,
                "-" if self.text(j + 1) == ">" => j += 1, // skip `->`
                "for" if angle <= 0 && self.is_ident(j) => {
                    name = None;
                    done = false;
                }
                "where" if angle <= 0 && self.is_ident(j) => done = true,
                _ if self.is_ident(j) && angle <= 0 && !done && t != "dyn" => {
                    // Successive path segments overwrite, so the last wins.
                    name = Some(t.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        if self.text(j) != "{" {
            return j + 1;
        }
        let close = matching_brace(self.toks, j);
        let gated = forced_test || self.in_test_region(j);
        self.parse_items(j + 1, close.min(end), name.as_deref(), gated, out);
        close + 1
    }

    /// Parses a `struct` item; returns the index after it.
    fn parse_struct(&self, at: usize, end: usize, out: &mut Vec<Item>) -> usize {
        let line = self.toks.get(at).map_or(0, |t| t.line);
        if !self.is_ident(at + 1) {
            return at + 1;
        }
        let name = self.text(at + 1).to_string();
        let mut j = at + 2;
        let mut angle = 0i64;
        while j < end {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "-" if self.text(j + 1) == ">" => j += 1,
                "{" if angle <= 0 => break,
                "(" if angle <= 0 => {
                    // Tuple struct: skip the parens, then fall through to `;`.
                    j = self.matching_paren(j, end);
                }
                ";" if angle <= 0 => {
                    out.push(Item::Struct(StructItem { name, fields: Vec::new(), line }));
                    return j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        if self.text(j) != "{" {
            return j + 1;
        }
        let close = matching_brace(self.toks, j);
        let fields = self.parse_fields(j + 1, close);
        out.push(Item::Struct(StructItem { name, fields, line }));
        close + 1
    }

    /// Parses `name: Ty` pairs between `[start, end)`, split on top-level
    /// commas.
    fn parse_fields(&self, start: usize, end: usize) -> Vec<Field> {
        let mut fields = Vec::new();
        for chunk in self.split_top_level(start, end, ",") {
            let (s, e) = chunk;
            let mut k = s;
            // Skip attributes and visibility.
            loop {
                if self.text(k) == "#" && self.text(k + 1) == "[" {
                    k = scan_attribute(self.toks, k + 1).0 + 1;
                } else if self.text(k) == "pub" {
                    k += 1;
                    if self.text(k) == "(" {
                        k = self.matching_paren(k, e) + 1;
                    }
                } else {
                    break;
                }
            }
            if k < e && self.is_ident(k) && self.text(k + 1) == ":" && self.text(k + 2) != ":" {
                let ty = self.join(k + 2, e);
                if !ty.is_empty() {
                    fields.push(Field { name: self.text(k).to_string(), ty });
                }
            }
        }
        fields
    }

    /// Parses a `fn` item; returns the index after it.
    fn parse_fn(
        &self,
        at: usize,
        end: usize,
        self_ty: Option<&str>,
        forced_test: bool,
        out: &mut Vec<Item>,
    ) -> usize {
        let line = self.toks.get(at).map_or(0, |t| t.line);
        if !self.is_ident(at + 1) {
            return at + 1;
        }
        let name = self.text(at + 1).to_string();
        let mut j = at + 2;
        if self.text(j) == "<" {
            j = self.skip_angles(j, end);
        }
        if self.text(j) != "(" {
            return j;
        }
        let pclose = self.matching_paren(j, end);
        let params = self.parse_params(j + 1, pclose);
        let mut j = pclose + 1;
        // Return type: tokens between `->` and the body / where-clause.
        let mut ret = String::new();
        if self.text(j) == "-" && self.text(j + 1) == ">" {
            let rstart = j + 2;
            let mut angle = 0i64;
            let mut k = rstart;
            while k < end {
                match self.text(k) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "-" if self.text(k + 1) == ">" => k += 1,
                    "{" | ";" if angle <= 0 => break,
                    "where" if angle <= 0 && self.is_ident(k) => break,
                    _ => {}
                }
                k += 1;
            }
            ret = self.join(rstart, k);
            j = k;
        }
        // Skip a where-clause.
        while j < end && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        if self.text(j) != "{" {
            return j + 1; // declaration without a body
        }
        let (body, close) = self.parse_block(j, 0);
        let in_test = forced_test || self.in_test_region(j);
        out.push(Item::Fn(FnItem {
            name,
            self_ty: self_ty.map(str::to_string),
            params,
            ret,
            body,
            line,
            in_test,
        }));
        close + 1
    }

    /// Parses fn parameters between `[start, end)` (inside the parens).
    fn parse_params(&self, start: usize, end: usize) -> Vec<Field> {
        let mut params = Vec::new();
        for (s, e) in self.split_top_level(start, end, ",") {
            // Find the top-level `:` separating pattern from type; `::` is
            // not a separator.
            let mut depth = 0i64;
            let mut colon = None;
            let mut k = s;
            while k < e {
                match self.text(k) {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "-" if self.text(k + 1) == ">" => k += 1,
                    ":" if depth == 0 && self.text(k + 1) != ":" && self.text(k - 1) != ":" => {
                        colon = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some(c) = colon else { continue }; // `self` / `&mut self`
                                                   // Pattern side must be a simple (possibly `mut`) identifier.
            let mut p = s;
            if self.text(p) == "mut" {
                p += 1;
            }
            if p + 1 == c && self.is_ident(p) && self.text(p) != "self" {
                let ty = self.join(c + 1, e);
                if !ty.is_empty() {
                    params.push(Field { name: self.text(p).to_string(), ty });
                }
            }
        }
        params
    }

    /// Parses a `static` item; returns the index after it.
    fn parse_static(&self, at: usize, end: usize, out: &mut Vec<Item>) -> usize {
        let line = self.toks.get(at).map_or(0, |t| t.line);
        let mut j = at + 1;
        if self.text(j) == "mut" {
            j += 1;
        }
        if !self.is_ident(j) || self.text(j + 1) != ":" {
            return j + 1;
        }
        let name = self.text(j).to_string();
        let tstart = j + 2;
        let mut k = tstart;
        let mut depth = 0i64;
        while k < end {
            match self.text(k) {
                "(" | "[" | "<" | "{" => depth += 1,
                ")" | "]" | ">" | "}" => depth -= 1,
                "-" if self.text(k + 1) == ">" => k += 1,
                "=" | ";" if depth <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        let ty = self.join(tstart, k);
        out.push(Item::Static(StaticItem { name, ty, line }));
        // Skip to the terminating `;` at brace depth zero.
        let mut brace = 0i64;
        while k < end {
            match self.text(k) {
                "{" => brace += 1,
                "}" => brace -= 1,
                ";" if brace <= 0 => return k + 1,
                _ => {}
            }
            k += 1;
        }
        k
    }

    /// Parses `type NAME = TY;`; returns the index after it.
    fn parse_type_alias(&self, at: usize, end: usize, out: &mut Vec<Item>) -> usize {
        let mut j = at + 1;
        if !self.is_ident(j) {
            return j;
        }
        let name = self.text(j).to_string();
        j += 1;
        if self.text(j) == "<" {
            j = self.skip_angles(j, end);
        }
        if self.text(j) != "=" {
            // Associated type bound or declaration: skip to `;`.
            while j < end && self.text(j) != ";" {
                j += 1;
            }
            return j + 1;
        }
        let tstart = j + 1;
        let mut k = tstart;
        while k < end && self.text(k) != ";" {
            k += 1;
        }
        out.push(Item::TypeAlias(TypeAliasItem { name, ty: self.join(tstart, k) }));
        k + 1
    }

    /// Parses the block opening at `open` (a `{`); returns the block and
    /// the index of its closing `}`.
    fn parse_block(&self, open: usize, depth: usize) -> (Block, usize) {
        let close = matching_brace(self.toks, open);
        let line = self.toks.get(open).map_or(0, |t| t.line);
        let end_line = self.toks.get(close).map_or(line, |t| t.line);
        let mut stmts = Vec::new();
        let mut cur: Vec<Elem> = Vec::new();
        let mut pdepth = 0i64;
        let mut i = open + 1;
        while i < close {
            let t = &self.toks[i];
            let text = t.text.as_str();
            if t.kind == TokenKind::Punct && text == "{" && depth < MAX_BLOCK_DEPTH {
                let (blk, bclose) = self.parse_block(i, depth + 1);
                cur.push(Elem::Block(blk));
                i = bclose + 1;
                // Keyword-headed statements end after their block (unless
                // an `else` / method chain continues them).
                if pdepth == 0 && Self::block_ends_stmt(&cur) {
                    let next = self.text(i);
                    if next != "else" && next != "." && next != "?" {
                        flush(&mut cur, &mut stmts);
                    }
                }
                continue;
            }
            if t.kind == TokenKind::Punct {
                match text {
                    ";" if pdepth == 0 => {
                        flush(&mut cur, &mut stmts);
                        i += 1;
                        continue;
                    }
                    "(" | "[" => pdepth += 1,
                    ")" | "]" => pdepth -= 1,
                    _ => {}
                }
            }
            cur.push(Elem::Tok(t.clone()));
            i += 1;
        }
        flush(&mut cur, &mut stmts);
        (Block { stmts, line, end_line }, close)
    }

    /// Whether the statement built so far is headed by a block keyword (or
    /// is a bare block), so the block it just absorbed terminates it.
    fn block_ends_stmt(cur: &[Elem]) -> bool {
        match cur.first() {
            Some(Elem::Tok(t)) if t.kind == TokenKind::Ident => {
                BLOCK_HEADS.contains(&t.text.as_str())
            }
            Some(Elem::Tok(_)) => false,
            Some(Elem::Block(_)) => true, // bare block opened the stmt
            None => true,                 // block was the first element
        }
    }

    /// Index of the `)` matching the `(` at `open` (clamped to `end`).
    fn matching_paren(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i64;
        let mut j = open;
        while j < end {
            match self.text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end.saturating_sub(1)
    }

    /// Skips a balanced `<...>` starting at `open`; returns the index
    /// after the closing `>`.
    fn skip_angles(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i64;
        let mut j = open;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                "-" if self.text(j + 1) == ">" => j += 1,
                ";" | "{" => return j, // malformed: bail out
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Joins token texts in `[start, end)` with single spaces.
    fn join(&self, start: usize, end: usize) -> String {
        let mut out = String::new();
        for k in start..end.min(self.toks.len()) {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&self.toks[k].text);
        }
        out
    }

    /// Splits `[start, end)` on `sep` tokens at delimiter depth zero.
    fn split_top_level(&self, start: usize, end: usize, sep: &str) -> Vec<(usize, usize)> {
        let mut chunks = Vec::new();
        let mut depth = 0i64;
        let mut s = start;
        let mut k = start;
        while k < end {
            match self.text(k) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "-" if self.text(k + 1) == ">" => k += 1,
                t if t == sep && depth == 0 => {
                    if k > s {
                        chunks.push((s, k));
                    }
                    s = k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        if k > s {
            chunks.push((s, k));
        }
        chunks
    }
}

fn flush(cur: &mut Vec<Elem>, stmts: &mut Vec<Stmt>) {
    if cur.is_empty() {
        return;
    }
    let line = cur
        .first()
        .map(|e| match e {
            Elem::Tok(t) => t.line,
            Elem::Block(b) => b.line,
        })
        .unwrap_or(0);
    stmts.push(Stmt { elems: std::mem::take(cur), line });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(p: &ParsedFile) -> Vec<&FnItem> {
        p.items
            .iter()
            .filter_map(|i| match i {
                Item::Fn(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn parses_struct_fields_and_impl_methods() {
        let p = parse_source(
            "pub struct Ledger { pub accounts: std::sync::Mutex<u32>, name: String }\n\
             impl Ledger {\n\
                 pub fn total(&self, scale: f64) -> u32 { let g = self.accounts.lock(); 0 }\n\
             }\n",
        );
        let s = p
            .items
            .iter()
            .find_map(|i| match i {
                Item::Struct(s) => Some(s),
                _ => None,
            })
            .expect("struct parsed");
        assert_eq!(s.name, "Ledger");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "accounts");
        assert!(s.fields[0].ty.contains("Mutex"));
        let f = fns(&p)[0];
        assert_eq!(f.name, "total");
        assert_eq!(f.self_ty.as_deref(), Some("Ledger"));
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].name, "scale");
        assert_eq!(f.ret, "u32");
        assert_eq!(f.body.stmts.len(), 2);
    }

    #[test]
    fn impl_trait_for_type_binds_methods_to_the_type() {
        let p = parse_source(
            "impl std::fmt::Display for Finding {\n\
                 fn fmt(&self) -> usize { 1 }\n\
             }\n",
        );
        assert_eq!(fns(&p)[0].self_ty.as_deref(), Some("Finding"));
    }

    #[test]
    fn keyword_headed_blocks_split_statements() {
        let p = parse_source(
            "fn f() {\n\
                 while x < 3 { step(); }\n\
                 let y = if c { 1 } else { 2 };\n\
                 done();\n\
             }\n",
        );
        let f = fns(&p)[0];
        assert_eq!(f.body.stmts.len(), 3);
        // The `while` statement contains its body as a nested block.
        assert!(f.body.stmts[0]
            .elems
            .iter()
            .any(|e| matches!(e, Elem::Block(b) if b.stmts.len() == 1)));
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let p = parse_source(
            "fn lib_code() { work(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { aid(); }\n\
                 #[test]\n\
                 fn case() { check(); }\n\
             }\n",
        );
        let all = fns(&p);
        assert_eq!(all.len(), 3);
        assert!(!all[0].in_test);
        assert!(all[1].in_test);
        assert!(all[2].in_test);
    }

    #[test]
    fn statics_and_type_aliases_are_captured() {
        let p = parse_source(
            "static POOL: Mutex<Option<u32>> = Mutex::new(None);\n\
             pub type BackCache = FieldCache<BackwardField>;\n",
        );
        assert!(p
            .items
            .iter()
            .any(|i| matches!(i, Item::Static(s) if s.name == "POOL" && s.ty.contains("Mutex"))));
        assert!(p.items.iter().any(
            |i| matches!(i, Item::TypeAlias(t) if t.name == "BackCache" && t.ty.contains("FieldCache"))
        ));
    }

    #[test]
    fn pathological_nesting_does_not_panic() {
        let deep = "{".repeat(3000) + &"}".repeat(3000);
        let src = format!("fn f() {deep}");
        let _ = parse_source(&src);
        let _ = parse_source("fn ( } ) { ; ;");
        let _ = parse_source("impl < for { struct ; fn");
    }
}
