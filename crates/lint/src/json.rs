//! A minimal JSON writer — just enough to serialize reports without
//! pulling a dependency into the zero-dependency analyzer.

/// Escapes `s` as the body of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `"key": "escaped-value"`.
pub fn str_field(key: &str, value: &str) -> String {
    format!("\"{}\": \"{}\"", escape(key), escape(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
