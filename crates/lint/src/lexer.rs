//! A hand-written Rust lexer, sufficient for conformance analysis.
//!
//! The rule engine only needs a faithful *token stream* — identifiers,
//! punctuation and literal boundaries — plus the comment trivia the rules
//! inspect (SAFETY comments, waivers). The lexer therefore handles every
//! construct that could make a naive text scan misfire (line and nested
//! block comments, string/raw-string/byte-string/char literals, the
//! `'a`-lifetime vs `'a'`-char ambiguity, raw identifiers) but does not
//! attempt full parsing: rules pattern-match over the token stream.

/// The coarse classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `HashMap`, ...).
    Ident,
    /// A lifetime such as `'a` or `'static` (quote excluded from text).
    Lifetime,
    /// Single punctuation character (`.`, `(`, `:`, `{`, ...).
    Punct,
    /// Any string-like literal: `"..."`, `r#"..."#`, `b"..."`, `c"..."`.
    Str,
    /// A character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A numeric literal.
    Num,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text. For `Str`/`Char`/`Num` this is the raw literal;
    /// rules never inspect literal contents, only their extent.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// One comment, kept out of the token stream as trivia.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//`/`/*` markers.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (block comments may span lines).
    pub end_line: u32,
    /// 1-based column of the comment's first character.
    pub col: u32,
}

impl Comment {
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub fn is_doc(&self) -> bool {
        self.text.starts_with("///")
            || self.text.starts_with("//!")
            || self.text.starts_with("/**")
            || self.text.starts_with("/*!")
    }
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment trivia in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Character cursor with 1-based line/column bookkeeping.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Cursor {
        Cursor { chars: src.chars().collect(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `src` into tokens and comment trivia.
///
/// The lexer is total: malformed input (say, an unterminated string) never
/// panics — the remainder of the file is consumed as the open literal,
/// which is also what rustc's recovery does for the constructs we care
/// about.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.comments.push(Comment { text, line, end_line: line, col });
            }
            '/' if cur.peek(1) == Some('*') => {
                let mut text = String::new();
                let mut depth = 0usize;
                while let Some(c) = cur.peek(0) {
                    if c == '/' && cur.peek(1) == Some('*') {
                        depth += 1;
                        text.push_str("/*");
                        cur.bump();
                        cur.bump();
                    } else if c == '*' && cur.peek(1) == Some('/') {
                        depth -= 1;
                        text.push_str("*/");
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(c);
                        cur.bump();
                    }
                }
                out.comments.push(Comment { text, line, end_line: cur.line, col });
            }
            '"' => {
                let text = lex_plain_string(&mut cur);
                out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
            }
            '\'' => lex_quote(&mut cur, &mut out, line, col),
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    let fraction_dot = c == '.'
                        && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                        && !text.contains('.');
                    if is_ident_continue(c) || fraction_dot {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokenKind::Num, text, line, col });
            }
            c if is_ident_start(c) => lex_ident_or_prefixed(&mut cur, &mut out, line, col),
            _ => {
                cur.bump();
                out.tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, col });
            }
        }
    }
    out
}

/// Lexes a `"..."` string (escapes honored); cursor sits on the opening `"`.
fn lex_plain_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push('"');
    cur.bump();
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(e) = cur.bump() {
                text.push(e);
            }
        } else if c == '"' {
            text.push(c);
            cur.bump();
            break;
        } else {
            text.push(c);
            cur.bump();
        }
    }
    text
}

/// Lexes a raw string `r#*"..."#*`; cursor sits on the first `#` or `"`.
/// `text` already holds the consumed prefix (`r`, `br`, `cr`).
fn lex_raw_string(cur: &mut Cursor, mut text: String) -> String {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek(0) == Some('"') {
        text.push('"');
        cur.bump();
        'body: while let Some(c) = cur.peek(0) {
            text.push(c);
            cur.bump();
            if c == '"' {
                // A closing quote must be followed by `hashes` hash marks.
                for ahead in 0..hashes {
                    if cur.peek(ahead) != Some('#') {
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    text.push('#');
                    cur.bump();
                }
                break;
            }
        }
    }
    text
}

/// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal);
/// cursor sits on the opening `'`.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // consume '
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: '\n', '\'', '\u{..}'.
            let mut text = String::from("'\\");
            cur.bump();
            while let Some(c) = cur.peek(0) {
                text.push(c);
                cur.bump();
                if c == '\'' {
                    break;
                }
            }
            out.tokens.push(Token { kind: TokenKind::Char, text, line, col });
        }
        Some(c) if is_ident_start(c) => {
            let mut name = String::new();
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    name.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek(0) == Some('\'') && name.chars().count() == 1 {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: format!("'{name}'"),
                    line,
                    col,
                });
            } else {
                out.tokens.push(Token { kind: TokenKind::Lifetime, text: name, line, col });
            }
        }
        Some(c) => {
            // Non-identifier char literal: '(', '1', ' '.
            let mut text = String::from("'");
            text.push(c);
            cur.bump();
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            out.tokens.push(Token { kind: TokenKind::Char, text, line, col });
        }
        None => {
            out.tokens.push(Token { kind: TokenKind::Punct, text: "'".into(), line, col });
        }
    }
}

/// Lexes an identifier, or a literal introduced by an identifier-like
/// prefix: `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`, `c"…"`,
/// `cr#"…"#`.
fn lex_ident_or_prefixed(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let c = match cur.peek(0) {
        Some(c) => c,
        None => return,
    };
    let next = cur.peek(1);
    match (c, next) {
        ('r', Some('"')) | ('r', Some('#')) => {
            // `r#ident` (raw identifier) vs `r#"…"#` / `r"…"` (raw string):
            // decided by what follows the hash run.
            let mut ahead = 1usize;
            while cur.peek(ahead) == Some('#') {
                ahead += 1;
            }
            if cur.peek(ahead) == Some('"') {
                cur.bump();
                let text = lex_raw_string(cur, String::from("r"));
                out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
            } else if ahead == 2 && cur.peek(2).is_some_and(is_ident_start) {
                // Raw identifier `r#name`: keep the `r#` prefix in the
                // token text so `r#unsafe` never matches keyword rules.
                cur.bump();
                cur.bump();
                lex_bare_ident(cur, out, line, col);
                if let Some(tok) = out.tokens.last_mut() {
                    if tok.kind == TokenKind::Ident && tok.line == line && tok.col == col {
                        tok.text.insert_str(0, "r#");
                    }
                }
            } else {
                lex_bare_ident(cur, out, line, col);
            }
        }
        ('b', Some('"')) => {
            cur.bump();
            let text = format!("b{}", lex_plain_string(cur));
            out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
        }
        ('b', Some('\'')) => {
            cur.bump();
            lex_quote(cur, out, line, col);
            if let Some(tok) = out.tokens.last_mut() {
                tok.kind = TokenKind::Char;
                tok.line = line;
                tok.col = col;
            }
        }
        ('b', Some('r')) if matches!(cur.peek(2), Some('"') | Some('#')) => {
            cur.bump();
            cur.bump();
            let text = lex_raw_string(cur, String::from("br"));
            out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
        }
        ('c', Some('"')) => {
            cur.bump();
            let text = format!("c{}", lex_plain_string(cur));
            out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
        }
        ('c', Some('r')) if matches!(cur.peek(2), Some('"') | Some('#')) => {
            cur.bump();
            cur.bump();
            let text = lex_raw_string(cur, String::from("cr"));
            out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
        }
        _ => lex_bare_ident(cur, out, line, col),
    }
}

fn lex_bare_ident(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if !text.is_empty() {
        out.tokens.push(Token { kind: TokenKind::Ident, text, line, col });
    } else {
        // Defensive: never loop without progress on unexpected input.
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r###"
            let s = "unsafe unwrap()";
            // unsafe in a comment
            /* unwrap() in /* a nested */ block */
            let r = r#"panic!("x")"#;
            let b = b"unsafe";
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unsafe" || i == "unwrap" || i == "panic"));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetime_vs_char() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; let d = '\\n'; }");
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        let chars: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn raw_identifier_keeps_prefix() {
        let ids = idents("let r#unsafe = 1;");
        assert!(ids.iter().any(|i| i == "r#unsafe"));
        assert!(!ids.iter().any(|i| i == "unsafe"));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn block_comment_spans_lines() {
        let lexed = lex("/* a\nb\nc */ x");
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn unterminated_string_consumes_rest() {
        let lexed = lex("let s = \"open\nunsafe");
        assert!(lexed.tokens.iter().all(|t| t.text != "unsafe"));
    }
}
