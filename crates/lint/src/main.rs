//! `ust-lint` — the CLI over [`ust_lint`].
//!
//! ```text
//! ust-lint [--root DIR] [--format text|json] [--deny] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean (or findings in warn mode), `1` findings under
//! `--deny`, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use ust_lint::rules::ALL_RULES;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    deny: bool,
    list_rules: bool,
}

const USAGE: &str = "usage: ust-lint [--root DIR] [--format text|json] [--deny] [--list-rules]

Statically checks the workspace against the engine's safety and
determinism invariants. `--deny` exits nonzero on any finding (the CI
mode); `--format json` emits a machine-readable report on stdout.";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { root: None, json: false, deny: false, list_rules: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--deny" => opts.deny = true,
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("ust-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in ALL_RULES {
            println!("{:<36} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root {
        Some(root) => root,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("ust-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match ust_lint::walk::find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!(
                        "ust-lint: no workspace root (Cargo.toml with [workspace]) found \
                         above {} — pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match ust_lint::analyze_workspace(&root) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("ust-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!(
            "ust-lint: {} finding(s) across {} file(s); {} waiver(s) in effect",
            report.findings.len(),
            report.files_scanned,
            report.waivers_used
        );
    }

    if opts.deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
