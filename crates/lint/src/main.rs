//! `ust-lint` — the CLI over [`ust_lint`].
//!
//! ```text
//! ust-lint [--root DIR] [--format text|json] [--deny] [--list-rules]
//!          [--emit DOT_PATH] [--check-hierarchy DOC_PATH]
//! ```
//!
//! Exit codes: `0` clean (or findings in warn mode), `1` findings under
//! `--deny` or an undocumented lock-order edge under `--check-hierarchy`,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use ust_lint::rules::ALL_RULES;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    deny: bool,
    list_rules: bool,
    emit: Option<PathBuf>,
    check_hierarchy: Option<PathBuf>,
}

const USAGE: &str = "usage: ust-lint [--root DIR] [--format text|json] [--deny] [--list-rules]
                [--emit DOT_PATH] [--check-hierarchy DOC_PATH]

Statically checks the workspace against the engine's safety and
determinism invariants. `--deny` exits nonzero on any finding (the CI
mode); `--format json` emits a machine-readable report on stdout;
`--emit` writes the discovered lock-order graph as Graphviz DOT;
`--check-hierarchy` fails if that graph has an edge absent from the
documented hierarchy (the `lock-hierarchy` block of the given file).";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        deny: false,
        list_rules: false,
        emit: None,
        check_hierarchy: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--emit" => {
                let path = args.next().ok_or("--emit needs a file argument")?;
                opts.emit = Some(PathBuf::from(path));
            }
            "--check-hierarchy" => {
                let path = args.next().ok_or("--check-hierarchy needs a file argument")?;
                opts.check_hierarchy = Some(PathBuf::from(path));
            }
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--deny" => opts.deny = true,
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("ust-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in ALL_RULES {
            println!("{:<36} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root {
        Some(root) => root,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("ust-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match ust_lint::walk::find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!(
                        "ust-lint: no workspace root (Cargo.toml with [workspace]) found \
                         above {} — pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match ust_lint::analyze_workspace(&root) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("ust-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.emit {
        if let Err(e) = std::fs::write(path, report.to_dot()) {
            eprintln!("ust-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let mut undocumented = Vec::new();
    if let Some(doc_path) = &opts.check_hierarchy {
        let doc = match std::fs::read_to_string(doc_path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("ust-lint: cannot read {}: {e}", doc_path.display());
                return ExitCode::from(2);
            }
        };
        let Some(documented) = ust_lint::dataflow::documented_edges(&doc) else {
            eprintln!(
                "ust-lint: {} has no `<!-- lock-hierarchy:begin/end -->` block",
                doc_path.display()
            );
            return ExitCode::from(2);
        };
        for e in &report.lock_edges {
            if !documented.contains(&(e.from.clone(), e.to.clone())) {
                undocumented.push(e);
            }
        }
    }

    if opts.json {
        println!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        for e in &undocumented {
            println!(
                "{}:{}:{}: lock-order edge `{}` -> `{}` (in `{}`) is not in the \
                 documented hierarchy",
                e.file, e.line, e.col, e.from, e.to, e.func
            );
        }
        println!(
            "ust-lint: {} finding(s) across {} file(s); {} waiver(s) in effect; \
             {} lock-order edge(s)",
            report.findings.len(),
            report.files_scanned,
            report.waivers_used,
            report.lock_edges.len(),
        );
    }

    let hierarchy_broken = !undocumented.is_empty();
    if (opts.deny && !report.findings.is_empty()) || hierarchy_broken {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
