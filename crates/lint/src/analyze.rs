//! The rule engine: test-region tracking, waiver resolution, the five
//! token-level conformance rules, and the driver for the semantic pass.
//!
//! Analysis is two-phase. [`file_pass`] lexes, parses and runs the token
//! rules on one file, collecting raw findings and placed waivers.
//! [`finish`] then builds the workspace symbol table over every parsed
//! file, runs the interprocedural guard-liveness pass ([`crate::dataflow`])
//! whose findings join each file's raw list, and only then applies waiver
//! suppression and hygiene — so a waiver can suppress a semantic finding
//! whose root cause lives in another file.

use crate::callgraph::summarize;
use crate::dataflow::{analyze_semantic, LockEdge};
use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use crate::parse::{parse_file, ParsedFile};
use crate::rules::RuleId;
use crate::symbols::Workspace;
use crate::waiver::{directive_body, parse_directive, Waiver};

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

/// The analysis result for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived waiver suppression, in source order.
    pub findings: Vec<Finding>,
    /// Lines (1-based) of safety markers claimed by an `unsafe` site —
    /// each is load-bearing: the mutation test deletes each one and
    /// expects the analyzer to object. Marker text in unrelated prose is
    /// deliberately not recorded.
    pub safety_marker_lines: Vec<u32>,
    /// Lines (1-based) carrying a parsed waiver directive.
    pub waiver_lines: Vec<u32>,
    /// How many waivers suppressed at least one finding.
    pub waivers_used: usize,
}

/// How far above an `unsafe` token its SAFETY justification may sit (in
/// lines). Large enough for a doc comment's `# Safety` section followed by
/// several explanatory lines, small enough to keep justifications local.
const SAFETY_LOOKBACK_LINES: u32 = 20;

/// One file's state between the per-file pass and the workspace finish.
pub struct FilePass {
    /// Workspace-relative path.
    pub path: String,
    /// Token-rule findings awaiting waiver suppression.
    raw: Vec<Finding>,
    /// The report under construction (malformed-waiver findings land here
    /// directly; they are unwaivable).
    report: FileReport,
    /// Waivers placed in this file, with their target lines.
    waivers: Vec<PlacedWaiver>,
    /// The item-level parse, input to the workspace symbol table.
    pub parsed: ParsedFile,
}

/// Phase 1: lexes, parses and token-checks `src` as the file at
/// workspace-relative `path`.
pub fn file_pass(path: &str, src: &str) -> FilePass {
    let lexed = lex(src);
    let test_regions = test_token_regions(&lexed.tokens);
    let in_test = |idx: usize| test_regions.iter().any(|&(s, e)| idx >= s && idx <= e);

    let mut report = FileReport::default();
    let mut waivers: Vec<PlacedWaiver> = Vec::new();

    // Comments: waiver directives and SAFETY markers.
    for comment in &lexed.comments {
        if let Some(body) = directive_body(&comment.text, comment.is_doc()) {
            match parse_directive(body) {
                Ok(waiver) => {
                    let target = waiver_target_line(comment, &lexed.tokens);
                    report.waiver_lines.push(comment.line);
                    waivers.push(PlacedWaiver { waiver, line: comment.line, target, used: false });
                }
                Err(err) => report.findings.push(Finding {
                    rule: RuleId::MalformedWaiver,
                    file: path.to_string(),
                    line: comment.line,
                    col: comment.col,
                    message: err.to_string(),
                }),
            }
        }
    }

    // Token rules.
    let mut raw: Vec<Finding> = Vec::new();
    check_undocumented_unsafe(path, &lexed, &in_test, &mut raw, &mut report.safety_marker_lines);
    check_lock_poison(path, &lexed.tokens, &in_test, &mut raw);
    check_wall_clock(path, &lexed.tokens, &in_test, &mut raw);
    check_panicking_calls(path, &lexed.tokens, &in_test, &mut raw);
    check_unordered_iteration(path, &lexed.tokens, &in_test, &mut raw);

    let parsed = parse_file(&lexed);
    FilePass { path: path.to_string(), raw, report, waivers, parsed }
}

/// Phase 2: runs the semantic pass over all files, then waiver
/// suppression and hygiene per file. Returns the per-file reports and the
/// deduplicated lock-order edge list.
pub fn finish(mut passes: Vec<FilePass>) -> (Vec<(String, FileReport)>, Vec<LockEdge>) {
    let semantic = {
        let files: Vec<(String, &ParsedFile)> =
            passes.iter().map(|p| (p.path.clone(), &p.parsed)).collect();
        let ws = Workspace::build(&files);
        let summaries = summarize(&ws);
        analyze_semantic(&ws, &summaries)
    };
    for finding in semantic.findings {
        if let Some(pass) = passes.iter_mut().find(|p| p.path == finding.file) {
            pass.raw.push(finding);
        }
    }

    let mut out = Vec::with_capacity(passes.len());
    for mut pass in passes {
        let path = pass.path;
        let mut report = pass.report;
        // Waiver suppression. Line-scoped waivers get first claim so a
        // coexisting file-scope waiver is not spuriously reported unused.
        pass.waivers.sort_by_key(|w| w.waiver.file_scope);
        for finding in pass.raw {
            let suppressed = pass.waivers.iter_mut().any(|w| {
                w.waiver.rules.contains(&finding.rule)
                    && (w.waiver.file_scope || w.target == Some(finding.line))
                    && {
                        w.used = true;
                        true
                    }
            });
            if !suppressed {
                report.findings.push(finding);
            }
        }

        // Waiver hygiene.
        report.waivers_used = pass.waivers.iter().filter(|w| w.used).count();
        for w in &pass.waivers {
            if !w.used {
                let rules: Vec<&str> = w.waiver.rules.iter().map(|r| r.name()).collect();
                report.findings.push(Finding {
                    rule: RuleId::UnusedWaiver,
                    file: path.clone(),
                    line: w.line,
                    col: 1,
                    message: format!(
                        "waiver for `{}` suppresses nothing — delete it or move it next to \
                         the code it justifies",
                        rules.join(", ")
                    ),
                });
            }
        }

        report.findings.sort_by_key(|a| (a.line, a.col, a.rule));
        out.push((path, report));
    }
    (out, semantic.edges)
}

/// Analyzes `src` alone as the file at workspace-relative `path` (the
/// semantic pass sees a one-file workspace).
pub fn analyze_source(path: &str, src: &str) -> FileReport {
    let (mut reports, _) = finish(vec![file_pass(path, src)]);
    reports.pop().map(|(_, r)| r).unwrap_or_default()
}

struct PlacedWaiver {
    waiver: Waiver,
    line: u32,
    /// The line this waiver covers (`None` for file-scope waivers and for
    /// trailing waivers with no code anywhere after them).
    target: Option<u32>,
    used: bool,
}

/// A line-scoped waiver covers its own line when code precedes it there
/// (trailing comment), otherwise the next line holding any token.
fn waiver_target_line(comment: &Comment, tokens: &[Token]) -> Option<u32> {
    if tokens.iter().any(|t| t.line == comment.line) {
        return Some(comment.line);
    }
    tokens.iter().map(|t| t.line).filter(|&l| l > comment.end_line).min()
}

/// If `comment` carries a SAFETY justification, the 1-based source line of
/// the marker itself (block comments may span lines).
fn safety_marker_line(comment: &Comment) -> Option<u32> {
    let marker = if comment.text.contains("SAFETY:") {
        "SAFETY:"
    } else if comment.is_doc() && comment.text.contains("# Safety") {
        "# Safety"
    } else {
        return None;
    };
    let offset = comment.text.find(marker)?;
    let newlines = comment.text[..offset].matches('\n').count() as u32;
    Some(comment.line + newlines)
}

/// Computes `(start, end)` token-index ranges of `#[cfg(test)]` /
/// `#[test]`-gated items. Any attribute whose token stream contains the
/// bare identifier `test` gates the next braced body (or is discharged by
/// a `;` at the attribute's nesting depth — a gated declaration without a
/// body).
pub(crate) fn test_token_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut nest: i64 = 0;
    let mut pending: Option<i64> = None;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "#" => {
                    // `#[...]` or `#![...]`
                    let mut j = i + 1;
                    if tokens.get(j).is_some_and(|t| t.text == "!") {
                        j += 1;
                    }
                    if tokens.get(j).is_some_and(|t| t.text == "[") {
                        let (end, is_test) = scan_attribute(tokens, j);
                        if is_test {
                            pending = Some(nest);
                        }
                        i = end + 1;
                        continue;
                    }
                }
                "(" | "[" => nest += 1,
                ")" | "]" => nest -= 1,
                "{" => {
                    if pending.take().is_some() {
                        // Consume the whole braced body (balanced, so
                        // `nest` is unchanged afterwards).
                        let end = matching_brace(tokens, i);
                        regions.push((i, end));
                        i = end + 1;
                        continue;
                    }
                    nest += 1;
                }
                "}" => nest -= 1,
                ";" if pending == Some(nest) => pending = None,
                _ => {}
            }
        }
        i += 1;
    }
    regions
}

/// Scans the attribute starting at the `[` token index; returns the index
/// of the matching `]` and whether the attribute mentions `test`.
pub(crate) fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i64;
    let mut is_test = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct && t.text == "[" {
            depth += 1;
        } else if t.kind == TokenKind::Punct && t.text == "]" {
            depth -= 1;
            if depth == 0 {
                return (j, is_test);
            }
        } else if t.kind == TokenKind::Ident && t.text == "test" {
            is_test = true;
        }
        j += 1;
    }
    (tokens.len().saturating_sub(1), is_test)
}

/// Index of the `}` matching the `{` at `open` (last token on imbalance).
pub(crate) fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}

fn push(raw: &mut Vec<Finding>, rule: RuleId, path: &str, token: &Token, message: String) {
    raw.push(Finding { rule, file: path.to_string(), line: token.line, col: token.col, message });
}

/// Rule 1: every `unsafe` outside test code must be justified by the
/// nearest preceding `SAFETY:` comment (or `# Safety` doc section) with no
/// other `unsafe` in between — so each justification is load-bearing for
/// exactly one site — and within [`SAFETY_LOOKBACK_LINES`].
fn check_undocumented_unsafe(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(usize) -> bool,
    raw: &mut Vec<Finding>,
    claimed_markers: &mut Vec<u32>,
) {
    if !RuleId::UndocumentedUnsafe.applies_to(path) {
        return;
    }
    let tokens = &lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" || in_test(i) {
            continue;
        }
        let prev_unsafe_pos = tokens[..i]
            .iter()
            .rev()
            .find(|p| p.kind == TokenKind::Ident && p.text == "unsafe")
            .map(|p| (p.line, p.col));
        let justification = lexed
            .comments
            .iter()
            .filter_map(|c| {
                let marker = safety_marker_line(c)?;
                let before = c.end_line < t.line || (c.end_line == t.line && c.col < t.col);
                let local = t.line.saturating_sub(marker) <= SAFETY_LOOKBACK_LINES;
                // The justification must sit *after* the previous `unsafe`,
                // so one comment can never cover two sites.
                let unclaimed = prev_unsafe_pos
                    .is_none_or(|(pl, pc)| pl < marker || (pl == marker && pc < c.col));
                (before && local && unclaimed).then_some(marker)
            })
            // The nearest satisfying marker is the one that justifies this
            // site; only claimed markers are load-bearing and recorded.
            .max();
        if let Some(marker) = justification {
            claimed_markers.push(marker);
        } else {
            push(
                raw,
                RuleId::UndocumentedUnsafe,
                path,
                t,
                "`unsafe` without a preceding `// SAFETY:` comment or `# Safety` doc \
                 section justifying it"
                    .to_string(),
            );
        }
    }
}

/// Rule 2: `.lock().unwrap()` / `.lock().expect(…)` outside tests.
fn check_lock_poison(
    path: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    raw: &mut Vec<Finding>,
) {
    if !RuleId::LockPoisonIdiom.applies_to(path) {
        return;
    }
    for i in 0..tokens.len().saturating_sub(6) {
        let texts: Vec<&str> = tokens[i..i + 7].iter().map(|t| t.text.as_str()).collect();
        if texts[0] == "."
            && texts[1] == "lock"
            && texts[2] == "("
            && texts[3] == ")"
            && texts[4] == "."
            && (texts[5] == "unwrap" || texts[5] == "expect")
            && texts[6] == "("
            && !in_test(i + 5)
        {
            push(
                raw,
                RuleId::LockPoisonIdiom,
                path,
                &tokens[i + 5],
                format!(
                    "`.lock().{}()` panics on poisoning; recover the guard with \
                     `.lock().unwrap_or_else(std::sync::PoisonError::into_inner)`",
                    texts[5]
                ),
            );
        }
    }
}

/// Rule 3: `Instant::now` / `SystemTime::now` in deterministic modules.
fn check_wall_clock(
    path: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    raw: &mut Vec<Finding>,
) {
    if !RuleId::WallClockInDeterministicPath.applies_to(path) {
        return;
    }
    for i in 0..tokens.len().saturating_sub(3) {
        let clock = tokens[i].text == "Instant" || tokens[i].text == "SystemTime";
        if clock
            && tokens[i].kind == TokenKind::Ident
            && tokens[i + 1].text == ":"
            && tokens[i + 2].text == ":"
            && tokens[i + 3].text == "now"
            && !in_test(i + 3)
        {
            push(
                raw,
                RuleId::WallClockInDeterministicPath,
                path,
                &tokens[i + 3],
                format!(
                    "`{}::now` in a deterministic module: plan decisions and kernels \
                     must be pure functions of their inputs",
                    tokens[i].text
                ),
            );
        }
    }
}

/// Rule 4: panicking calls in non-test library code.
fn check_panicking_calls(
    path: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    raw: &mut Vec<Finding>,
) {
    if !RuleId::PanickingCallInLib.applies_to(path) {
        return;
    }
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || in_test(i) {
            continue;
        }
        let text = tokens[i].text.as_str();
        let next = tokens.get(i + 1).map(|t| t.text.as_str());
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        let is_macro =
            matches!(text, "panic" | "unreachable" | "todo" | "unimplemented") && next == Some("!");
        // `.unwrap()` / `.expect(…)` method calls, and `Result::unwrap`-style
        // function references passed to combinators.
        let is_call = matches!(text, "unwrap" | "expect") && matches!(prev, Some(".") | Some(":"));
        if is_macro || is_call {
            let shown = if is_macro { format!("{text}!") } else { format!("{text}()") };
            push(
                raw,
                RuleId::PanickingCallInLib,
                path,
                &tokens[i],
                format!(
                    "`{shown}` in non-test library code: propagate an error, or waive \
                     with a justification for why this cannot fire"
                ),
            );
        }
    }
}

/// Rule 5: `HashMap` / `HashSet` in answer-producing modules.
fn check_unordered_iteration(
    path: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    raw: &mut Vec<Finding>,
) {
    if !RuleId::UnorderedIterationOnAnswerPath.applies_to(path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") && !in_test(i)
        {
            push(
                raw,
                RuleId::UnorderedIterationOnAnswerPath,
                path,
                t,
                format!(
                    "`{}` on an answer-producing path: iteration order is \
                     nondeterministic; use `BTreeMap`/sorted vectors, or waive with \
                     an argument for order-independence",
                    t.text
                ),
            );
        }
    }
}
